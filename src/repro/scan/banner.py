"""SMTP banner grabbing and software fingerprinting.

The paper's reachability dataset is the zmap *"Daily Full IPv4 SMTP Banner
Grab and StartTLS"* capture — more than a SYN bitmap: each listening host
answered with its 220 banner, which usually names the MTA software.  This
module adds that dimension to the simulated scan:

* canonical banner templates and STARTTLS support odds per MTA software;
* :class:`BannerGrabScanner` — collects ``(address, banner, starttls)``
  for every listening host of a population;
* :func:`fingerprint_banner` — maps a banner string back to a software
  name (the classification step a real survey performs);
* :class:`SoftwareSurvey` — the aggregated software/STARTTLS distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.address import IPv4Address
from ..sim.rng import RandomStream
from .population import SyntheticInternet


@dataclass(frozen=True)
class SoftwareProfile:
    """One MTA software as it appears on the wire."""

    name: str
    banner_template: str          # format with hostname
    market_share: float           # fraction of internet mail hosts
    starttls_rate: float          # fraction of deployments offering STARTTLS

    def banner_for(self, hostname: str) -> str:
        return self.banner_template.format(host=hostname)


#: The software mix used when a population assigns banners.  Shares are a
#: plausible 2015-era distribution over the paper's "most popular MTA
#: servers used on the Internet" plus an unidentifiable remainder.
SOFTWARE_PROFILES: Tuple[SoftwareProfile, ...] = (
    SoftwareProfile("postfix", "220 {host} ESMTP Postfix", 0.33, 0.80),
    SoftwareProfile("exim", "220 {host} ESMTP Exim 4.84", 0.28, 0.75),
    SoftwareProfile("sendmail", "220 {host} ESMTP Sendmail 8.14.9/8.14.9", 0.12, 0.60),
    SoftwareProfile(
        "exchange",
        "220 {host} Microsoft ESMTP MAIL Service ready",
        0.12,
        0.85,
    ),
    SoftwareProfile("qmail", "220 {host} ESMTP", 0.05, 0.20),
    SoftwareProfile("courier", "220 {host} ESMTP Courier", 0.03, 0.50),
    SoftwareProfile("other", "220 {host} SMTP service ready", 0.07, 0.40),
)

SOFTWARE_BY_NAME: Dict[str, SoftwareProfile] = {
    p.name: p for p in SOFTWARE_PROFILES
}

#: Substrings that identify each software in a banner, tried in order
#: (qmail's bare "ESMTP" banner must be matched last).
_FINGERPRINTS: Tuple[Tuple[str, str], ...] = (
    ("Postfix", "postfix"),
    ("Exim", "exim"),
    ("Sendmail", "sendmail"),
    ("Microsoft ESMTP", "exchange"),
    ("Courier", "courier"),
)


def fingerprint_banner(banner: str) -> str:
    """Classify a 220 banner into a software name.

    qmail is famously silent about itself (bare ``220 host ESMTP``); that
    shape is attributed to qmail, anything else unrecognized to "other".
    """
    for needle, name in _FINGERPRINTS:
        if needle in banner:
            return name
    stripped = banner.strip()
    if stripped.startswith("220 ") and stripped.endswith(" ESMTP"):
        return "qmail"
    return "other"


@dataclass
class BannerRecord:
    """One host's banner-grab result."""

    address: IPv4Address
    banner: str
    starttls: bool


@dataclass
class BannerDataset:
    """The per-scan banner capture."""

    scan_index: int
    records: List[BannerRecord] = field(default_factory=list)

    @property
    def num_hosts(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class HostSoftwareAssignment:
    """Deterministically assigns MTA software to a population's mail hosts.

    Assignment is derived from (seed, address), so the same population and
    seed always yield the same software map — independent of scan order.
    """

    def __init__(self, internet: SyntheticInternet, seed: int) -> None:
        self.internet = internet
        self.seed = seed
        self._root = RandomStream(seed, "banner-assignment")
        self._cache: Dict[IPv4Address, SoftwareProfile] = {}
        self._weights = [p.market_share for p in SOFTWARE_PROFILES]

    def software_for(self, address: IPv4Address) -> SoftwareProfile:
        profile = self._cache.get(address)
        if profile is None:
            host_rng = self._root.split(f"host:{address}")
            profile = SOFTWARE_PROFILES[host_rng.weighted_index(self._weights)]
            self._cache[address] = profile
        return profile

    def offers_starttls(self, address: IPv4Address) -> bool:
        profile = self.software_for(address)
        host_rng = self._root.split(f"tls:{address}")
        return host_rng.random() < profile.starttls_rate


class BannerGrabScanner:
    """Grabs banners (and STARTTLS capability) from listening mail hosts."""

    def __init__(
        self, internet: SyntheticInternet, assignment: HostSoftwareAssignment
    ) -> None:
        self.internet = internet
        self.assignment = assignment

    def scan(
        self,
        scan_index: int,
        addresses: Optional[Iterable[IPv4Address]] = None,
    ) -> BannerDataset:
        if addresses is None:
            addresses = self.internet.all_mail_addresses()
        hostname_of: Dict[IPv4Address, str] = {}
        for truth in self.internet.domains:
            for hostname, _, address in truth.mx_hosts:
                if address is not None:
                    hostname_of[address] = hostname
        dataset = BannerDataset(scan_index=scan_index)
        for address in addresses:
            if not self.internet.is_listening(address, scan_index):
                continue
            profile = self.assignment.software_for(address)
            hostname = hostname_of.get(address, str(address))
            dataset.records.append(
                BannerRecord(
                    address=address,
                    banner=profile.banner_for(hostname),
                    starttls=self.assignment.offers_starttls(address),
                )
            )
        return dataset


@dataclass
class SoftwareSurvey:
    """Aggregated software distribution from a banner capture."""

    total_hosts: int
    software_counts: Dict[str, int]
    starttls_hosts: int

    @property
    def starttls_fraction(self) -> float:
        if self.total_hosts == 0:
            return 0.0
        return self.starttls_hosts / self.total_hosts

    def fraction(self, software: str) -> float:
        if self.total_hosts == 0:
            return 0.0
        return self.software_counts.get(software, 0) / self.total_hosts

    def ranked(self) -> List[Tuple[str, int]]:
        return sorted(
            self.software_counts.items(), key=lambda kv: kv[1], reverse=True
        )


def survey_software(dataset: BannerDataset) -> SoftwareSurvey:
    """Fingerprint every banner in a capture and aggregate."""
    counts: Dict[str, int] = {}
    starttls = 0
    for record in dataset:
        name = fingerprint_banner(record.banner)
        counts[name] = counts.get(name, 0) + 1
        if record.starttls:
            starttls += 1
    return SoftwareSurvey(
        total_hosts=dataset.num_hosts,
        software_counts=counts,
        starttls_hosts=starttls,
    )
