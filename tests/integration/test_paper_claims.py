"""The paper's abstract and conclusions, as one executable test module.

Every headline sentence of the paper maps to one assertion-backed test
here, at reduced scale (the benchmarks run the full-scale versions).  If
this module passes, the reproduction supports every claim the paper rests
on.
"""

import pytest

from repro.analysis.cdf import ks_distance
from repro.botnet.families import CUTWAIL, KELIHOS
from repro.botnet.samples import samples_of
from repro.core.adoption import run_adoption_experiment
from repro.core.coverage import build_coverage_report
from repro.core.defense_matrix import build_defense_matrix, run_sample
from repro.core.deployment import run_deployment_experiment
from repro.core.greylist_experiment import run_greylist_experiment
from repro.core.mta_survey import run_mta_survey
from repro.core.testbed import Defense
from repro.core.webmail_experiment import run_webmail_experiment
from repro.scan.detect import DomainClass


@pytest.fixture(scope="module")
def matrix():
    return build_defense_matrix(recipients=2)


class TestAbstractClaims:
    """'Our study clearly shows that malware is indeed adapting to these
    techniques, but not as quickly and not as effectively as many people
    say.  Therefore, in 2015 both nolisting and greylisting can still play
    an important role in the fight against spam.'"""

    def test_malware_is_adapting(self, matrix):
        # Adaptation is real: Cutwail dodges nolisting, Kelihos dodges
        # greylisting.
        nolist = matrix.family_verdicts(Defense.NOLISTING)
        grey = matrix.family_verdicts(Defense.GREYLISTING)
        assert not nolist["Cutwail"]
        assert not grey["Kelihos"]

    def test_but_not_effectively(self, matrix):
        # No family dodges both: each is caught by at least one technique.
        report = build_coverage_report(matrix)
        assert report.combined_covers_all_families

    def test_both_techniques_still_matter(self, matrix):
        report = build_coverage_report(matrix)
        assert report.greylisting_share > 0.30
        assert report.nolisting_share > 0.20


class TestSection4Claims:
    """Nolisting: adoption and effectiveness."""

    def test_adoption_is_not_negligible(self):
        # "only 0.52% of the domains ... it still accounts for over 133
        # thousand domains" — the detected share matches the published pie.
        result = run_adoption_experiment(num_domains=5000, seed=42)
        share = result.summary.fraction(DomainClass.NOLISTING)
        assert share == pytest.approx(0.0052, abs=0.0015)

    def test_popular_domains_adopt(self):
        # "nolisting is adopted by one domain in the top-15 worldwide"
        result = run_adoption_experiment(num_domains=5000, seed=42)
        assert result.crosscheck.top15 == 1

    def test_kelihos_alone_justifies_nolisting(self, matrix):
        # "Since Kelihos alone is responsible for over 36% of the
        # botnet-generated spam ... nolisting still has a positive impact."
        assert matrix.family_verdicts(Defense.NOLISTING)["Kelihos"]
        assert KELIHOS.botnet_spam_share > 0.36

    def test_two_scans_changed_little(self):
        # "the difference between the two experiments was very small"
        result = run_adoption_experiment(num_domains=5000, seed=42)
        assert result.summary.flapped / result.summary.total_domains < 0.01


class TestSection5Claims:
    """Greylisting: effectiveness against malware and benign impact."""

    def test_greylisting_stops_43_percent_of_world_spam(self, matrix):
        # "it was able to stop Cutwail and Darkmailer (together responsible
        # for over 43% of the world spam)"
        report = build_coverage_report(matrix)
        assert report.greylisting_share > 0.43

    def test_kelihos_ignores_threshold_choice(self):
        res5 = run_greylist_experiment(KELIHOS, 5.0, num_messages=40)
        res300 = run_greylist_experiment(KELIHOS, 300.0, num_messages=40)
        assert ks_distance(res5.delay_cdf(), res300.delay_cdf()) < 0.25
        assert min(res5.delivery_delays) >= 300.0

    def test_kelihos_beats_even_six_hours(self):
        result = run_greylist_experiment(
            KELIHOS, 21600.0, num_messages=20, horizon=400000.0
        )
        assert result.delivery_rate == 1.0

    def test_half_of_benign_mail_slower_than_10_minutes(self):
        result = run_deployment_experiment(num_messages=800, seed=5)
        assert 0.30 <= result.fraction_delivered_within(600.0) <= 0.70

    def test_two_webmail_providers_lose_mail_at_6h(self):
        rows = run_webmail_experiment()
        lost = {r.provider for r in rows if not r.delivered}
        assert lost == {"qq.com", "aol.com"}

    def test_aol_gives_up_after_only_30_minutes(self):
        rows = {r.provider: r for r in run_webmail_experiment()}
        assert max(rows["aol.com"].retry_delays) == pytest.approx(1892.0)

    def test_exchange_only_mta_violating_rfc(self):
        survey = run_mta_survey()
        violators = [r.mta for r in survey if not r.rfc_compliant_lifetime]
        assert violators == ["exchange"]


class TestSection6Claims:
    """Discussion: the combined recommendation."""

    def test_over_70_percent_combined(self, matrix):
        report = build_coverage_report(matrix)
        assert report.combined_share > 0.70

    def test_greylisting_more_effective_than_nolisting(self, matrix):
        report = build_coverage_report(matrix)
        assert report.greylisting_share > report.nolisting_share

    def test_both_together_block_every_family(self):
        for family_name in ("Cutwail", "Kelihos", "Darkmailer"):
            sample = samples_of(family_name)[0]
            run = run_sample(sample, Defense.BOTH, recipients=2)
            assert run.blocked, family_name

    def test_short_threshold_recommendation(self):
        # "the use of a very short threshold is probably the best way":
        # fire-and-forget spam dies at ANY threshold, benign delay grows
        # with it.
        tiny = run_greylist_experiment(CUTWAIL, 5.0, num_messages=10)
        assert tiny.blocked
        fast = run_deployment_experiment(
            num_messages=400, seed=5, threshold=5.0
        )
        slow = run_deployment_experiment(
            num_messages=400, seed=5, threshold=3600.0
        )
        assert fast.delay_cdf().median < slow.delay_cdf().median
