"""Command-line interface: ``python -m repro <command>``.

One subcommand per experiment, each printing the reproduced artefact.
The CLI is a thin veneer over :mod:`repro.core`; everything it can do is
also available as a library call.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import format_percent, format_seconds, render_table


def _workers_arg(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 0, got {count}"
        )
    return count


def _fault_rate_arg(value: str) -> float:
    rate = float(value)
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(
            f"fault rate must lie in [0, 1], got {rate}"
        )
    return rate


def _cmd_adoption(args: argparse.Namespace) -> int:
    from .core.adoption import run_adoption_experiment
    from .core.reports import figure2_text

    cache = None
    if args.cache:
        from .runner.cache import ResultCache

        cache = ResultCache()
    config = None
    if args.mix_profile != "figure2":
        from .scan.profiles import profile_config

        config = profile_config(args.mix_profile, num_domains=args.domains)
    result = run_adoption_experiment(
        num_domains=args.domains,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        engine=args.engine,
        config=config,
    )
    print(figure2_text(result))
    return 0


def _cmd_internet_scale(args: argparse.Namespace) -> int:
    from .core.internet_scale import sweep_deployment_rates

    cache = None
    if args.cache:
        from .runner.cache import ResultCache

        cache = ResultCache()
    results = sweep_deployment_rates(
        messages=args.messages,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        num_domains=args.domains,
        engine=args.engine,
        store_backend=args.store_backend,
    )
    print(
        render_table(
            headers=(
                "Greylisting",
                "Nolisting",
                "Blocked",
                "Predicted",
            ),
            rows=[
                (
                    format_percent(r.greylisting_rate),
                    format_percent(r.nolisting_rate),
                    format_percent(r.block_rate),
                    format_percent(r.predicted_block_rate),
                )
                for r in results
            ],
            title=(
                f"Spam blocked as deployment grows "
                f"({args.domains} domains, {args.engine} engine)"
            ),
        )
    )
    return 0


def _cmd_defenses(args: argparse.Namespace) -> int:
    from .core.coverage import build_coverage_report
    from .core.defense_matrix import build_defense_matrix
    from .core.reports import table2_text

    matrix = build_defense_matrix(seed=args.seed, recipients=args.recipients)
    print(table2_text(matrix))
    report = build_coverage_report(matrix)
    print()
    print(f"greylisting alone : {format_percent(report.greylisting_share)} "
          "of global spam blocked")
    print(f"nolisting alone   : {format_percent(report.nolisting_share)}")
    print(f"both combined     : {format_percent(report.combined_share)}")
    return 0


def _cmd_webmail(args: argparse.Namespace) -> int:
    from .core.reports import table3_text
    from .core.webmail_experiment import run_webmail_experiment

    rows = run_webmail_experiment(threshold=args.threshold)
    print(table3_text(rows))
    return 0


def _cmd_mta_survey(args: argparse.Namespace) -> int:
    from .core.mta_survey import run_mta_survey
    from .core.reports import table4_text

    print(table4_text(run_mta_survey()))
    return 0


def _cmd_kelihos(args: argparse.Namespace) -> int:
    from .botnet.families import KELIHOS
    from .core.greylist_experiment import run_greylist_experiment
    from .core.reports import figure3_text, figure4_text

    result = run_greylist_experiment(
        KELIHOS,
        args.threshold,
        num_messages=args.messages,
        seed=args.seed,
        store_backend=args.store_backend,
        store_path=args.store_path,
    )
    if args.threshold >= 21600:
        print(figure4_text(result))
    else:
        print(figure3_text(result))
    return 0


def _cmd_deployment(args: argparse.Namespace) -> int:
    from .core.deployment import run_deployment_experiment
    from .core.reports import figure5_text

    result = run_deployment_experiment(
        threshold=args.threshold,
        num_messages=args.messages,
        seed=args.seed,
    )
    print(figure5_text(result.delay_cdf(), result.threshold))
    print(f"\ndelivered {result.delivered}, lost {result.lost} "
          f"({format_percent(result.loss_rate)})")
    return 0


def _cmd_synergy(args: argparse.Namespace) -> int:
    from .core.synergy import run_synergy_comparison, sweep_greylist_delay

    results = run_synergy_comparison(seed=args.seed)
    print(
        render_table(
            headers=("Configuration", "Delivered", "DNSBL rejections"),
            rows=[
                (r.configuration, f"{r.delivered}/{r.num_messages}", r.dnsbl_rejections)
                for r in results
            ],
            title="Greylisting x blacklisting vs Kelihos (fast telemetry)",
        )
    )
    print()
    sweep = sweep_greylist_delay(
        seed=args.seed, store_backend=args.store_backend
    )
    print(
        render_table(
            headers=("Greylist delay", "Delivery rate"),
            rows=[
                (format_seconds(r.greylist_delay), f"{r.delivery_rate:.2f}")
                for r in sweep
            ],
            title="Threshold needed to buy the blacklist time (rate 60/h)",
        )
    )
    return 0


def _cmd_adaptation(args: argparse.Namespace) -> int:
    from .core.adaptation import obsolescence_level, sweep_adaptation

    points = sweep_adaptation()
    print(
        render_table(
            headers=("Adapted fraction", "Greylisting", "Nolisting", "Combined"),
            rows=[
                (
                    f"{p.adaptation:.2f}",
                    format_percent(p.greylisting_coverage),
                    format_percent(p.nolisting_coverage),
                    format_percent(p.combined_coverage),
                )
                for p in points
            ],
            title="Coverage as malware adapts (Results Validity sweep)",
        )
    )
    level = obsolescence_level(points)
    print(f"\ncombined coverage drops below 50% once {level:.0%} of spam "
          "output is fully adapted")
    return 0


def _cmd_dialects(args: argparse.Namespace) -> int:
    from .core.dialect_survey import run_dialect_survey

    result = run_dialect_survey(num_sessions=args.sessions, seed=args.seed)
    print(
        render_table(
            headers=("Metric", "Value"),
            rows=[
                ("sessions", result.sessions),
                ("dialect attribution", format_percent(result.attribution_accuracy)),
                ("bot precision", format_percent(result.precision)),
                ("bot recall", format_percent(result.recall)),
            ],
            title="Passive SMTP-dialect fingerprinting",
        )
    )
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    import math

    from .core.variants import compare_variants

    results = compare_variants()
    print(
        render_table(
            headers=(
                "Key strategy",
                "Rotating spam delivered",
                "Farm delay",
                "DB entries",
            ),
            rows=[
                (
                    r.strategy.value,
                    f"{r.rotating_spam_delivered}/20",
                    "never"
                    if math.isinf(r.farm_delivery_delay)
                    else format_seconds(r.farm_delivery_delay),
                    r.db_entries_under_rotation,
                )
                for r in results
            ],
            title="Greylisting keying variants",
        )
    )
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    from .core.filter_comparison import compare_filtering

    results = compare_filtering(seed=args.seed)
    print(
        render_table(
            headers=(
                "Configuration",
                "Spam blocked",
                "Benign delay",
                "Spam bytes",
            ),
            rows=[
                (
                    r.configuration,
                    f"{r.spam_block_rate:.0%}",
                    format_seconds(r.benign_mean_delay),
                    r.spam_bytes_received,
                )
                for r in results
            ],
            title="Pre-acceptance (greylist) vs post-acceptance (content)",
        )
    )
    return 0


def _raise_fd_limit() -> None:
    """Raise the soft fd limit to the hard one (10k+ connections need it).

    Best-effort: serving at default limits still works, just at fewer
    concurrent connections.
    """
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < hard:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def _build_serve_chain(args: argparse.Namespace, clock, backend):
    """Assemble the serving plugin chain over an existing backend.

    Shared by the single-process daemon and every prefork worker: each
    worker builds its *own* chain (plugins hold per-process caches) but
    all chains read and write the same backend state.
    """
    from .greylist.policy import GreylistPolicy
    from .greylist.store import TripletStore
    from .serve.plugins import (
        DecisionCache,
        GreylistingPlugin,
        PluginChain,
        PolicyPlugin,
        ThrottlePlugin,
    )

    store = TripletStore(clock, backend=backend)
    policy = GreylistPolicy(clock=clock, delay=args.delay, store=store)
    plugins: List[PolicyPlugin] = []
    if args.throttle_max > 0:
        plugins.append(
            ThrottlePlugin(
                clock,
                max_messages=args.throttle_max,
                period=args.throttle_period,
            )
        )
    plugins.append(GreylistingPlugin(policy, cache=DecisionCache()))
    return PluginChain(plugins)


def _serve_backend(args: argparse.Namespace):
    """Create the triplet backend the serve command was asked for."""
    from .greylist.backends import SERVING_COMMIT_EVERY, create_backend

    if args.store_backend == "shm":
        from .greylist.shm import SharedMemoryBackend

        # An operator-named --store-path is the durable contract: the
        # segment must survive the daemon for the next one to reattach,
        # so the exit reaper is disabled.  Anonymous segments die with
        # the master.
        return SharedMemoryBackend(
            args.store_path,
            capacity=args.shm_capacity,
            persist=args.store_path is not None,
        )
    return create_backend(
        args.store_backend, args.store_path, commit_every=SERVING_COMMIT_EVERY
    )


def _serve_worker(
    index: int, sock, args: argparse.Namespace, segment: str
) -> int:
    """Body of one prefork worker (runs inside the forked child)."""
    import asyncio

    from .greylist.shm import SharedMemoryBackend
    from .serve.server import PolicyServer, ReplayClock, WallClock

    clock = ReplayClock() if args.clock == "replay" else WallClock()
    backend = SharedMemoryBackend(segment=segment)
    chain = _build_serve_chain(args, clock, backend)
    server = PolicyServer(
        chain, clock, host=args.host, port=args.port, sock=sock
    )

    async def _serve() -> int:
        await server.start()
        status = await server.run_until_signalled()
        stats = server.stats
        print(
            f"worker {index}: served {stats.decisions} decisions over "
            f"{stats.connections} connections "
            f"({stats.protocol_errors} protocol errors, "
            f"{stats.truncated} truncated)",
            flush=True,
        )
        return status

    return asyncio.run(_serve())


def _serve_prefork(args: argparse.Namespace, workers: int) -> int:
    """Master side of multi-worker serving: bind, fork, supervise."""
    import os

    from .greylist.store import TripletStore
    from .serve.prefork import PreforkSupervisor, bind_listening_sockets
    from .serve.server import WallClock

    backend = _serve_backend(args)
    segment = backend.segment
    sockets, host, port = bind_listening_sockets(
        args.host, args.port, workers
    )
    # The smoke job and the benchmark parse this line to find an
    # ephemeral port; keep the format stable.
    print(f"listening on {host}:{port}", flush=True)
    print(
        f"prefork master pid {os.getpid()}: {workers} workers, "
        f"{len(sockets)} listening socket(s), segment {segment}",
        flush=True,
    )

    def worker_body(index: int, sock) -> int:
        return _serve_worker(index, sock, args, segment)

    maintenance = None
    if args.clock == "wall":
        # Background expiry: the master sweeps the shared table so
        # workers never pay a stop-the-world scan.  Replay daemons skip
        # it — their virtual clock lives in the workers.
        master_store = TripletStore(WallClock(), backend=backend)
        maintenance = master_store.sweep
    supervisor = PreforkSupervisor(
        worker_body, sockets, workers, maintenance=maintenance
    )
    try:
        status = supervisor.run()
    finally:
        for sock in sockets:
            sock.close()
        backend.flush()
        backend.close()
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .serve.server import PolicyServer, ReplayClock, WallClock

    _raise_fd_limit()
    workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)
    if workers > 1:
        if args.store_backend != "shm":
            print(
                "error: --workers > 1 requires --store-backend shm "
                "(workers share one memory segment; the other backends "
                "are process-private or single-writer)",
                file=sys.stderr,
            )
            return 2
        return _serve_prefork(args, workers)

    clock = ReplayClock() if args.clock == "replay" else WallClock()
    chain = _build_serve_chain(args, clock, _serve_backend(args))
    server = PolicyServer(chain, clock, host=args.host, port=args.port)

    async def _serve() -> int:
        host, port = await server.start()
        # The smoke job and the benchmark parse this line to find an
        # ephemeral port; keep the format stable.
        print(f"listening on {host}:{port}", flush=True)
        status = await server.run_until_signalled()
        stats = server.stats
        print(
            f"served {stats.decisions} decisions over "
            f"{stats.connections} connections "
            f"({stats.protocol_errors} protocol errors, "
            f"{stats.truncated} truncated)",
            flush=True,
        )
        return status

    return asyncio.run(_serve())


def _cmd_serve_load(args: argparse.Namespace) -> int:
    import asyncio
    import math

    from .serve.loadgen import capture_bot_trace, replay_trace, run_load, tile_requests

    _raise_fd_limit()
    trace = capture_bot_trace(
        threshold=args.delay, num_messages=args.messages, seed=args.seed
    )
    if args.check:
        report = asyncio.run(
            replay_trace(args.host, args.port, trace.requests)
        )
        print(
            f"replayed {report.total} simulated decisions: "
            f"{len(report.mismatches)} mismatches"
        )
        for index, expected, got in report.mismatches[:10]:
            print(f"  request {index}: expected {expected}, got {got}")
        return 0 if report.ok else 1
    per_connection = max(1, math.ceil(args.requests / args.connections))
    slices = tile_requests(trace.requests, args.connections, per_connection)
    stats = asyncio.run(run_load(args.host, args.port, slices))
    tail = stats.latency_summary_ms
    print(
        f"{stats.decisions} decisions over {stats.connections} connections "
        f"in {stats.elapsed:.2f}s: {stats.decisions_per_sec:,.0f}/sec "
        f"(p50 {tail['latency_p50_ms']:.2f} ms, "
        f"p95 {tail['latency_p95_ms']:.2f} ms, "
        f"p99 {tail['latency_p99_ms']:.2f} ms)"
    )
    for verb in sorted(stats.verbs):
        print(f"  {verb}: {stats.verbs[verb]}")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from .core.scorecard import build_scorecard, scorecard_text

    print(
        scorecard_text(
            seed=args.seed, scale=args.scale, workers=args.workers
        )
    )
    rows = build_scorecard(
        seed=args.seed, scale=args.scale, workers=args.workers
    )
    return 0 if all(row.holds for row in rows) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Measuring the Role of Greylisting and "
            "Nolisting in Fighting Spam' (DSN 2016)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help=(
            "worker processes for sharded experiments and the serve "
            "daemon (0 = one per CPU); experiment results are identical "
            "for any value, serve >1 requires --store-backend shm"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "memoize completed experiment shards on disk "
            "($REPRO_CACHE_DIR or ~/.cache/repro-greylisting)"
        ),
    )
    parser.add_argument(
        "--fault-rate",
        type=_fault_rate_arg,
        default=0.0,
        help=(
            "inject measurement-infrastructure faults (host outages, "
            "port-25 flaps, DNS SERVFAIL/timeouts) at this per-entity "
            "rate in [0, 1]; 0 disables injection"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for fault draws (default: --seed)",
    )
    from .greylist.backends import BACKEND_NAMES

    parser.add_argument(
        "--store-backend",
        choices=BACKEND_NAMES,
        default="memory",
        help=(
            "triplet-store backend for greylisting policies (results are "
            "bit-for-bit identical; sqlite/journal survive restarts)"
        ),
    )
    parser.add_argument(
        "--store-path",
        metavar="PATH",
        default=None,
        help=(
            "on-disk location for a durable triplet store "
            "(default: volatile, even for sqlite/journal)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the command under cProfile and print the top 25 "
            "functions by cumulative time to stderr"
        ),
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help=(
            "also dump raw cProfile stats to FILE for offline analysis "
            "(pstats/snakeviz); implies --profile"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("adoption", help="Figure 2: nolisting adoption scan")
    p.add_argument("--domains", type=int, default=20000)
    p.add_argument(
        "--engine",
        choices=("object", "batch", "columnar"),
        default="object",
        help=(
            "shard implementation: per-object simulation, batch "
            "equivalence-class engine, or columnar (vectorized) engine"
        ),
    )
    p.add_argument(
        "--mix-profile",
        choices=("figure2", "provider-consolidated", "dns-abuse"),
        default="figure2",
        help=(
            "generator profile for the synthetic population: the paper's "
            "Figure 2 mix, provider-consolidated MX pools, or an "
            "abuse-shaped registration mix"
        ),
    )
    p.set_defaults(func=_cmd_adoption)

    p = sub.add_parser(
        "internet-scale",
        help="what-if deployment sweep at internet scale",
    )
    p.add_argument("--domains", type=int, default=50000)
    p.add_argument("--messages", type=int, default=400)
    p.add_argument(
        "--engine",
        choices=("object", "batch", "columnar"),
        default="batch",
        help=(
            "per-object simulation, equivalence-class batch engine, or "
            "streaming columnar engine (fixed memory budget at any scale)"
        ),
    )
    p.set_defaults(func=_cmd_internet_scale)

    p = sub.add_parser("defenses", help="Table II + coverage headline")
    p.add_argument("--recipients", type=int, default=3)
    p.set_defaults(func=_cmd_defenses)

    p = sub.add_parser("webmail", help="Table III: webmail retry behaviour")
    p.add_argument("--threshold", type=float, default=21600.0)
    p.set_defaults(func=_cmd_webmail)

    p = sub.add_parser("mta-survey", help="Table IV: MTA retry schedules")
    p.set_defaults(func=_cmd_mta_survey)

    p = sub.add_parser("kelihos", help="Figures 3-4: Kelihos vs greylisting")
    p.add_argument("--threshold", type=float, default=300.0)
    p.add_argument("--messages", type=int, default=100)
    p.set_defaults(func=_cmd_kelihos)

    p = sub.add_parser("deployment", help="Figure 5: benign delivery delays")
    p.add_argument("--threshold", type=float, default=300.0)
    p.add_argument("--messages", type=int, default=2000)
    p.set_defaults(func=_cmd_deployment)

    p = sub.add_parser("synergy", help="greylisting x blacklisting synergy")
    p.set_defaults(func=_cmd_synergy)

    p = sub.add_parser("adaptation", help="obsolescence sweep")
    p.set_defaults(func=_cmd_adaptation)

    p = sub.add_parser("dialects", help="SMTP-dialect fingerprinting survey")
    p.add_argument("--sessions", type=int, default=400)
    p.set_defaults(func=_cmd_dialects)

    p = sub.add_parser("variants", help="greylisting keying variants")
    p.set_defaults(func=_cmd_variants)

    p = sub.add_parser("filter", help="pre- vs post-acceptance comparison")
    p.set_defaults(func=_cmd_filter)

    p = sub.add_parser(
        "serve",
        help=(
            "run the live Postfix policy daemon (greylisting engine "
            "behind check_policy_service)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 binds an ephemeral port, announced on stdout)",
    )
    p.add_argument(
        "--clock",
        choices=("wall", "replay"),
        default="wall",
        help=(
            "wall: live serving on host time; replay: virtual clock "
            "driven by the load generator's stamp attributes (for "
            "equivalence checks against the simulator)"
        ),
    )
    p.add_argument(
        "--delay",
        type=float,
        default=300.0,
        help="greylisting threshold in seconds",
    )
    p.add_argument(
        "--throttle-max",
        type=int,
        default=0,
        help=(
            "enable the throttle plugin: defer a client exceeding this "
            "many messages per period (0 disables)"
        ),
    )
    p.add_argument(
        "--throttle-period",
        type=float,
        default=60.0,
        help="throttle sliding-window length in seconds",
    )
    p.add_argument(
        "--shm-capacity",
        type=int,
        default=None,
        metavar="RECORDS",
        help=(
            "record capacity of the shared-memory triplet table "
            "(shm backend only; default 16384 — the table spills to "
            "fail-safe deferral when full, it never corrupts)"
        ),
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "serve-load",
        help=(
            "drive a running policy daemon with the synthetic internet's "
            "bot traffic (throughput, or --check for decision correctness)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--check",
        action="store_true",
        help=(
            "sequential correctness replay: every served action must "
            "match the simulated ground truth (daemon must run --clock "
            "replay with matching --delay and a fresh store)"
        ),
    )
    p.add_argument(
        "--connections",
        type=int,
        default=100,
        help="concurrent connections for the load phase",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=10000,
        help="total decisions to request across all connections",
    )
    p.add_argument(
        "--messages",
        type=int,
        default=200,
        help="campaign size of the captured bot-traffic trace",
    )
    p.add_argument(
        "--delay",
        type=float,
        default=300.0,
        help="greylisting threshold the trace is captured against",
    )
    p.set_defaults(func=_cmd_serve_load)

    p = sub.add_parser(
        "scorecard",
        help="run every experiment and print paper-vs-measured verdicts",
    )
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_scorecard)

    return parser


def _run_profiled(args: argparse.Namespace) -> int:
    """Run the selected command under cProfile.

    The report goes to stderr so the experiment artefact on stdout stays
    clean (and diffable against unprofiled runs).
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    status = profiler.runcall(args.func, args)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(25)
    sys.stderr.write(buffer.getvalue())
    if args.profile_out is not None:
        stats.dump_stats(args.profile_out)
        sys.stderr.write(f"raw profile written to {args.profile_out}\n")
    return int(status)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile or args.profile_out is not None:
        return _run_profiled(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
