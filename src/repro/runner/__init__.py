"""Parallel sharded experiment runner.

Shards seed sweeps, parameter grids and the Figure 2 population scan
across worker processes, merges shard results deterministically (parallel
runs are bit-for-bit identical to serial ones), and memoizes completed
shards in an on-disk JSON cache so repeated sweeps skip work already done.

* :mod:`repro.runner.pool` — :func:`run_tasks` / :class:`ExperimentRunner`,
  the ordered-merge process pool;
* :mod:`repro.runner.cache` — :class:`ResultCache`, keyed by experiment
  name + canonical params + package version;
* :mod:`repro.runner.shards` — the module-level task functions workers
  execute (one chunk of the adoption scan, one seed of a sensitivity
  sweep, one grid point of a what-if sweep, one scorecard section).
"""

from . import shards  # noqa: F401 — task functions for worker processes
from .cache import ResultCache, canonical_params, default_cache_root
from .pool import ExperimentRunner, TaskFailure, effective_workers, run_tasks

__all__ = [
    "ExperimentRunner",
    "ResultCache",
    "TaskFailure",
    "canonical_params",
    "default_cache_root",
    "effective_workers",
    "run_tasks",
    "shards",
]
