"""Unit tests for CDFs, statistics and table rendering."""

import pytest

from repro.analysis.cdf import EmpiricalCDF, ascii_cdf, ks_distance
from repro.analysis.stats import fraction_within, histogram, summarize
from repro.analysis.tables import (
    format_percent,
    format_seconds,
    mark,
    render_table,
)


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.5) == 0.5
        assert cdf.at(4.0) == 1.0
        assert cdf.at(100.0) == 1.0

    def test_monotone_nondecreasing(self):
        cdf = EmpiricalCDF.from_samples([5, 1, 3, 3, 9, 2])
        xs = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        values = [cdf.at(x) for x in xs]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_samples(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.9) == 90
        assert cdf.quantile(1.0) == 100
        assert cdf.median == 50

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_summary_properties(self):
        cdf = EmpiricalCDF.from_samples([2.0, 4.0, 6.0])
        assert cdf.min == 2.0
        assert cdf.max == 6.0
        assert cdf.mean == 4.0
        assert cdf.n == 3

    def test_steps_deduplicate(self):
        cdf = EmpiricalCDF.from_samples([1, 1, 2])
        steps = cdf.steps()
        assert steps == [(1.0, 2 / 3), (2.0, 1.0)]

    def test_series_on_grid(self):
        cdf = EmpiricalCDF.from_samples([1, 2, 3])
        series = cdf.series([0, 2, 5])
        assert series == [(0, 0.0), (2, 2 / 3), (5, 1.0)]


class TestKSDistance:
    def test_identical_samples_zero(self):
        a = EmpiricalCDF.from_samples([1, 2, 3])
        b = EmpiricalCDF.from_samples([1, 2, 3])
        assert ks_distance(a, b) == 0.0

    def test_disjoint_samples_one(self):
        a = EmpiricalCDF.from_samples([1, 2])
        b = EmpiricalCDF.from_samples([10, 20])
        assert ks_distance(a, b) == 1.0

    def test_symmetric(self):
        a = EmpiricalCDF.from_samples([1, 2, 5, 9])
        b = EmpiricalCDF.from_samples([2, 3, 4])
        assert ks_distance(a, b) == ks_distance(b, a)


class TestAsciiCDF:
    def test_renders_rows(self):
        cdf = EmpiricalCDF.from_samples(range(100))
        plot = ascii_cdf(cdf, width=40, height=8)
        lines = plot.splitlines()
        assert len(lines) == 10  # 8 rows + axis + labels
        assert "#" in plot

    def test_too_small_rejected(self):
        cdf = EmpiricalCDF.from_samples([1, 2])
        with pytest.raises(ValueError):
            ascii_cdf(cdf, width=5, height=2)


class TestSummarize:
    def test_values(self):
        summary = summarize(range(1, 101))
        assert summary.n == 100
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.median == 50
        assert summary.p90 == 90
        assert summary.mean == pytest.approx(50.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestHistogram:
    def test_binning(self):
        bins = histogram([1, 2, 5, 9], edges=[0, 3, 6, 10])
        assert bins == [((0, 3), 2), ((3, 6), 1), ((6, 10), 1)]

    def test_out_of_range_dropped(self):
        bins = histogram([-5, 100], edges=[0, 10])
        assert bins == [((0, 10), 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([1], edges=[0])
        with pytest.raises(ValueError):
            histogram([1], edges=[5, 0])

    def test_fraction_within(self):
        assert fraction_within([1, 2, 3, 4], 2) == 0.5
        with pytest.raises(ValueError):
            fraction_within([], 1)


class TestTables:
    def test_render_alignment(self):
        table = render_table(
            headers=("A", "Bee"),
            rows=[("x", 1), ("longer", 22)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "A      | Bee" in table
        assert "longer | 22" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(headers=("A",), rows=[("x", "y")])

    def test_mark(self):
        assert mark(True) == "YES"
        assert mark(False) == "no"

    def test_format_percent(self):
        assert format_percent(0.4773) == "47.73%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_seconds(self):
        assert format_seconds(45) == "45s"
        assert format_seconds(90) == "1m30s"
        assert format_seconds(7260) == "2h01m"
        with pytest.raises(ValueError):
            format_seconds(-1)
