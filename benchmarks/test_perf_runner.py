"""Bench: the parallel sharded experiment runner.

Measures the two levers the runner adds to repeated experiment sweeps:

* **shard cache** — a warm-cache rerun of the sharded adoption experiment
  must beat the serial cold run by >= 2x wall-clock (the acceptance bar:
  repeated sweeps skip completed shards).  On multi-core hosts the fan-out
  itself also helps; the cache bound is asserted because it holds even on
  the single-CPU containers CI runs in.
* **runner overhead** — dispatching through ``run_tasks`` with one worker
  must not meaningfully slow the serial path down.
"""

import time

from repro.core.adoption import run_adoption_experiment
from repro.runner.cache import ResultCache
from repro.runner.pool import run_tasks

from _util import emit

NUM_DOMAINS = 20000
SEED = 42


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_perf_runner_cached_sweep_speedup(tmp_path):
    """Warm-cache rerun at 4 workers vs serial cold run: >= 2x faster."""
    cache = ResultCache(root=tmp_path)

    serial, serial_s = _timed(
        lambda: run_adoption_experiment(num_domains=NUM_DOMAINS, seed=SEED)
    )
    cold, cold_s = _timed(
        lambda: run_adoption_experiment(
            num_domains=NUM_DOMAINS, seed=SEED, workers=4, cache=cache
        )
    )
    warm, warm_s = _timed(
        lambda: run_adoption_experiment(
            num_domains=NUM_DOMAINS, seed=SEED, workers=4, cache=cache
        )
    )

    emit(
        "Sharded adoption sweep — serial vs cached rerun",
        f"serial cold      : {serial_s * 1000:8.1f} ms\n"
        f"workers=4 cold   : {cold_s * 1000:8.1f} ms "
        f"(stores={cache.stores})\n"
        f"workers=4 warm   : {warm_s * 1000:8.1f} ms "
        f"(hits={cache.hits})\n"
        f"speedup (warm)   : {serial_s / warm_s:8.1f}x",
    )

    # Identical results on every path — the precondition for any of this
    # being usable.
    assert cold == serial
    assert warm == serial
    assert cache.stores > 0 and cache.hits >= cache.stores
    assert serial_s / warm_s >= 2.0


def test_perf_runner_dispatch_overhead(benchmark):
    """run_tasks with one inline worker adds negligible overhead."""
    payloads = [{"x": x} for x in range(1000)]

    def run():
        return sum(run_tasks(_identity_task, payloads, workers=1))

    assert benchmark(run) == sum(range(1000))


def _identity_task(payload):
    return payload["x"]
