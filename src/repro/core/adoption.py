"""The worldwide nolisting-adoption measurement (paper §IV.A, Figure 2).

Generates a synthetic internet with the Figure 2 ground-truth mix, runs the
two-months-apart DNS + SMTP scan pair over it, pushes the captures through
the three-step detection pipeline, and cross-checks popular-domain adoption
— end-to-end, exactly the dataflow of the paper's measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..scan.alexa import (
    PAPER_NOLISTING_RANKS,
    PopularityCrossCheck,
    crosscheck_popularity,
    plant_popular_nolisting,
)
from ..scan.detect import (
    AdoptionSummary,
    DomainClass,
    NolistingDetector,
)
from ..scan.population import (
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)
from ..scan.scanner import DNSScanner, SMTPScanner
from ..sim.rng import RandomStream


@dataclass
class AdoptionExperimentResult:
    """Measured Figure 2 plus validation hooks."""

    summary: AdoptionSummary
    crosscheck: PopularityCrossCheck
    ground_truth: Dict[DomainCategory, int]
    repaired_mx_records: int
    #: classification accuracy against ground truth, per class
    confusion: Dict[str, int]

    def measured_percentages(self) -> Dict[DomainClass, float]:
        return self.summary.percentages()


#: Map from generator ground truth to the expected pipeline verdict.
_TRUTH_TO_CLASS = {
    DomainCategory.SINGLE_MX: DomainClass.ONE_MX,
    DomainCategory.MULTI_MX: DomainClass.MULTI_MX_NO_NOLISTING,
    DomainCategory.NOLISTING: DomainClass.NOLISTING,
    DomainCategory.MISCONFIGURED: DomainClass.DNS_MISCONFIGURED,
}


def run_adoption_experiment(
    num_domains: int = 10000,
    seed: int = 42,
    glue_elision_rate: float = 0.1,
    transient_outage_rate: float = 0.004,
    plant_popular: bool = True,
    config: Optional[PopulationConfig] = None,
) -> AdoptionExperimentResult:
    """Run the full adoption measurement end to end."""
    if config is None:
        config = PopulationConfig(
            num_domains=num_domains,
            transient_outage_rate=transient_outage_rate,
        )
    internet = SyntheticInternet(config, seed=seed)
    if plant_popular:
        needed = len(PAPER_NOLISTING_RANKS)
        if len(internet.domains_in(DomainCategory.NOLISTING)) >= needed:
            plant_popular_nolisting(internet)

    rng = RandomStream(seed, "adoption-scan")
    dns_scanner = DNSScanner(
        internet, glue_elision_rate=glue_elision_rate, rng=rng
    )
    smtp_scanner = SMTPScanner(internet)

    # February 28 and April 25, 2015 — two captures, two months apart.
    dns_a = dns_scanner.scan(scan_index=0)
    dns_b = dns_scanner.scan(scan_index=1)
    repaired = dns_scanner.parallel_resolve(dns_a)
    repaired += dns_scanner.parallel_resolve(dns_b)
    smtp_a = smtp_scanner.scan(scan_index=0)
    smtp_b = smtp_scanner.scan(scan_index=1)

    detector = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b)
    verdicts = detector.classify_all()
    summary = detector.summarize()
    crosscheck = crosscheck_popularity(internet, verdicts)

    truth_by_domain = {t.name: t.category for t in internet.domains}
    confusion = {"correct": 0, "wrong": 0}
    for verdict in verdicts:
        truth = truth_by_domain.get(verdict.domain)
        if truth is None:
            continue
        expected = _TRUTH_TO_CLASS[truth]
        if verdict.domain_class is expected:
            confusion["correct"] += 1
        else:
            confusion["wrong"] += 1

    return AdoptionExperimentResult(
        summary=summary,
        crosscheck=crosscheck,
        ground_truth=internet.truth_counts(),
        repaired_mx_records=repaired,
        confusion=confusion,
    )


def single_scan_false_positives(
    num_domains: int = 10000,
    seed: int = 42,
    transient_outage_rate: float = 0.004,
) -> Dict[str, int]:
    """Ablation: how many non-nolisting domains a single scan miscounts.

    Quantifies the value of the paper's repeat-two-months-later protocol.
    """
    from ..scan.detect import SingleScanVerdict, classify_single_scan

    config = PopulationConfig(
        num_domains=num_domains,
        transient_outage_rate=transient_outage_rate,
    )
    internet = SyntheticInternet(config, seed=seed)
    rng = RandomStream(seed, "single-scan")
    dns = DNSScanner(internet, glue_elision_rate=0.0, rng=rng).scan(0)
    smtp = SMTPScanner(internet).scan(0)

    truth_by_domain = {t.name: t.category for t in internet.domains}
    false_positives = 0
    true_positives = 0
    for observation in dns:
        verdict = classify_single_scan(observation, smtp)
        if verdict is not SingleScanVerdict.NOLISTING_CANDIDATE:
            continue
        if truth_by_domain[observation.domain] is DomainCategory.NOLISTING:
            true_positives += 1
        else:
            false_positives += 1
    return {
        "true_positives": true_positives,
        "false_positives": false_positives,
    }
