"""Global spam-telemetry feed.

A mass spammer does not only hit the server under study — it sprays the
whole internet, and other receivers (spamtraps, honeypots, big providers)
report sightings to the blacklists continuously.  :class:`TelemetryFeed`
models that external reporting stream: once armed for a source address, it
delivers sightings to a :class:`~repro.blacklist.dnsbl.ReactiveBlacklist`
at a configurable rate on the event scheduler.

The reporting *rate* is the lever of the synergy experiment: an aggressive
mass-spammer (high rate) gets listed within minutes — exactly the kind of
sender the paper says greylisting delays long enough to be caught.
"""

from __future__ import annotations

from typing import Dict

from ..net.address import IPv4Address
from ..sim.events import EventHandle, EventScheduler
from ..sim.rng import RandomStream
from .dnsbl import ReactiveBlacklist


class TelemetryFeed:
    """Streams external spam sightings of armed addresses to a blacklist."""

    def __init__(
        self,
        scheduler: EventScheduler,
        blacklist: ReactiveBlacklist,
        rng: RandomStream,
        reports_per_hour: float = 60.0,
    ) -> None:
        if reports_per_hour <= 0:
            raise ValueError("reporting rate must be positive")
        self.scheduler = scheduler
        self.blacklist = blacklist
        self.rng = rng
        self.reports_per_hour = reports_per_hour
        self._armed: Dict[IPv4Address, EventHandle] = {}
        self.reports_delivered = 0

    def arm(self, address: IPv4Address) -> None:
        """Start external reporting for ``address`` (idempotent).

        Called when a source begins spamming — in the experiments, the
        moment the bot makes its first delivery attempt anywhere.
        """
        if address in self._armed:
            return
        self._schedule_next(address)

    def disarm(self, address: IPv4Address) -> None:
        """Stop reporting (the bot went quiet / was cleaned)."""
        handle = self._armed.pop(address, None)
        if handle is not None:
            self.scheduler.cancel(handle)

    @property
    def armed_addresses(self) -> int:
        return len(self._armed)

    def _schedule_next(self, address: IPv4Address) -> None:
        rate_per_second = self.reports_per_hour / 3600.0
        delay = self.rng.expovariate(rate_per_second)
        handle = self.scheduler.schedule_in(
            delay,
            lambda: self._deliver(address),
            label=f"dnsbl-feed:{address}",
        )
        self._armed[address] = handle

    def _deliver(self, address: IPv4Address) -> None:
        if address not in self._armed:
            return
        self.blacklist.report(address)
        self.reports_delivered += 1
        self._schedule_next(address)

    def __repr__(self) -> str:
        return (
            f"TelemetryFeed(armed={self.armed_addresses}, "
            f"delivered={self.reports_delivered})"
        )
