#!/usr/bin/env python3
"""Greylisting threshold tuning: the paper's §VI operational recommendation.

For each candidate threshold, measures (a) which malware families get
through and (b) what the threshold costs benign senders (median delay,
long-tail delay, lost mail) on the synthetic university deployment — then
prints the trade-off table that justifies "use a very short threshold".

Run:  python examples/greylist_threshold_tuning.py
"""

from repro.analysis.tables import format_seconds, render_table
from repro.botnet.families import CUTWAIL, DARKMAILER, KELIHOS
from repro.core.deployment import run_deployment_experiment
from repro.core.greylist_experiment import run_greylist_experiment

THRESHOLDS = (5.0, 60.0, 300.0, 3600.0, 21600.0)


def main() -> None:
    rows = []
    for threshold in THRESHOLDS:
        print(f"measuring threshold {format_seconds(threshold)} ...")
        kelihos = run_greylist_experiment(KELIHOS, threshold, num_messages=30)
        cutwail = run_greylist_experiment(CUTWAIL, threshold, num_messages=30)
        dark = run_greylist_experiment(DARKMAILER, threshold, num_messages=30)
        benign = run_deployment_experiment(
            threshold=threshold, num_messages=800, seed=5
        )
        spam_blocked = sum(
            r.blocked for r in (kelihos, cutwail, dark)
        )
        cdf = benign.delay_cdf()
        rows.append(
            (
                format_seconds(threshold),
                f"{spam_blocked}/3 families",
                "no" if kelihos.blocked else "Kelihos gets through",
                format_seconds(cdf.median),
                format_seconds(cdf.quantile(0.9)),
                benign.lost,
            )
        )

    print()
    print(
        render_table(
            headers=(
                "Threshold",
                "Spam blocked",
                "Leak",
                "Benign median",
                "Benign P90",
                "Benign lost",
            ),
            rows=rows,
            title="Greylisting threshold trade-off",
        )
    )
    print(
        "\nconclusion (matches the paper): retrying malware defeats any\n"
        "threshold, fire-and-forget malware is defeated by every threshold —\n"
        "so pick a SHORT one and spare legitimate senders the delay."
    )


if __name__ == "__main__":
    main()
