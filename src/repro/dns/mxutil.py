"""RFC 5321 MX-set handling.

Ordering and target-selection rules for mail exchangers: sort by preference
(lowest first), break ties deterministically, and resolve each exchange to an
address — falling back to an explicit follow-up A query when the MX answer's
additional section omitted the glue (the case the paper's parallel scanner
had to handle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.address import IPv4Address
from .records import MXRecord
from .resolver import DNSError, MXAnswer, StubResolver


@dataclass(frozen=True)
class MailExchanger:
    """A fully resolved mail exchanger candidate."""

    preference: int
    hostname: str
    address: Optional[IPv4Address]

    @property
    def resolvable(self) -> bool:
        return self.address is not None


def sort_mx(records: List[MXRecord]) -> List[MXRecord]:
    """Order MX records per RFC 5321: ascending preference, name tiebreak."""
    return sorted(records, key=lambda r: (r.preference, r.exchange))


def shuffle_equal_preferences(
    exchangers: List["MailExchanger"], rng
) -> List["MailExchanger"]:
    """Randomize order within equal-preference groups (RFC 5321 §5.1).

    "If there are multiple destinations with the same preference ... the
    sender-SMTP MUST randomize them to spread the load."  Groups stay in
    ascending-preference order; only their internal order is shuffled.
    """
    result: List[MailExchanger] = []
    group: List[MailExchanger] = []
    current: int = None
    for exchanger in exchangers:
        if current is None or exchanger.preference == current:
            group.append(exchanger)
            current = exchanger.preference
        else:
            rng.shuffle(group)
            result.extend(group)
            group = [exchanger]
            current = exchanger.preference
    if group:
        rng.shuffle(group)
        result.extend(group)
    return result


def resolve_exchangers(
    resolver: StubResolver, domain: str, follow_up: bool = True
) -> List[MailExchanger]:
    """Resolve a domain's complete, ordered mail-exchanger list.

    Parameters
    ----------
    resolver:
        The stub resolver to query.
    domain:
        Target domain.
    follow_up:
        When ``True`` (the RFC-compliant behaviour), exchanges missing from
        the MX answer's additional section are re-resolved with explicit A
        queries.  When ``False`` the caller only sees the glue that came with
        the answer — modelling lazy clients and unpatched scan pipelines.

    Raises whatever DNS error the MX query raises (NXDomain / ServFail).
    Exchanges that fail to resolve are kept with ``address=None`` so callers
    can observe partial misconfiguration.
    """
    answer: MXAnswer = resolver.resolve_mx(domain)
    exchangers: List[MailExchanger] = []
    for mx in sort_mx(answer.records):
        address = answer.additional.get(mx.exchange)
        if address is None and follow_up:
            try:
                address = resolver.resolve_address(mx.exchange)
            except DNSError:
                address = None
        exchangers.append(
            MailExchanger(
                preference=mx.preference,
                hostname=mx.exchange,
                address=address,
            )
        )
    return exchangers


def implicit_mx(
    resolver: StubResolver, domain: str
) -> Optional[MailExchanger]:
    """RFC 5321 §5.1 implicit MX: fall back to the domain's own A record.

    Returns ``None`` when the domain has no A record either.
    """
    try:
        address = resolver.resolve_address(domain)
    except DNSError:
        return None
    return MailExchanger(preference=0, hostname=domain, address=address)
