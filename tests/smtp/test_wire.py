"""Unit tests for the SMTP wire-format layer."""

import pytest

from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp.message import Message
from repro.smtp.server import SMTPServer
from repro.smtp.wire import (
    CommandSyntaxError,
    TranscribingSession,
    parse_command,
    render_mail_from,
    render_rcpt_to,
)

CLIENT = IPv4Address.parse("198.51.100.7")


class TestParseCommand:
    def test_helo(self):
        cmd = parse_command("HELO mail.example.net")
        assert cmd.verb == "HELO"
        assert cmd.argument == "mail.example.net"

    def test_ehlo_case_insensitive_verb(self):
        assert parse_command("ehlo x.example").verb == "EHLO"

    def test_mail_from_bracketed(self):
        cmd = parse_command("MAIL FROM:<a@b.net>")
        assert cmd.verb == "MAIL"
        assert cmd.argument == "a@b.net"

    def test_mail_from_with_parameters(self):
        cmd = parse_command("MAIL FROM:<a@b.net> SIZE=1024 BODY=8BITMIME")
        assert cmd.parameter("SIZE") == "1024"
        assert cmd.parameter("BODY") == "8BITMIME"
        assert cmd.parameter("NOPE") is None

    def test_mail_from_bare_address_dialect(self):
        # Bots often skip the angle brackets; the parser tolerates it.
        cmd = parse_command("MAIL FROM:a@b.net")
        assert cmd.argument == "a@b.net"

    def test_rcpt_to(self):
        cmd = parse_command("RCPT TO:<c@d.net>")
        assert cmd.verb == "RCPT"
        assert cmd.argument == "c@d.net"

    def test_null_reverse_path(self):
        # Bounce messages use MAIL FROM:<>.
        cmd = parse_command("MAIL FROM:<>")
        assert cmd.argument == ""

    def test_data_quit_rset(self):
        for verb in ("DATA", "QUIT", "RSET", "NOOP"):
            assert parse_command(verb).verb == verb

    def test_unknown_verb(self):
        assert parse_command("XFROB abc").verb == "UNKNOWN"

    def test_empty_line_rejected(self):
        with pytest.raises(CommandSyntaxError):
            parse_command("   ")

    def test_mail_missing_colon_rejected(self):
        with pytest.raises(CommandSyntaxError):
            parse_command("MAIL a@b.net")

    def test_mail_garbage_path_rejected(self):
        with pytest.raises(CommandSyntaxError):
            parse_command("MAIL FROM:nonsense")

    def test_render_roundtrip(self):
        assert parse_command(render_mail_from("a@b.net")).argument == "a@b.net"
        assert parse_command(render_rcpt_to("c@d.net")).argument == "c@d.net"
        assert render_mail_from("a@b.net", bracketed=False) == "MAIL FROM:a@b.net"


class TestTranscribingSession:
    def _run_session(self, lines, message=None):
        clock = Clock()
        server = SMTPServer(hostname="smtp.victim.example", clock=clock)
        session = server.session_factory(CLIENT)
        wire = TranscribingSession(session, clock)
        replies = [wire.execute(line, message=message) for line in lines]
        return server, wire.transcript, replies

    def test_full_delivery_transcribed(self):
        message = Message(
            sender="a@x.example", recipients=["u@victim.example"]
        )
        server, transcript, replies = self._run_session(
            [
                "EHLO mail.x.example",
                "MAIL FROM:<a@x.example>",
                "RCPT TO:<u@victim.example>",
                "DATA",
                "QUIT",
            ],
            message=message,
        )
        assert all(r.is_positive for r in replies)
        assert server.stats.messages_accepted == 1
        assert transcript.verbs() == ["EHLO", "MAIL", "RCPT", "DATA", "QUIT"]
        assert transcript.ended_with_quit()
        # Banner + 5 commands + 5 replies.
        assert len(transcript.entries) == 11

    def test_syntax_error_gets_500(self):
        _, transcript, replies = self._run_session(["MAIL FROM:garbage"])
        assert replies[0].code == 500
        assert not transcript.ended_with_quit()

    def test_unknown_command_gets_502(self):
        _, _, replies = self._run_session(["EHLO x.example", "XFROB now"])
        assert replies[1].code == 502

    def test_data_without_message_fails(self):
        _, _, replies = self._run_session(
            [
                "EHLO x.example",
                "MAIL FROM:<a@x.example>",
                "RCPT TO:<u@victim.example>",
                "DATA",
            ]
        )
        assert replies[3].code == 554

    def test_malformed_lines_marked_in_commands(self):
        _, transcript, _ = self._run_session(["MAIL FROM:garbage"])
        assert transcript.client_commands()[0].verb == "MALFORMED"

    def test_transcript_renders_directions(self):
        _, transcript, _ = self._run_session(["EHLO x.example"])
        text = str(transcript)
        assert "S: 220" in text
        assert "C: EHLO x.example" in text
