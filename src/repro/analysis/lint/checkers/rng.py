"""RNG discipline checkers.

* ``RNG001`` — the global :mod:`random` module is off-limits outside
  ``sim/rng.py``: ambient RNG state is shared across components, so one
  extra draw anywhere perturbs every later draw and breaks the
  workers-1/2/4 bit-for-bit guarantee.  Components must split a private
  :class:`~repro.sim.rng.RandomStream` instead.
* ``SEED001`` — constructing ``RandomStream`` from a literal seed pins a
  component to one fixed stream regardless of the experiment's ``--seed``,
  which silently decouples it from seed sweeps and sensitivity runs.
  Seeds must be threaded from the experiment payload (or the stream split
  from a parent).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext, dotted_name

#: The one module allowed to touch :mod:`random` directly.
RNG_MODULE = "sim/rng.py"


class DirectRandomUse(Checker):
    rule_id = "RNG001"
    severity = Severity.ERROR
    description = (
        "direct use of the global `random` module outside sim/rng.py; "
        "split a RandomStream instead"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and not ctx.is_module(RNG_MODULE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "import of the global `random` module; derive "
                            "randomness by splitting a RandomStream "
                            "(repro.sim.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "import from the global `random` module; derive "
                        "randomness by splitting a RandomStream "
                        "(repro.sim.rng)",
                    )
            elif isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is not None and chain[0] == "random" and len(chain) > 1:
                    yield self.finding(
                        ctx,
                        node,
                        f"use of `{'.'.join(chain)}`; draw from a split "
                        "RandomStream instead of the shared global RNG",
                    )


class LiteralSeedStream(Checker):
    rule_id = "SEED001"
    severity = Severity.ERROR
    description = (
        "RandomStream built from a literal seed; thread the experiment "
        "seed or split from a parent stream"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and not ctx.is_module(RNG_MODULE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name != "RandomStream":
                continue
            seed_node: ast.AST | None = None
            if node.args:
                seed_node = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_node = keyword.value
            if isinstance(seed_node, ast.Constant) and isinstance(
                seed_node.value, int
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"RandomStream constructed from literal seed "
                    f"{seed_node.value}; the stream is pinned regardless of "
                    "the experiment seed — thread `seed` through, or split "
                    "from a parent stream",
                    seed=seed_node.value,
                )
