"""Entry point for ``python -m repro.analysis`` — the determinism linter."""

import sys

from .lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
