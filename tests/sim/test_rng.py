"""Unit tests for the splittable random streams."""

import pytest

from repro.sim.rng import RandomStream, spread


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomStream(7)
        b = RandomStream(8)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_split_is_stable(self):
        a = RandomStream(7).split("bots")
        b = RandomStream(7).split("bots")
        assert a.random() == b.random()

    def test_split_labels_independent(self):
        root = RandomStream(7)
        a = root.split("alpha")
        b = root.split("beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_split_does_not_consume_parent(self):
        root = RandomStream(7)
        before = RandomStream(7)
        root.split("child")
        assert root.random() == before.random()

    def test_nested_split_paths(self):
        a = RandomStream(7).split("x").split("y")
        b = RandomStream(7).split("x").split("y")
        assert a.random() == b.random()
        assert "x/y" in a.label


class TestDraws:
    def test_uniform_bounds(self):
        rng = RandomStream(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_choice_and_sample(self):
        rng = RandomStream(2)
        population = ["a", "b", "c", "d"]
        assert rng.choice(population) in population
        sampled = rng.sample(population, 2)
        assert len(sampled) == 2 and len(set(sampled)) == 2

    def test_shuffle_is_permutation(self):
        rng = RandomStream(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_weighted_index_respects_zero_weights(self):
        rng = RandomStream(4)
        for _ in range(50):
            assert rng.weighted_index([0.0, 1.0, 0.0]) == 1

    def test_weighted_index_distribution(self):
        rng = RandomStream(5)
        draws = [rng.weighted_index([1.0, 9.0]) for _ in range(2000)]
        fraction_heavy = draws.count(1) / len(draws)
        assert 0.85 < fraction_heavy < 0.95

    def test_weighted_index_rejects_bad_weights(self):
        rng = RandomStream(6)
        with pytest.raises(ValueError):
            rng.weighted_index([0.0, 0.0])
        with pytest.raises(ValueError):
            rng.weighted_index([1.0, -1.0])

    def test_zipf_rank_bounds(self):
        rng = RandomStream(7)
        ranks = [rng.zipf_rank(100) for _ in range(200)]
        assert all(1 <= r <= 100 for r in ranks)
        # Zipf: rank 1 should be the most common.
        assert ranks.count(1) >= ranks.count(50)

    def test_zipf_rank_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomStream(8).zipf_rank(0)


class TestSpread:
    def test_spread_builds_labelled_streams(self):
        streams = spread(9, ["dns", "smtp", "bots"])
        assert set(streams) == {"dns", "smtp", "bots"}
        assert streams["dns"].random() != streams["smtp"].random()

    def test_spread_deterministic(self):
        a = spread(9, ["x"])["x"]
        b = spread(9, ["x"])["x"]
        assert a.random() == b.random()
