"""Triplet-database persistence.

Postgrey keeps its triplet state in an on-disk BerkeleyDB; restarts must
not forget who already passed (or every sender would eat the delay again).
This module provides a text snapshot format for :class:`TripletStore` —
dump, load, and a compacting save that drops expired entries, mirroring
Postgrey's periodic database cleanup.
"""

from __future__ import annotations

from typing import List, Optional, TextIO

from ..net.address import IPv4Address
from ..sim.clock import Clock
from .store import TripletEntry, TripletStore
from .triplet import Triplet

#: Snapshot format version, checked on load.
FORMAT_HEADER = "# repro-greylist-db v1"


class PersistenceError(ValueError):
    """Raised for malformed snapshots."""


def dump_store(store: TripletStore) -> str:
    """Serialize the live entries of a store.

    One line per triplet::

        <client-ip> <sender> <recipient> <first> <last> <attempts> <passed-at|->
    """
    lines: List[str] = [FORMAT_HEADER]
    for entry in sorted(
        store.entries(), key=lambda e: (e.first_seen, str(e.triplet.client))
    ):
        # repr() gives the shortest exact decimal for the float, so a
        # dump/load round trip preserves timestamps bit-for-bit.
        passed = repr(entry.passed_at) if entry.passed else "-"
        lines.append(
            f"{entry.triplet.client} {entry.triplet.sender} "
            f"{entry.triplet.recipient} {entry.first_seen!r} "
            f"{entry.last_seen!r} {entry.attempts} {passed}"
        )
    return "\n".join(lines) + "\n"


def load_store(
    text: str,
    clock: Clock,
    retry_window: Optional[float] = None,
    whitelist_lifetime: Optional[float] = None,
) -> TripletStore:
    """Rebuild a store from a snapshot.

    Entries that are already expired relative to ``clock.now`` are dropped
    on load (the same semantics a live lookup would apply).  ``None`` for
    either window means the :class:`TripletStore` default.
    """
    kwargs = {}
    if retry_window is not None:
        kwargs["retry_window"] = retry_window
    if whitelist_lifetime is not None:
        kwargs["whitelist_lifetime"] = whitelist_lifetime
    store = TripletStore(clock, **kwargs)

    lines = text.splitlines()
    if not lines or lines[0].strip() != FORMAT_HEADER:
        raise PersistenceError("missing or unknown snapshot header")
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 7:
            raise PersistenceError(
                f"malformed snapshot line {line_number}: {line!r}"
            )
        client, sender, recipient, first, last, attempts, passed = parts
        triplet = Triplet(IPv4Address.parse(client), sender, recipient)
        entry = TripletEntry(
            triplet=triplet,
            first_seen=float(first),
            last_seen=float(last),
            attempts=int(attempts),
            passed=(passed != "-"),
            passed_at=None if passed == "-" else float(passed),
        )
        if entry.attempts < 1 or entry.last_seen < entry.first_seen:
            raise PersistenceError(
                f"inconsistent entry on snapshot line {line_number}"
            )
        if store._is_expired(entry):
            continue
        store._entries[triplet] = entry
    return store


def save_compacted(store: TripletStore, stream: TextIO) -> int:
    """Sweep expired entries, then write the snapshot to ``stream``.

    Returns the number of entries written.  This is the Postgrey
    ``--max-age`` cleanup fused with the database save.
    """
    store.sweep()
    text = dump_store(store)
    stream.write(text)
    return store.size


def snapshot_size_bytes(store: TripletStore) -> int:
    """Size of the serialized database — the §VI disk-cost metric."""
    return len(dump_store(store).encode("utf-8"))
