"""Spam campaigns and the C&C job model.

A :class:`SpamCampaign` is the bot master's job: one message template and a
recipient list, handed to bots as concrete :class:`~repro.smtp.message.Message`
jobs.  A :class:`CommandAndControl` distributes jobs to a fleet of bots —
used by the larger examples and the combined-defence ablation.

The single-campaign discipline matters experimentally: the paper ruled out
the "second spam task re-using greylisted triplets" confound by checking
(via unprotected addresses) that all attempts carried the same campaign.
Tagging every generated message with the campaign id makes the equivalent
check a one-liner here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..sim.rng import RandomStream
from ..smtp.message import Message, validate_address
from .bot import SpamBot

_campaign_ids = itertools.count(1)


@dataclass
class SpamCampaign:
    """A bot master's spam job."""

    sender: str
    recipients: List[str]
    subject: str = "You won!!!"
    body: str = "Click here for your prize: http://spam.invalid/x"
    campaign_id: str = field(
        default_factory=lambda: f"campaign-{next(_campaign_ids)}"
    )

    def __post_init__(self) -> None:
        self.sender = validate_address(self.sender)
        if not self.recipients:
            raise ValueError("campaign needs at least one recipient")
        self.recipients = [validate_address(r) for r in self.recipients]

    def message_for(self, recipients: Sequence[str]) -> Message:
        """Materialize a job message for a subset of recipients."""
        return Message(
            sender=self.sender,
            recipients=list(recipients),
            subject=self.subject,
            body=self.body,
            campaign_id=self.campaign_id,
        )

    def single_recipient_jobs(self) -> List[Message]:
        """One message per recipient — how the experiments drive bots."""
        return [self.message_for([r]) for r in self.recipients]


def make_recipient_list(
    domain: str, count: int, prefix: str = "victim"
) -> List[str]:
    """Generate ``count`` distinct recipient addresses at ``domain``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [f"{prefix}{i}@{domain}" for i in range(1, count + 1)]


class CommandAndControl:
    """Distributes campaign jobs across a bot fleet."""

    def __init__(self, bots: Iterable[SpamBot], rng: Optional[RandomStream] = None) -> None:
        self.bots = list(bots)
        if not self.bots:
            raise ValueError("C&C needs at least one bot")
        self.rng = rng
        self.jobs_dispatched = 0

    def dispatch(self, campaign: SpamCampaign) -> None:
        """Spread the campaign's recipients over the fleet round-robin.

        With an rng, recipients are shuffled first (real botnets partition
        target lists arbitrarily); without one, assignment is deterministic.
        """
        recipients = list(campaign.recipients)
        if self.rng is not None:
            self.rng.shuffle(recipients)
        for index, recipient in enumerate(recipients):
            bot = self.bots[index % len(self.bots)]
            bot.assign(campaign.message_for([recipient]))
            self.jobs_dispatched += 1

    def __repr__(self) -> str:
        return (
            f"CommandAndControl(bots={len(self.bots)}, "
            f"jobs={self.jobs_dispatched})"
        )
