"""Synthetic internet population for the adoption measurement.

The Figure 2 experiment needs an internet's worth of mail domains whose
ground truth we control: how many use a single MX, several MXes, nolisting,
or are misconfigured — plus the realistic nuisances the paper's pipeline had
to survive (transiently-down primaries, MX answers with missing glue,
persistent primary outages indistinguishable from nolisting).

:class:`SyntheticInternet` generates such a population deterministically
from a seed and exposes exactly the two views the real study had:
authoritative DNS (via a :class:`~repro.dns.zone.ZoneStore`) and per-scan
TCP/25 reachability (via :meth:`is_listening`).

Generation is *chunked*: the domain space is split into fixed-size chunks,
each built from its own RNG sub-stream (``seed -> "chunk:<k>"``) and its own
disjoint slice of the address space.  A chunk's content therefore depends
only on ``(config, seed, chunk index)`` — never on which other chunks were
generated in the same process — which is what lets the parallel experiment
runner hand each worker a disjoint slice of the population
(:meth:`SyntheticInternet.shard`) and still merge results bit-for-bit
identical to a serial run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dns.zone import ZoneStore
from ..net.address import AddressPool, IPv4Address, IPv4Network
from ..sim.rng import RandomStream


class DomainCategory(enum.Enum):
    """Ground-truth configuration of a generated domain."""

    SINGLE_MX = "single-mx"
    MULTI_MX = "multi-mx"
    NOLISTING = "nolisting"
    MISCONFIGURED = "misconfigured"


#: Figure 2's published mix (fractions of all domains).
FIGURE2_MIX: Dict[DomainCategory, float] = {
    DomainCategory.SINGLE_MX: 0.4773,
    DomainCategory.MULTI_MX: 0.4597,
    DomainCategory.MISCONFIGURED: 0.0578,
    DomainCategory.NOLISTING: 0.0052,
}

#: Upper bound on addresses one domain can consume (multi-MX tops out at a
#: primary plus three extra exchangers); sizes each chunk's address slice.
MAX_ADDRESSES_PER_DOMAIN = 4


@dataclass
class DomainTruth:
    """Everything the generator decided about one domain."""

    name: str
    category: DomainCategory
    mx_hosts: List[Tuple[str, int, Optional[IPv4Address]]] = field(
        default_factory=list
    )  # (hostname, preference, address-or-None)
    #: Scan index (0 or 1) during which the *primary* MX is spuriously down,
    #: or None.  Models maintenance windows / transient failures.
    outage_scan: Optional[int] = None
    #: Primary down in *both* scans (a persistent failure, which the paper
    #: deliberately counts as nolisting-equivalent).
    persistent_outage: bool = False
    alexa_rank: Optional[int] = None

    @property
    def primary(self) -> Optional[Tuple[str, int, Optional[IPv4Address]]]:
        if not self.mx_hosts:
            return None
        return min(self.mx_hosts, key=lambda h: h[1])

    @property
    def secondaries(self) -> List[Tuple[str, int, Optional[IPv4Address]]]:
        if len(self.mx_hosts) < 2:
            return []
        primary = self.primary
        return [h for h in self.mx_hosts if h is not primary]


@dataclass
class PopulationConfig:
    """Knobs of the generator."""

    num_domains: int = 10000
    mix: Dict[DomainCategory, float] = field(
        default_factory=lambda: dict(FIGURE2_MIX)
    )
    #: Fraction of single/multi-MX domains whose primary suffers a transient
    #: outage during exactly one of the two scans.
    transient_outage_rate: float = 0.004
    #: Fraction of multi-MX domains whose primary is persistently dead
    #: (counted as nolisting by the paper's operational definition).
    persistent_outage_rate: float = 0.0
    #: Fraction of multi-MX domains (2, 3 or 4 exchangers).
    extra_mx_weights: Tuple[float, float, float] = (0.72, 0.2, 0.08)
    #: Of the misconfigured domains, fraction that have a dangling MX (the
    #: rest have no MX records at all).
    dangling_mx_fraction: float = 0.5
    address_space: str = "10.0.0.0/8"
    #: Domains per generation chunk.  Part of the population's identity: the
    #: same (seed, chunk_size) yields the same domains whether chunks are
    #: built in one process or spread over many workers.
    chunk_size: int = 512

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError("population needs at least one domain")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"category mix must sum to 1, got {total}")
        for rate in (self.transient_outage_rate, self.persistent_outage_rate,
                     self.dangling_mx_fraction):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must lie in [0, 1]")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")

    @property
    def num_chunks(self) -> int:
        return -(-self.num_domains // self.chunk_size)

    @property
    def chunk_address_stride(self) -> int:
        """Addresses reserved per chunk (disjoint across chunks)."""
        return self.chunk_size * MAX_ADDRESSES_PER_DOMAIN


def population_params(config: PopulationConfig) -> Dict[str, object]:
    """Canonical, JSON-able description of a config (cache keys, workers)."""
    return {
        "num_domains": config.num_domains,
        "mix": {c.value: config.mix[c] for c in sorted(config.mix, key=lambda c: c.value)},
        "transient_outage_rate": config.transient_outage_rate,
        "persistent_outage_rate": config.persistent_outage_rate,
        "extra_mx_weights": list(config.extra_mx_weights),
        "dangling_mx_fraction": config.dangling_mx_fraction,
        "address_space": config.address_space,
        "chunk_size": config.chunk_size,
    }


def population_from_params(params: Dict[str, object]) -> PopulationConfig:
    """Inverse of :func:`population_params`."""
    return PopulationConfig(
        num_domains=int(params["num_domains"]),
        mix={DomainCategory(k): v for k, v in params["mix"].items()},
        transient_outage_rate=float(params["transient_outage_rate"]),
        persistent_outage_rate=float(params["persistent_outage_rate"]),
        extra_mx_weights=tuple(params["extra_mx_weights"]),
        dangling_mx_fraction=float(params["dangling_mx_fraction"]),
        address_space=str(params["address_space"]),
        chunk_size=int(params["chunk_size"]),
    )


@dataclass
class PlannedDomain:
    """The cheap part of one domain's ground truth: name, category, rank.

    Everything a coordinator needs to shard, plant popular adopters and
    merge results — without paying for zones, addresses or outage draws.
    """

    index: int
    name: str
    category: DomainCategory
    alexa_rank: int


class PopulationPlan:
    """Deterministic per-domain plan shared by every worker.

    Apportions domains to categories (largest-remainder, exact counts),
    shuffles the category order and the Alexa-style rank permutation — all
    O(n) in cheap scalar data.  Both the full generator and every shard
    derive the same plan from ``(config, seed)``, so chunk ``k`` means the
    same domains everywhere.
    """

    def __init__(self, config: PopulationConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        root = RandomStream(seed, "population")

        counts = self._category_counts(config)
        order: List[DomainCategory] = []
        # Canonical category order: the plan must not depend on the mix
        # dict's insertion order, or a worker rebuilding the config from
        # canonical params would lay out a different population.
        for category in sorted(counts, key=lambda c: c.value):
            order.extend([category] * counts[category])
        root.split("order").shuffle(order)

        ranks = list(range(1, config.num_domains + 1))
        root.split("ranks").shuffle(ranks)

        self.domains: List[PlannedDomain] = [
            PlannedDomain(
                index=index,
                name=f"dom{index:07d}.example",
                category=category,
                alexa_rank=ranks[index],
            )
            for index, category in enumerate(order)
        ]

    @staticmethod
    def _category_counts(config: PopulationConfig) -> Dict[DomainCategory, int]:
        """Apportion domains to categories with largest-remainder rounding."""
        n = config.num_domains
        raw = {c: n * frac for c, frac in config.mix.items()}
        counts = {c: int(v) for c, v in raw.items()}
        shortfall = n - sum(counts.values())
        by_remainder = sorted(
            raw, key=lambda c: (counts[c] - raw[c], c.value)
        )
        for category in by_remainder[:shortfall]:
            counts[category] += 1
        return counts

    @property
    def num_chunks(self) -> int:
        return self.config.num_chunks

    def chunk(self, chunk_index: int) -> List[PlannedDomain]:
        """The planned domains of chunk ``chunk_index``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ValueError(
                f"chunk {chunk_index} out of range [0, {self.num_chunks})"
            )
        size = self.config.chunk_size
        return self.domains[chunk_index * size: (chunk_index + 1) * size]

    def truth_counts(self) -> Dict[DomainCategory, int]:
        counts = {c: 0 for c in DomainCategory}
        for planned in self.domains:
            counts[planned.category] += 1
        return counts

    def domains_in(self, category: DomainCategory) -> List[PlannedDomain]:
        return [d for d in self.domains if d.category is category]

    def rank_of(self) -> Dict[str, int]:
        """Domain name -> current Alexa rank (reflects any planting)."""
        return {d.name: d.alexa_rank for d in self.domains}


class SyntheticInternet:
    """A generated population of mail domains with ground truth attached.

    Parameters
    ----------
    config, seed:
        Identity of the population.
    chunks:
        Chunk indices to generate; ``None`` builds the full population.
        Use :meth:`shard` for the explicit worker-side constructor.
    plan:
        Pre-computed :class:`PopulationPlan` to reuse (must match
        ``(config, seed)``); avoids re-planning when the caller already
        holds one.
    """

    def __init__(
        self,
        config: PopulationConfig,
        seed: int,
        chunks: Optional[Sequence[int]] = None,
        plan: Optional[PopulationPlan] = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.zones = ZoneStore()
        self.domains: List[DomainTruth] = []
        self._listening: Dict[IPv4Address, bool] = {}
        #: address -> scan index during which it is spuriously down
        self._down_during_scan: Dict[IPv4Address, int] = {}
        network = IPv4Network.parse(config.address_space)
        if config.num_chunks * config.chunk_address_stride > network.num_addresses:
            raise ValueError(
                f"address space {config.address_space} too small for "
                f"{config.num_domains} domains in chunks of {config.chunk_size}"
            )
        self._pool = AddressPool(network)
        self.plan = plan if plan is not None else PopulationPlan(config, seed)
        if chunks is None:
            self.chunk_indices: List[int] = list(range(self.plan.num_chunks))
        else:
            self.chunk_indices = sorted(set(int(c) for c in chunks))
        root = RandomStream(seed, "population")
        for chunk_index in self.chunk_indices:
            self._generate_chunk(root, chunk_index)

    @classmethod
    def shard(
        cls,
        config: PopulationConfig,
        seed: int,
        chunks: Iterable[int],
    ) -> "SyntheticInternet":
        """Generate only the given chunks of the population.

        The returned internet holds exactly the domains (and zones,
        addresses, outage schedules) those chunks hold in the full
        population — a worker-sized, bit-identical slice.
        """
        return cls(config, seed, chunks=list(chunks))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate_chunk(self, root: RandomStream, chunk_index: int) -> None:
        """Build one chunk from its own RNG streams and address slice."""
        chunk_rng = root.split(f"chunk:{chunk_index}")
        outage_rng = chunk_rng.split("outages")
        mx_rng = chunk_rng.split("mx-count")
        misc_rng = chunk_rng.split("misconfig")
        pool = self._pool.subpool(
            chunk_index * self.config.chunk_address_stride,
            self.config.chunk_address_stride,
        )

        for planned in self.plan.chunk(chunk_index):
            truth = DomainTruth(
                name=planned.name,
                category=planned.category,
                alexa_rank=planned.alexa_rank,
            )
            category = planned.category
            if category is DomainCategory.SINGLE_MX:
                self._build_single(truth, pool)
                self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.MULTI_MX:
                self._build_multi(truth, pool, mx_rng)
                if outage_rng.random() < self.config.persistent_outage_rate:
                    self._apply_persistent_outage(truth)
                else:
                    self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.NOLISTING:
                self._build_nolisting(truth, pool)
            else:
                self._build_misconfigured(truth, pool, misc_rng)
            self.domains.append(truth)

    def _allocate_mx(
        self,
        truth: DomainTruth,
        pool: AddressPool,
        label: str,
        preference: int,
        listening: bool,
    ) -> IPv4Address:
        address = pool.allocate()
        hostname = f"{label}.{truth.name}"
        zone = self.zones.get_or_create(truth.name)
        zone.add_a(hostname, address)
        zone.add_mx(preference, hostname)
        truth.mx_hosts.append((hostname, preference, address))
        self._listening[address] = listening
        return address

    def _build_single(self, truth: DomainTruth, pool: AddressPool) -> None:
        self._allocate_mx(truth, pool, "smtp", 10, listening=True)

    def _build_multi(
        self, truth: DomainTruth, pool: AddressPool, rng: RandomStream
    ) -> None:
        extra = rng.weighted_index(list(self.config.extra_mx_weights)) + 1
        self._allocate_mx(truth, pool, "smtp", 10, listening=True)
        for i in range(extra):
            self._allocate_mx(
                truth, pool, f"smtp{i + 1}", 10 * (i + 2), listening=True
            )

    def _build_nolisting(self, truth: DomainTruth, pool: AddressPool) -> None:
        # Primary resolves but refuses port 25; secondary works (Figure 1).
        self._allocate_mx(truth, pool, "smtp", 0, listening=False)
        self._allocate_mx(truth, pool, "smtp1", 15, listening=True)

    def _build_misconfigured(
        self, truth: DomainTruth, pool: AddressPool, rng: RandomStream
    ) -> None:
        zone = self.zones.get_or_create(truth.name)
        if rng.random() < self.config.dangling_mx_fraction:
            # MX points at a hostname with no A record anywhere.
            hostname = f"ghost.{truth.name}"
            zone.add_mx(10, hostname)
            truth.mx_hosts.append((hostname, 10, None))
        else:
            # Domain exists (has an A record for www) but no MX at all.
            zone.add_a(f"www.{truth.name}", pool.allocate())

    def _maybe_transient(self, truth: DomainTruth, rng: RandomStream) -> None:
        if rng.random() >= self.config.transient_outage_rate:
            return
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        scan_index = rng.randint(0, 1)
        truth.outage_scan = scan_index
        self._down_during_scan[primary[2]] = scan_index

    def _apply_persistent_outage(self, truth: DomainTruth) -> None:
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        truth.persistent_outage = True
        self._listening[primary[2]] = False

    # ------------------------------------------------------------------
    # Scan-time views
    # ------------------------------------------------------------------
    def is_listening(self, address: IPv4Address, scan_index: int) -> bool:
        """TCP/25 reachability of ``address`` as seen by scan ``scan_index``."""
        if not self._listening.get(address, False):
            return False
        return self._down_during_scan.get(address) != scan_index

    def all_mail_addresses(self) -> List[IPv4Address]:
        """Every address allocated to an MX host (the scan's address space)."""
        return [
            addr
            for truth in self.domains
            for (_, _, addr) in truth.mx_hosts
            if addr is not None
        ]

    # ------------------------------------------------------------------
    # Ground truth helpers (for validating the pipeline)
    # ------------------------------------------------------------------
    def truth_counts(self) -> Dict[DomainCategory, int]:
        counts = {c: 0 for c in DomainCategory}
        for truth in self.domains:
            counts[truth.category] += 1
        return counts

    def domains_in(self, category: DomainCategory) -> List[DomainTruth]:
        return [t for t in self.domains if t.category is category]

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(domains={self.num_domains}, seed={self.seed})"
        )
