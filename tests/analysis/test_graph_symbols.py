"""Symbol collection: module names, imports, globals, star exports."""

import textwrap

from repro.analysis.lint import ModuleContext
from repro.analysis.lint.framework import context_from_source
from repro.analysis.lint.graph import collect_module, dotted_module_name


def collect(source, module_path="core/example.py"):
    ctx, parse_finding = context_from_source(
        textwrap.dedent(source), module_path
    )
    assert parse_finding is None
    assert isinstance(ctx, ModuleContext)
    return collect_module(ctx)


class TestDottedModuleName:
    def test_package_module(self):
        assert dotted_module_name("core/adoption.py") == "repro.core.adoption"

    def test_init_maps_to_package(self):
        assert dotted_module_name("scan/__init__.py") == "repro.scan"

    def test_root_init(self):
        assert dotted_module_name("__init__.py") == "repro"

    def test_out_of_package_trees_have_no_dotted_name(self):
        assert dotted_module_name("tests/analysis/test_x.py") is None
        assert dotted_module_name("scripts/tool.py") is None
        assert dotted_module_name("benchmarks/test_perf.py") is None

    def test_snippet_pseudo_path(self):
        assert dotted_module_name("<snippet>") is None


class TestFunctionsAndClasses:
    def test_functions_classes_methods_collected(self):
        ms = collect(
            """\
            def helper():
                pass

            async def pump():
                pass

            class Store:
                def get(self):
                    pass

                def _internal(self):
                    pass
            """
        )
        assert set(ms.functions) == {"helper", "pump"}
        assert ms.functions["pump"].is_async
        assert not ms.functions["helper"].is_async
        store = ms.classes["Store"]
        assert set(store.methods) == {"get", "_internal"}
        assert store.methods["get"].qualname == "Store.get"
        assert store.methods["get"].class_name == "Store"

    def test_base_chains_recorded_as_written(self):
        ms = collect(
            """\
            import abc
            from repro.greylist.backends import TripletBackend

            class MemoryBackend(TripletBackend):
                pass

            class Fancy(abc.ABC):
                pass
            """
        )
        assert list(ms.classes["MemoryBackend"].base_chains) == [("TripletBackend",)]
        assert list(ms.classes["Fancy"].base_chains) == [("abc", "ABC")]


class TestImports:
    def test_plain_import_binds_head(self):
        ms = collect("import os.path\n")
        assert ms.imports["os"].module == "os"
        assert ms.imports["os"].name is None

    def test_import_asname_binds_full_module(self):
        ms = collect("import random as rnd\n")
        binding = ms.imports["rnd"]
        assert binding.module == "random"
        assert binding.name is None

    def test_from_import(self):
        ms = collect("from repro.sim.rng import RandomStream\n")
        binding = ms.imports["RandomStream"]
        assert binding.module == "repro.sim.rng"
        assert binding.name == "RandomStream"

    def test_relative_import_resolved_against_module(self):
        ms = collect(
            "from .profiles import PROFILE_CODE\n",
            module_path="scan/columnar.py",
        )
        assert ms.imports["PROFILE_CODE"].module == "repro.scan.profiles"

    def test_double_dot_relative_import(self):
        ms = collect(
            "from ..sim.rng import RandomStream\n",
            module_path="scan/columnar.py",
        )
        assert ms.imports["RandomStream"].module == "repro.sim.rng"

    def test_relative_import_from_init_stays_in_package(self):
        ms = collect(
            "from .batch import batched_adoption_shard\n",
            module_path="scan/__init__.py",
        )
        binding = ms.imports["batched_adoption_shard"]
        assert binding.module == "repro.scan.batch"

    def test_lazy_in_function_import_collected(self):
        # The repo breaks the core <-> runner cycle with imports inside
        # functions; resolution must still see them.
        ms = collect(
            """\
            def run():
                from repro.runner.pool import run_tasks
                return run_tasks
            """
        )
        assert ms.imports["run_tasks"].module == "repro.runner.pool"

    def test_star_import_recorded(self):
        ms = collect("from repro.scan.batch import *\n")
        assert [module for module, _ in ms.star_imports] == ["repro.scan.batch"]


class TestGlobalsAndMutation:
    def test_container_globals_flagged_as_containers(self):
        ms = collect(
            """\
            CACHE = {}
            NAMES = ["a"]
            LIMIT = 10
            tags = set()
            """
        )
        assert ms.globals["CACHE"].is_container
        assert ms.globals["NAMES"].is_container
        assert not ms.globals["LIMIT"].is_container
        assert ms.globals["tags"].is_container

    def test_constant_naming_and_final(self):
        ms = collect(
            """\
            from typing import Final

            UPPER = {}
            lower = {}
            pinned: Final = {}
            """
        )
        assert ms.globals["UPPER"].constant_named
        assert not ms.globals["lower"].constant_named
        assert ms.globals["pinned"].is_final

    def test_mutating_method_marks_global(self):
        ms = collect(
            """\
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """
        )
        assert ms.globals["CACHE"].mutated

    def test_append_marks_global(self):
        ms = collect(
            """\
            EVENTS = []

            def record(event):
                EVENTS.append(event)
            """
        )
        assert ms.globals["EVENTS"].mutated

    def test_global_statement_rebind_marks_global(self):
        # The ``global`` declaration may appear after other statements in
        # walk order; collection must still connect it to the rebind.
        ms = collect(
            """\
            STATE = {}

            def reset():
                value = {}
                global STATE
                STATE = value
            """
        )
        assert ms.globals["STATE"].mutated

    def test_read_only_global_not_marked(self):
        ms = collect(
            """\
            TABLE = {"a": 1}

            def look(key):
                return TABLE.get(key)
            """
        )
        assert not ms.globals["TABLE"].mutated


class TestExports:
    def test_explicit_all_wins(self):
        ms = collect(
            """\
            __all__ = ["visible"]

            def visible():
                pass

            def also_public():
                pass
            """
        )
        assert list(ms.exported_names()) == ["visible"]

    def test_public_names_without_all(self):
        ms = collect(
            """\
            def visible():
                pass

            def _hidden():
                pass

            class Thing:
                pass
            """
        )
        exported = ms.exported_names()
        assert "visible" in exported
        assert "Thing" in exported
        assert "_hidden" not in exported
