"""Scan dataset containers.

Mirrors the two scans.io products the paper consumed:

* the **DNS Records (ANY)** dataset — per-domain MX/A answers, some with the
  exchange's address missing (the "not properly resolved" records the
  authors patched with a parallel scanner); and
* the **IPv4 SMTP banner grab** — the set of addresses that answered a SYN
  on port 25 at scan time.

Both are plain data: the detection pipeline in :mod:`repro.scan.detect`
works *only* from these, never from ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..net.address import IPv4Address


@dataclass
class MXObservation:
    """One MX record as captured by the DNS scan."""

    preference: int
    exchange: str
    address: Optional[IPv4Address]  # None = glue missing in the capture

    @property
    def resolved(self) -> bool:
        return self.address is not None


@dataclass
class DomainObservation:
    """Everything the DNS scan captured for one domain."""

    domain: str
    mx: List[MXObservation] = field(default_factory=list)
    nxdomain: bool = False
    servfail: bool = False
    #: the query went unanswered (resolver/network fault) — like servfail,
    #: a transient condition this scan learned nothing from
    timeout: bool = False

    @property
    def failed_transiently(self) -> bool:
        """The scan got no answer at all for this domain (SERVFAIL/timeout).

        Unlike NXDOMAIN, which is an authoritative statement about the
        domain, these tell us nothing — the two-scan protocol falls back
        to the other scan's observation.
        """
        return self.servfail or self.timeout

    @property
    def has_mx(self) -> bool:
        return bool(self.mx)

    @property
    def unresolved_count(self) -> int:
        return sum(1 for record in self.mx if not record.resolved)

    def sorted_mx(self) -> List[MXObservation]:
        return sorted(self.mx, key=lambda r: (r.preference, r.exchange))


@dataclass
class DNSScanDataset:
    """The per-scan DNS capture, keyed by domain."""

    scan_index: int
    observations: Dict[str, DomainObservation] = field(default_factory=dict)

    def add(self, observation: DomainObservation) -> None:
        self.observations[observation.domain] = observation

    def get(self, domain: str) -> Optional[DomainObservation]:
        return self.observations.get(domain)

    @property
    def num_domains(self) -> int:
        return len(self.observations)

    @property
    def num_unresolved_mx(self) -> int:
        """How many MX records arrived without a usable address."""
        return sum(o.unresolved_count for o in self.observations.values())

    def __iter__(self):
        return iter(self.observations.values())


@dataclass
class SMTPScanDataset:
    """The per-scan banner-grab capture: who answered on TCP/25."""

    scan_index: int
    listening: Set[IPv4Address] = field(default_factory=set)
    probed: int = 0

    def add(self, address: IPv4Address) -> None:
        self.listening.add(address)

    def __contains__(self, address: IPv4Address) -> bool:
        return address in self.listening

    @property
    def num_listening(self) -> int:
        return len(self.listening)


@dataclass
class ScanPair:
    """The two-months-apart scan pair the detection protocol requires."""

    dns: Tuple[DNSScanDataset, DNSScanDataset]
    smtp: Tuple[SMTPScanDataset, SMTPScanDataset]

    def __post_init__(self) -> None:
        if self.dns[0].scan_index == self.dns[1].scan_index:
            raise ValueError("scan pair must contain two distinct scans")
