"""Greylisting: triplet store, pluggable storage backends,
Postgrey-compatible policy, whitelists, persistence and cost
accounting."""

from .backends import (
    BACKEND_NAMES,
    JOURNAL_HEADER,
    JournalBackend,
    MemoryBackend,
    SQLiteBackend,
    TripletBackend,
    create_backend,
    entry_is_expired,
)
from .cost import (
    BYTES_PER_DEFERRED_ATTEMPT,
    BYTES_PER_RETRY_PREAMBLE,
    GreylistCostReport,
    measure_cost,
)
from .keying import KeyStrategy, derive_key, resists_sender_rotation
from .persistence import (
    FORMAT_HEADER,
    PersistenceError,
    dump_store,
    format_entry_line,
    load_store,
    parse_entry_line,
    save_compacted,
    snapshot_size_bytes,
)
from .policy import (
    DEFAULT_DELAY,
    GreylistAction,
    GreylistEvent,
    GreylistPolicy,
)
from .store import DAY, TripletEntry, TripletStore
from .triplet import Triplet
from .whitelist import (
    DEFAULT_WHITELISTED_DOMAINS,
    Whitelist,
    default_provider_whitelist,
)

__all__ = [
    "BACKEND_NAMES",
    "BYTES_PER_DEFERRED_ATTEMPT",
    "BYTES_PER_RETRY_PREAMBLE",
    "DAY",
    "DEFAULT_DELAY",
    "FORMAT_HEADER",
    "GreylistCostReport",
    "JOURNAL_HEADER",
    "JournalBackend",
    "MemoryBackend",
    "PersistenceError",
    "SQLiteBackend",
    "TripletBackend",
    "create_backend",
    "dump_store",
    "entry_is_expired",
    "format_entry_line",
    "load_store",
    "measure_cost",
    "parse_entry_line",
    "save_compacted",
    "snapshot_size_bytes",
    "DEFAULT_WHITELISTED_DOMAINS",
    "GreylistAction",
    "GreylistEvent",
    "GreylistPolicy",
    "KeyStrategy",
    "derive_key",
    "resists_sender_rotation",
    "Triplet",
    "TripletEntry",
    "TripletStore",
    "Whitelist",
    "default_provider_whitelist",
]
