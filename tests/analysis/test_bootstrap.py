"""Unit tests for the bootstrap confidence intervals."""

import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    mean,
    median,
)


class TestStatistics:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            mean([])


class TestBootstrapCI:
    def test_interval_contains_estimate(self):
        ci = bootstrap_ci(list(range(100)), median, seed=1)
        assert ci.estimate in ci
        assert ci.low <= ci.estimate <= ci.high

    def test_deterministic_for_seed(self):
        samples = [1.0, 5.0, 9.0, 2.0, 7.0, 3.0]
        a = bootstrap_ci(samples, mean, seed=4)
        b = bootstrap_ci(samples, mean, seed=4)
        assert (a.low, a.high) == (b.low, b.high)

    def test_different_seeds_differ(self):
        samples = [1.0, 5.0, 9.0, 2.0, 7.0, 3.0]
        a = bootstrap_ci(samples, mean, seed=4, resamples=100)
        b = bootstrap_ci(samples, mean, seed=5, resamples=100)
        assert (a.low, a.high) != (b.low, b.high)

    def test_narrower_for_larger_samples(self):
        small = bootstrap_ci([float(i % 10) for i in range(20)], mean, seed=1)
        large = bootstrap_ci([float(i % 10) for i in range(2000)], mean, seed=1)
        assert large.width < small.width

    def test_higher_level_wider(self):
        samples = [float(i % 17) for i in range(100)]
        narrow = bootstrap_ci(samples, mean, level=0.5, seed=1)
        wide = bootstrap_ci(samples, mean, level=0.99, seed=1)
        assert wide.width >= narrow.width

    def test_constant_sample_zero_width(self):
        ci = bootstrap_ci([5.0] * 30, mean, seed=1)
        assert ci.low == ci.high == ci.estimate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], mean, level=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], mean, resamples=5)

    def test_str_rendering(self):
        ci = ConfidenceInterval(estimate=2.0, low=1.0, high=3.0, level=0.95)
        assert "95%" in str(ci)
        assert 2.5 in ci
        assert 4.0 not in ci
