"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper, prints
the reproduced artefact (run pytest with ``-s`` to see it) and asserts the
paper-matching properties so a silent regression cannot slip through.
"""


import tracemalloc


def emit(title: str, text: str) -> None:
    """Print a reproduced artefact with a banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


def traced_peak_mb(fn):
    """Run ``fn`` under tracemalloc; return (result, peak heap in MiB).

    Used for the ``peak_rss_mb`` extra_info on the internet-scale benches
    and the memory-budget gate: tracemalloc's peak counts every live Python
    allocation, so it bounds the working set independent of allocator slack.
    Always run this *outside* the timed section — tracing costs several
    times the untraced run.
    """
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak / (1024 * 1024)
