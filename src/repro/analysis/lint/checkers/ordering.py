"""Iteration-order checkers.

* ``ORD001`` — iterating a set (or sampling from a dict view) into an
  order-sensitive sink.  Set iteration order depends on insertion history
  and hash seeding; feeding it into RNG-consuming calls, ``list()``
  materialization, loops or comprehensions makes results depend on memory
  layout.  The sanctioned spelling is ``sorted(...)``.  This is exactly
  the bug class behind the historical ``top_spam_tokens`` hash-order
  dependence.
* ``FLT001`` — ``sum()`` over a set-valued iterable.  Float addition is
  not associative, so even a *stable* but unspecified order changes the
  final bits between runs.  Use ``math.fsum`` (order-independent) or sum
  a ``sorted(...)`` sequence.

Both checkers share a conservative, scope-local dataflow: a name assigned
a set expression counts as a set until it is reassigned to something
else.  Attribute loads and cross-function flow are out of scope — the
checkers aim for high-precision defaults that the baseline/noqa machinery
can extend, not for soundness.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set, Tuple

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext

#: Calls that consume randomness (or an explicit order) from a sequence.
SAMPLING_CALLS = frozenset(["sample", "choice", "choices", "shuffle"])

#: Calls that materialize their argument's iteration order into a result.
MATERIALIZING_CALLS = frozenset(["list", "tuple"])

#: Set operators preserve unorderedness on either side.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _scopes(tree: ast.AST) -> Iterator[Tuple[ast.AST, Sequence[ast.stmt]]]:
    """Yield ``(scope node, body)`` for the module and every function."""
    if isinstance(tree, ast.Module):
        yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


class _SetTracker:
    """Names bound to set expressions within one scope, in statement order."""

    def __init__(self, body: Sequence[ast.stmt]) -> None:
        self.set_names: Set[str] = set()
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        if self.is_set_expr(node.value):
                            self.set_names.add(target.id)
                        else:
                            self.set_names.discard(target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        """Conservatively: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values")
        and not node.args
    )


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


class UnorderedIteration(Checker):
    rule_id = "ORD001"
    severity = Severity.WARNING
    description = (
        "set/dict-view iteration feeding an order-sensitive sink "
        "(loop, list(), sampling); wrap in sorted()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for _, body in _scopes(ctx.tree):
            tracker = _SetTracker(body)
            for statement in body:
                for node in ast.walk(statement):
                    yield from self._check_node(ctx, node, tracker, seen)

    def _check_node(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        tracker: _SetTracker,
        seen: Set[Tuple[int, int]],
    ) -> Iterator[Finding]:
        def emit(target: ast.AST, message: str) -> Iterator[Finding]:
            marker = (
                getattr(target, "lineno", 0),
                getattr(target, "col_offset", -1),
            )
            if marker not in seen:
                seen.add(marker)
                yield self.finding(ctx, target, message)

        if isinstance(node, ast.For) and tracker.is_set_expr(node.iter):
            yield from emit(
                node.iter,
                "loop over a set; iteration order is unspecified — iterate "
                "sorted(...) so downstream results cannot depend on hashing",
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if tracker.is_set_expr(generator.iter):
                    yield from emit(
                        generator.iter,
                        "comprehension over a set; iterate sorted(...) so the "
                        "produced sequence has a defined order",
                    )
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in MATERIALIZING_CALLS and len(node.args) == 1:
                if tracker.is_set_expr(node.args[0]):
                    yield from emit(
                        node,
                        f"{name}() materializes a set in arbitrary order; "
                        "use sorted(...) instead",
                    )
            elif name in SAMPLING_CALLS:
                for arg in node.args:
                    if tracker.is_set_expr(arg) or _is_dict_view(arg):
                        yield from emit(
                            node,
                            f"`{name}()` drawing from an unordered iterable; "
                            "RNG-consuming calls need an explicitly ordered "
                            "sequence (sorted(...))",
                        )


class UnorderedFloatSum(Checker):
    rule_id = "FLT001"
    severity = Severity.WARNING
    description = (
        "sum() over a set; float addition is order-sensitive — use "
        "math.fsum or sum a sorted sequence"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for _, body in _scopes(ctx.tree):
            tracker = _SetTracker(body)
            for statement in body:
                for node in ast.walk(statement):
                    if not isinstance(node, ast.Call):
                        continue
                    if not (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "sum"
                        and node.args
                    ):
                        continue
                    arg = node.args[0]
                    flagged = tracker.is_set_expr(arg)
                    if not flagged and isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp)
                    ):
                        flagged = any(
                            tracker.is_set_expr(generator.iter)
                            for generator in arg.generators
                        )
                    marker = (node.lineno, node.col_offset)
                    if flagged and marker not in seen:
                        seen.add(marker)
                        yield self.finding(
                            ctx,
                            node,
                            "sum() over a set accumulates floats in "
                            "unspecified order; use math.fsum(...) or "
                            "sum(sorted(...))",
                        )
