"""On-disk result cache for experiment shards.

Repeated sweeps dominate the reproduction's wall-clock cost: the
sensitivity harness re-runs whole experiments per seed, threshold sweeps
re-run them per parameter, and the Figure 2 scan re-classifies millions of
domains that have not changed since the last run.  This cache memoizes the
JSON-able output of each shard, keyed by::

    sha256(canonical_json({experiment, params, version}))

so a repeated sweep skips every shard it has already computed.  The
package version participates in the key: upgrading the code invalidates
every prior entry rather than serving stale results.

Entries are plain JSON files under ``~/.cache/repro-greylisting`` (or
``$REPRO_CACHE_DIR``), one directory per experiment — easy to inspect,
easy to delete.  Corrupt or truncated files count as misses, never as
errors.  Writes go through a temp file + :func:`os.replace` so a reader
never observes a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

_MISS = object()


def _package_version() -> str:
    try:
        from .. import __version__

        return __version__
    except ImportError:  # pragma: no cover - only during partial init
        return "0"


def canonical_params(params: Dict[str, Any]) -> str:
    """Stable JSON encoding of a parameter dict (sorted keys, no spaces)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-greylisting``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-greylisting"


class ResultCache:
    """JSON file cache keyed by experiment name + params + package version.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.  Defaults to
        :func:`default_cache_root`.
    version:
        Key component identifying the code that produced the values;
        defaults to the installed package version.
    """

    def __init__(
        self, root: Optional[Path] = None, version: Optional[str] = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = version if version is not None else _package_version()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries that failed to parse and were quarantined (``.corrupt``)
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key_for(self, experiment: str, params: Dict[str, Any]) -> str:
        """Content hash identifying one (experiment, params, version) cell."""
        payload = canonical_params(
            {
                "experiment": experiment,
                "params": params,
                "version": self.version,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, experiment: str, params: Dict[str, Any]) -> Path:
        return self.root / experiment / f"{self.key_for(experiment, params)}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(
        self, experiment: str, params: Dict[str, Any], default: Any = None
    ) -> Any:
        """Fetch a cached value, or ``default`` on any kind of miss."""
        value = self._read(self.path_for(experiment, params))
        if value is _MISS:
            self.misses += 1
            return default
        self.hits += 1
        return value

    def contains(self, experiment: str, params: Dict[str, Any]) -> bool:
        return self._read(self.path_for(experiment, params)) is not _MISS

    def put(self, experiment: str, params: Dict[str, Any], value: Any) -> Path:
        """Store a JSON-able value; returns the entry's path."""
        path = self.path_for(experiment, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "experiment": experiment,
            "params": params,
            "version": self.version,
            "value": value,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def _read(self, path: Path) -> Any:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return _MISS
        except (OSError, ValueError):
            # Truncated write, disk error, garbage bytes: quarantine the
            # file so the next run does not re-parse (and re-log) it.
            self._quarantine(path, "unreadable or not valid JSON")
            return _MISS
        if not isinstance(document, dict) or "value" not in document:
            self._quarantine(path, "valid JSON but not a cache document")
            return _MISS
        if document.get("version") != self.version:
            # Healthy entry from other code — a miss, not corruption.
            return _MISS
        return document["value"]

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside as ``<name>.corrupt`` and count the event."""
        self.corrupt += 1
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None
        logger.warning(
            "cache_corrupt: %s (%s)%s",
            path,
            reason,
            f"; moved to {quarantined}" if quarantined else "",
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self, experiment: Optional[str] = None) -> int:
        """Delete entries (all, or one experiment's); returns count removed."""
        removed = 0
        targets = (
            [self.root / experiment] if experiment is not None else
            [p for p in self.root.glob("*") if p.is_dir()]
        ) if self.root.exists() else []
        for directory in targets:
            for entry in directory.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, version={self.version!r}, "
            f"hits={self.hits}, misses={self.misses}, corrupt={self.corrupt})"
        )
