"""Internet-scale synthesis: adoption rates x family mix -> spam blocked.

The paper measures two things separately: *who deploys* the techniques
(Figure 2) and *what each technique blocks* (Table II).  This experiment
composes them: a small internet of receiver domains — some greylisted,
some nolisted, some undefended — receives a spam wave whose family mix
follows Table I, and we measure the fraction of spam actually delivered.

Because every delivery is simulated end to end (DNS, MX walking, retries,
triplets), the measured block rate can be checked against the analytic
prediction ``sum_family share_f x P(defended domain blocks f)`` — closing
the loop between the paper's adoption and effectiveness halves, and
answering "what if adoption grew?" by sweeping the deployment rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..botnet.behavior import defeats_nolisting
from ..botnet.families import FAMILIES, FamilyProfile
from ..dns.nolisting import setup_nolisting, setup_single_mx
from ..dns.resolver import StubResolver
from ..dns.zone import ZoneStore
from ..greylist.policy import GreylistPolicy
from ..net.address import AddressPool, IPv4Network
from ..net.network import VirtualInternet
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..smtp.message import Message
from ..smtp.server import SMTPServer


@dataclass
class InternetScaleResult:
    """Measured spam flow through a mixed-deployment internet."""

    num_domains: int
    greylisting_rate: float
    nolisting_rate: float
    spam_sent: int
    spam_delivered: int
    per_family_delivered: Dict[str, int] = field(default_factory=dict)
    per_family_sent: Dict[str, int] = field(default_factory=dict)
    predicted_block_rate: float = 0.0

    @property
    def block_rate(self) -> float:
        if self.spam_sent == 0:
            return 0.0
        return 1.0 - self.spam_delivered / self.spam_sent

    def family_delivery_rate(self, family: str) -> float:
        sent = self.per_family_sent.get(family, 0)
        if sent == 0:
            return 0.0
        return self.per_family_delivered.get(family, 0) / sent


def _family_blocked_probability(
    family: FamilyProfile, greylisting_rate: float, nolisting_rate: float
) -> float:
    """Analytic P(block) for one family under random deployment.

    Greylisting blocks non-retrying families; nolisting blocks
    primary-only families.  Deployments are disjoint in this model
    (a domain is nolisted XOR possibly greylisted).
    """
    blocked = 0.0
    if not defeats_nolisting(family.mx_behavior):
        blocked += nolisting_rate
    if not family.retries:
        blocked += greylisting_rate
    return min(blocked, 1.0)


def run_internet_scale(
    num_domains: int = 60,
    greylisting_rate: float = 0.3,
    nolisting_rate: float = 0.1,
    messages: int = 400,
    greylist_delay: float = 300.0,
    seed: int = 61,
    horizon: float = 400000.0,
) -> InternetScaleResult:
    """Run one spam wave through a mixed-deployment internet."""
    if not 0.0 <= greylisting_rate + nolisting_rate <= 1.0:
        raise ValueError("deployment rates must sum to at most 1")
    rng = RandomStream(seed, "internet-scale")
    scheduler = EventScheduler(Clock())
    internet = VirtualInternet()
    zones = ZoneStore()
    resolver = StubResolver(zones, clock=scheduler.clock)
    server_pool = AddressPool(IPv4Network.parse("10.0.0.0/16"))
    bot_pool = AddressPool(IPv4Network.parse("198.51.100.0/24"))

    # --- receiver domains with a randomized deployment mix ----------------
    deploy_rng = rng.split("deployments")
    domains: List[str] = []
    for index in range(num_domains):
        domain = f"site{index:04d}.example"
        domains.append(domain)
        roll = deploy_rng.random()
        if roll < nolisting_rate:
            policy = None
            builder = setup_nolisting
        elif roll < nolisting_rate + greylisting_rate:
            policy = GreylistPolicy(clock=scheduler.clock, delay=greylist_delay)
            builder = setup_single_mx
        else:
            policy = None
            builder = setup_single_mx
        server = SMTPServer(
            hostname=f"smtp.{domain}",
            clock=scheduler.clock,
            policy=policy,
            local_domains=[domain],
        )
        builder(internet, zones, server_pool, domain, server.session_factory)

    # --- the spam wave: family mix per Table I ----------------------------
    bots = {
        family.name: family.build_bot(
            internet=internet,
            resolver=resolver,
            scheduler=scheduler,
            source_address=bot_pool.allocate(),
            rng=rng.split(f"bot:{family.name}"),
        )
        for family in FAMILIES
    }
    weights = [family.botnet_spam_share for family in FAMILIES]
    mix_rng = rng.split("mix")
    target_rng = rng.split("targets")
    per_family_sent: Dict[str, int] = {f.name: 0 for f in FAMILIES}
    for index in range(messages):
        family = FAMILIES[mix_rng.weighted_index(weights)]
        domain = target_rng.choice(domains)
        per_family_sent[family.name] += 1
        bots[family.name].assign(
            Message(
                sender=f"spam{index}@botnet.example",
                recipients=[f"user{index % 17}@{domain}"],
            )
        )

    scheduler.run(until=horizon)

    per_family_delivered = {
        name: len(bot.delivered_tasks) for name, bot in bots.items()
    }
    # Normalize the analytic prediction over the *sent* mix.
    total_sent = sum(per_family_sent.values())
    predicted = sum(
        per_family_sent[family.name]
        * _family_blocked_probability(
            family, greylisting_rate, nolisting_rate
        )
        for family in FAMILIES
    ) / total_sent if total_sent else 0.0

    return InternetScaleResult(
        num_domains=num_domains,
        greylisting_rate=greylisting_rate,
        nolisting_rate=nolisting_rate,
        spam_sent=total_sent,
        spam_delivered=sum(per_family_delivered.values()),
        per_family_delivered=per_family_delivered,
        per_family_sent=per_family_sent,
        predicted_block_rate=predicted,
    )


def sweep_deployment_rates(
    rates: List[tuple] = None,
    messages: int = 300,
    seed: int = 61,
    workers: int = 1,
    cache=None,
) -> List[InternetScaleResult]:
    """Block rate as deployment grows — the "what if adoption rose" curve.

    Each (greylisting, nolisting) grid point is an independent simulation,
    so the sweep fans them over ``workers`` processes; ``cache`` memoizes
    completed points across invocations.
    """
    from ..runner.pool import run_tasks
    from ..runner.shards import internet_scale_task

    if rates is None:
        rates = [(0.0, 0.0), (0.2, 0.05), (0.5, 0.1), (0.8, 0.2)]
    payloads = [
        {
            "num_domains": 60,
            "greylisting_rate": grey,
            "nolisting_rate": nolist,
            "messages": messages,
            "seed": seed,
        }
        for (grey, nolist) in rates
    ]
    rows = run_tasks(
        internet_scale_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="internet-scale",
    )
    return [InternetScaleResult(**row) for row in rows]
