"""Bench: regenerate Figure 4 (Kelihos retransmissions, 21 600 s threshold)."""

from repro.botnet.families import KELIHOS
from repro.core.greylist_experiment import run_greylist_experiment
from repro.core.reports import figure4_text

from _util import emit


def run_experiment():
    return run_greylist_experiment(
        KELIHOS, 21600.0, num_messages=100, horizon=400000.0
    )


def test_figure4_kelihos_retries(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=2, iterations=1)
    emit("Figure 4 — Kelihos retransmission delays, threshold 21600 s", figure4_text(result))

    failed_ages = [p.age for p in result.failed_points()]
    delivered_ages = [p.age for p in result.delivered_points()]

    # Blue dots (failed attempts) populate the peaks the paper identifies:
    # 300-600 s and around 5000 s.
    assert sum(1 for a in failed_ages if 300 <= a < 700) >= 50
    assert sum(1 for a in failed_ages if 3000 <= a < 20000) >= 20
    # No failed attempt above the threshold (the triplet would pass).
    assert all(a <= 21600.0 for a in failed_ages)

    # Red dots (deliveries) sit above the threshold; the long-haul retry
    # cluster pushes the bulk past 80000 s, as in the paper's right side.
    assert delivered_ages
    assert all(a >= 21600.0 for a in delivered_ages)
    assert max(delivered_ages) >= 80000.0

    # The paper's three peaks — 300-600 s, ~5000 s, 80 000-90 000 s — live
    # in the retransmission-gap distribution.
    gaps = result.retransmission_gaps()
    assert sum(1 for g in gaps if 300 <= g < 600) > 0
    assert sum(1 for g in gaps if 4000 <= g < 6000) > 0
    assert sum(1 for g in gaps if 80000 <= g < 90000) > 0
    # And nothing between the modes.
    assert sum(1 for g in gaps if 20000 <= g < 80000) == 0

    # Even a six-hour threshold does not block Kelihos.
    assert not result.blocked
    assert result.delivery_rate == 1.0

    # §V.A control: one campaign, observable via the unprotected addresses.
    assert result.campaigns_seen == 1
    assert result.unprotected_deliveries >= 1
