"""Simulated zmap scanners.

:class:`DNSScanner` performs the DNS-ANY sweep over the population —
including the imperfection the paper had to patch: a fraction of MX answers
arrive without the exchange's glue A record.  Its
:meth:`DNSScanner.parallel_resolve` implements the authors' follow-up
scanner that re-resolves those entries.

:class:`SMTPScanner` performs the SYN/banner sweep of port 25 over an
address list, producing the listening-host set.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..dns.resolver import DNSTimeout, NXDomain, ServFail, StubResolver
from ..faults.model import FaultPlan
from ..net.address import IPv4Address
from ..sim.rng import RandomStream
from .datasets import (
    DNSScanDataset,
    DomainObservation,
    MXObservation,
    SMTPScanDataset,
)
from .population import SyntheticInternet


class DNSScanner:
    """Sweeps every domain of a population with an ANY query.

    Parameters
    ----------
    internet:
        The population under measurement.
    glue_elision_rate:
        Fraction of MX answers whose glue A record is dropped from the
        capture (the scans.io dataset's "not properly resolved" entries).
    faults:
        Optional :class:`~repro.faults.model.FaultPlan`.  Resolution then
        suffers SERVFAIL/timeout bursts and lame delegations, drawn per
        ``(domain, scan index)`` — independently per scan, which is the
        transient-failure mode the two-scan protocol filters.
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        glue_elision_rate: float = 0.1,
        rng: Optional[RandomStream] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if not 0.0 <= glue_elision_rate <= 1.0:
            raise ValueError("glue_elision_rate must lie in [0, 1]")
        if glue_elision_rate > 0 and rng is None:
            raise ValueError("glue elision requires an rng")
        self.internet = internet
        self.glue_elision_rate = glue_elision_rate
        self.rng = rng
        self.faults = faults

    def iter_observations(self, scan_index: int) -> Iterator[DomainObservation]:
        """Stream the population's per-domain observations, one at a time.

        The streaming core of :meth:`scan`: yields each domain's capture
        as soon as it is resolved, holding no dataset — which is what lets
        a columnar consumer fold observations into fixed-width columns
        chunk by chunk instead of materializing the whole capture.

        Glue elision draws come from a per-domain RNG stream
        (``"elision:<scan>:<domain>"``), so whether a record's glue is
        elided depends only on (seed, scan, domain) — scanning a shard of
        the population captures exactly what a full scan would for the
        same domains, which the parallel runner's merge relies on.
        """
        resolver = StubResolver(
            self.internet.zones, faults=self.faults, fault_epoch=scan_index
        )
        elide = self.glue_elision_rate > 0 and self.rng is not None
        for truth in self.internet.domains:
            observation = DomainObservation(domain=truth.name)
            try:
                answer = resolver.resolve_mx(truth.name)
            except NXDomain:
                observation.nxdomain = True
                yield observation
                continue
            except DNSTimeout:
                observation.timeout = True
                yield observation
                continue
            except ServFail:
                observation.servfail = True
                yield observation
                continue
            elision_rng = (
                self.rng.split(f"elision:{scan_index}:{truth.name}")
                if elide
                else None
            )
            for mx in answer.records:
                address: Optional[IPv4Address] = answer.additional.get(
                    mx.exchange
                )
                if (
                    address is not None
                    and elision_rng is not None
                    and elision_rng.random() < self.glue_elision_rate
                ):
                    address = None
                observation.mx.append(
                    MXObservation(
                        preference=mx.preference,
                        exchange=mx.exchange,
                        address=address,
                    )
                )
            yield observation

    def scan(self, scan_index: int) -> DNSScanDataset:
        """Capture the population's DNS state as a materialized dataset."""
        dataset = DNSScanDataset(scan_index=scan_index)
        for observation in self.iter_observations(scan_index):
            dataset.add(observation)
        return dataset

    def parallel_resolve(self, dataset: DNSScanDataset) -> int:
        """Re-resolve MX entries captured without an address.

        This is the paper's "parallel scanner": for every MX record whose
        reply "only contains the domain name of the mail server but not its
        IP address", issue the missing A query.  Returns how many entries
        were repaired.  Dangling exchanges (no A record anywhere) stay
        unresolved — those are genuine misconfigurations.

        The parallel scanner runs after the sweep, outside the scan's
        fault window, so it resolves against a healthy resolver — faults
        belong to the capture, not to the repair pass.
        """
        resolver = StubResolver(self.internet.zones)
        repaired = 0
        for observation in dataset:
            for record in observation.mx:
                if record.resolved:
                    continue
                try:
                    record.address = resolver.resolve_address(record.exchange)
                    repaired += 1
                except (NXDomain, ServFail):
                    continue
        return repaired


class SMTPScanner:
    """SYN-scans a list of addresses on TCP/25 (the banner grab).

    With a :class:`~repro.faults.model.FaultPlan` attached, addresses may
    additionally appear down during a scan — a host downtime window or a
    port-25 flap, drawn per ``(address, scan index)``.  A SYN probe cannot
    distinguish the two, and neither can the paper's pipeline; that is
    exactly why the measurement is repeated two months later.
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.internet = internet
        self.faults = faults

    def scan(
        self,
        scan_index: int,
        addresses: Optional[Iterable[IPv4Address]] = None,
    ) -> SMTPScanDataset:
        """Probe ``addresses`` (default: the population's full mail space)."""
        if addresses is None:
            addresses = self.internet.all_mail_addresses()
        dataset = SMTPScanDataset(scan_index=scan_index)
        for address in addresses:
            dataset.probed += 1
            if not self.internet.is_listening(address, scan_index):
                continue
            if self.faults is not None and self.faults.smtp_down(
                str(address), scan_index
            ):
                continue
            dataset.add(address)
        return dataset
