"""Unit tests for the reactive blacklist, telemetry feed and DNSBL policy."""

import pytest

from repro.blacklist.dnsbl import ReactiveBlacklist
from repro.blacklist.feed import TelemetryFeed
from repro.blacklist.policy import DNSBL_REJECT_CODE, DNSBLPolicy
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.sim.events import EventScheduler
from repro.sim.rng import RandomStream

BOT = IPv4Address.parse("198.51.100.66")
OTHER = IPv4Address.parse("198.51.100.67")


class TestReactiveBlacklist:
    def test_unknown_address_not_listed(self):
        blacklist = ReactiveBlacklist(Clock())
        assert not blacklist.is_listed(BOT)
        assert blacklist.listed_at(BOT) is None

    def test_listing_requires_threshold(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=3, processing_delay=0.0
        )
        blacklist.report(BOT)
        blacklist.report(BOT)
        assert not blacklist.is_listed(BOT)
        blacklist.report(BOT)
        assert blacklist.is_listed(BOT)

    def test_processing_delay_defers_listing(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=100.0
        )
        blacklist.report(BOT)
        assert not blacklist.is_listed(BOT)
        clock.advance_by(99)
        assert not blacklist.is_listed(BOT)
        clock.advance_by(1)
        assert blacklist.is_listed(BOT)
        assert blacklist.listed_at(BOT) == 100.0

    def test_auto_delisting_after_quiet_period(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock,
            detection_threshold=1,
            processing_delay=0.0,
            listing_lifetime=1000.0,
        )
        blacklist.report(BOT)
        clock.advance_by(500)
        assert blacklist.is_listed(BOT)
        clock.advance_by(600)
        assert not blacklist.is_listed(BOT)

    def test_new_sightings_refresh_listing(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock,
            detection_threshold=1,
            processing_delay=0.0,
            listing_lifetime=1000.0,
        )
        blacklist.report(BOT)
        clock.advance_by(900)
        blacklist.report(BOT)
        clock.advance_by(900)
        assert blacklist.is_listed(BOT)

    def test_addresses_independent(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=0.0
        )
        blacklist.report(BOT)
        assert blacklist.is_listed(BOT)
        assert not blacklist.is_listed(OTHER)
        assert blacklist.listed_count == 1

    def test_query_and_hit_counters(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=0.0
        )
        blacklist.is_listed(BOT)
        blacklist.report(BOT)
        blacklist.is_listed(BOT)
        assert blacklist.queries == 2
        assert blacklist.hits == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveBlacklist(Clock(), detection_threshold=0)
        with pytest.raises(ValueError):
            ReactiveBlacklist(Clock(), processing_delay=-1)
        with pytest.raises(ValueError):
            ReactiveBlacklist(Clock(), listing_lifetime=0)


class TestTelemetryFeed:
    def _build(self, rate=60.0, threshold=5):
        scheduler = EventScheduler(Clock())
        blacklist = ReactiveBlacklist(
            scheduler.clock, detection_threshold=threshold, processing_delay=0.0
        )
        feed = TelemetryFeed(
            scheduler, blacklist, RandomStream(1, "feed"), reports_per_hour=rate
        )
        return scheduler, blacklist, feed

    def test_armed_address_eventually_listed(self):
        scheduler, blacklist, feed = self._build(rate=60.0, threshold=5)
        feed.arm(BOT)
        scheduler.run(until=3600.0)
        assert blacklist.is_listed(BOT)
        assert feed.reports_delivered >= 5

    def test_higher_rate_lists_faster(self):
        listings = {}
        for rate in (10.0, 600.0):
            scheduler, blacklist, feed = self._build(rate=rate, threshold=5)
            feed.arm(BOT)
            scheduler.run(until=7200.0)
            listings[rate] = blacklist.listed_at(BOT)
        assert listings[600.0] < listings[10.0]

    def test_disarm_stops_reporting(self):
        scheduler, blacklist, feed = self._build(rate=3600.0, threshold=100)
        feed.arm(BOT)
        scheduler.run(until=10.0)
        feed.disarm(BOT)
        delivered = feed.reports_delivered
        scheduler.run(until=3600.0)
        assert feed.reports_delivered == delivered
        assert feed.armed_addresses == 0

    def test_arm_idempotent(self):
        scheduler, _, feed = self._build()
        feed.arm(BOT)
        feed.arm(BOT)
        assert feed.armed_addresses == 1

    def test_rate_validation(self):
        scheduler = EventScheduler(Clock())
        blacklist = ReactiveBlacklist(scheduler.clock)
        with pytest.raises(ValueError):
            TelemetryFeed(scheduler, blacklist, RandomStream(1), reports_per_hour=0)


class TestDNSBLPolicy:
    def test_unlisted_client_accepted_and_reported(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=100, processing_delay=0.0
        )
        policy = DNSBLPolicy(blacklist, report_attempts=True)
        decision = policy.on_rcpt_to(BOT, "s@x.example", "r@y.example")
        assert decision.accept
        assert blacklist.state_of(BOT).sightings == 1

    def test_listed_client_rejected_permanently(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=0.0
        )
        blacklist.report(BOT)
        policy = DNSBLPolicy(blacklist)
        decision = policy.on_rcpt_to(BOT, "s@x.example", "r@y.example")
        assert not decision.accept
        assert decision.reply.code == DNSBL_REJECT_CODE
        assert decision.reply.is_permanent_failure
        assert policy.rejections == 1

    def test_local_reporting_can_be_disabled(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(clock, detection_threshold=100)
        policy = DNSBLPolicy(blacklist, report_attempts=False)
        policy.on_rcpt_to(BOT, "s@x.example", "r@y.example")
        assert blacklist.state_of(BOT) is None

    def test_events_logged(self):
        clock = Clock()
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=0.0
        )
        policy = DNSBLPolicy(blacklist, report_attempts=True)
        policy.on_rcpt_to(BOT, "s@x.example", "r@y.example")
        policy.on_rcpt_to(BOT, "s@x.example", "r@y.example")
        assert [e.listed for e in policy.events] == [False, True]
