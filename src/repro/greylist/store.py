"""Triplet database with expiry.

Models the Postgrey on-disk database: per-triplet state (first-seen time,
attempt count, whether it has passed), plus the two expiry windows real
deployments enforce:

* ``retry_window`` — a greylisted triplet that never comes back within this
  window is forgotten (Postgrey ``--max-age`` for unconfirmed entries);
* ``whitelist_lifetime`` — a confirmed triplet stays whitelisted this long
  after its last use (Postgrey keeps entries ~35 days past last activity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..sim.clock import Clock
from .triplet import Triplet

DAY = 86400.0


@dataclass(slots=True)
class TripletEntry:
    """State tracked for one triplet."""

    triplet: Triplet
    first_seen: float
    last_seen: float
    attempts: int = 1
    passed: bool = False
    passed_at: Optional[float] = None

    @property
    def age_at_last_seen(self) -> float:
        return self.last_seen - self.first_seen


class TripletStore:
    """In-memory triplet database bound to the simulation clock."""

    def __init__(
        self,
        clock: Clock,
        retry_window: float = 2 * DAY,
        whitelist_lifetime: float = 35 * DAY,
    ) -> None:
        if retry_window <= 0 or whitelist_lifetime <= 0:
            raise ValueError("expiry windows must be positive")
        self.clock = clock
        self.retry_window = retry_window
        self.whitelist_lifetime = whitelist_lifetime
        self._entries: Dict[Triplet, TripletEntry] = {}
        self.expired_unconfirmed = 0
        self.expired_confirmed = 0

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def lookup(self, triplet: Triplet) -> Optional[TripletEntry]:
        """Fetch the live entry for a triplet, expiring it if stale."""
        entry = self._entries.get(triplet)
        if entry is None:
            return None
        if self._is_expired(entry):
            del self._entries[triplet]
            if entry.passed:
                self.expired_confirmed += 1
            else:
                self.expired_unconfirmed += 1
            return None
        return entry

    def observe(self, triplet: Triplet) -> TripletEntry:
        """Record one delivery attempt, creating the entry if new."""
        now = self.clock.now
        entry = self.lookup(triplet)
        if entry is None:
            entry = TripletEntry(triplet=triplet, first_seen=now, last_seen=now)
            self._entries[triplet] = entry
        else:
            entry.attempts += 1
            entry.last_seen = now
        return entry

    def mark_passed(self, triplet: Triplet) -> None:
        entry = self._entries.get(triplet)
        if entry is None:
            raise KeyError(f"unknown triplet {triplet}")
        if not entry.passed:
            entry.passed = True
            entry.passed_at = self.clock.now

    def _is_expired(self, entry: TripletEntry) -> bool:
        now = self.clock.now
        if entry.passed:
            return now - entry.last_seen > self.whitelist_lifetime
        return now - entry.last_seen > self.retry_window

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Drop every expired entry; returns the number removed."""
        stale = [t for t, e in self._entries.items() if self._is_expired(e)]
        for triplet in stale:
            entry = self._entries.pop(triplet)
            if entry.passed:
                self.expired_confirmed += 1
            else:
                self.expired_unconfirmed += 1
        return len(stale)

    def entries(self) -> Iterable[TripletEntry]:
        return self._entries.values()

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def confirmed(self) -> int:
        return sum(1 for e in self._entries.values() if e.passed)

    def __contains__(self, triplet: Triplet) -> bool:
        return self.lookup(triplet) is not None

    def __repr__(self) -> str:
        return f"TripletStore(size={self.size}, confirmed={self.confirmed})"
