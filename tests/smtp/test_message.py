"""Unit tests for messages, envelopes and address validation."""

import pytest

from repro.smtp.message import (
    AddressSyntaxError,
    Envelope,
    Message,
    domain_of,
    envelopes_for,
    validate_address,
)


class TestValidateAddress:
    def test_canonicalizes_domain_case(self):
        assert validate_address("Bob@Foo.NET") == "Bob@foo.net"

    def test_preserves_local_part_case(self):
        # Local parts are case-sensitive per RFC 5321.
        assert validate_address("MixedCase@foo.net").startswith("MixedCase@")

    @pytest.mark.parametrize(
        "bad",
        ["nodomain", "two@@foo.net", "@foo.net", "x@", "x@nodot", "a b@foo.net"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressSyntaxError):
            validate_address(bad)

    def test_domain_of(self):
        assert domain_of("bob@foo.net") == "foo.net"


class TestMessage:
    def test_basic_construction(self):
        message = Message(sender="a@x.net", recipients=["b@y.net"])
        assert message.sender == "a@x.net"
        assert message.recipients == ["b@y.net"]
        assert message.size > 0

    def test_recipient_required(self):
        with pytest.raises(AddressSyntaxError):
            Message(sender="a@x.net", recipients=[])

    def test_message_ids_unique(self):
        a = Message(sender="a@x.net", recipients=["b@y.net"])
        b = Message(sender="a@x.net", recipients=["b@y.net"])
        assert a.message_id != b.message_id

    def test_invalid_recipient_rejected(self):
        with pytest.raises(AddressSyntaxError):
            Message(sender="a@x.net", recipients=["nope"])

    def test_campaign_tagging(self):
        message = Message(
            sender="a@x.net", recipients=["b@y.net"], campaign_id="c-1"
        )
        assert message.campaign_id == "c-1"


class TestEnvelopes:
    def test_envelopes_split_per_recipient(self):
        message = Message(
            sender="a@x.net",
            recipients=["b@y.net", "c@z.net"],
            campaign_id="c-9",
        )
        envelopes = envelopes_for(message)
        assert len(envelopes) == 2
        assert {e.recipient for e in envelopes} == {"b@y.net", "c@z.net"}
        assert all(e.message_id == message.message_id for e in envelopes)
        assert all(e.campaign_id == "c-9" for e in envelopes)

    def test_envelope_domains(self):
        envelope = Envelope(sender="a@x.net", recipient="b@y.net", message_id=1)
        assert envelope.sender_domain == "x.net"
        assert envelope.recipient_domain == "y.net"
