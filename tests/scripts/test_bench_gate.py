"""The smoke-bench regression gate (scripts/check_bench_regression.py).

The gate is stdlib-only and runs as a subprocess here, exactly as CI
invokes it.  Two families of checks:

* timing ratios, normalized by the median ratio so a uniformly slower
  runner cancels out;
* throughput floors from ``extra_info`` (decisions/domains/lookups per
  second) — a rate can erode while a fixed-duration timed section keeps
  its median, and deleting the floor key must itself be a failure.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SCRIPT = str(
    Path(__file__).resolve().parents[2] / "scripts" / "check_bench_regression.py"
)


def snapshot(path, benches):
    """Write a minimal pytest-benchmark JSON snapshot.

    ``benches`` maps fullname -> (min_seconds, extra_info dict).
    """
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"min": seconds},
                "extra_info": extra,
            }
            for name, (seconds, extra) in benches.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def run_gate(baseline, current, env=None):
    full_env = dict(os.environ)
    full_env.pop("ALLOW_BENCH_REGRESSION", None)
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, SCRIPT, baseline, current],
        capture_output=True,
        text=True,
        env=full_env,
        timeout=60,
    )


# A baseline of three benches; the median ratio needs >= 2 healthy ones
# to absorb a single regression.
BASE = {
    "a.py::test_a": (0.100, {}),
    "b.py::test_b": (0.200, {}),
    "c.py::test_serve": (1.000, {"decisions_per_sec": 20_000}),
}


class TestTimingGate:
    def test_identical_snapshots_pass(self, tmp_path):
        baseline = snapshot(tmp_path / "base.json", BASE)
        current = snapshot(tmp_path / "cur.json", BASE)
        result = run_gate(baseline, current)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_single_bench_regression_fails(self, tmp_path):
        slow = dict(BASE)
        slow["b.py::test_b"] = (0.200 * 2.0, {})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", slow),
        )
        assert result.returncode == 1
        assert "b.py::test_b" in result.stderr

    def test_uniform_slowdown_cancels_out(self, tmp_path):
        # A 3x slower machine shifts every ratio equally; the median
        # normalization must keep the gate green.
        slower = {
            name: (seconds * 3.0, extra)
            for name, (seconds, extra) in BASE.items()
        }
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", slower),
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_new_bench_is_skipped_with_notice(self, tmp_path):
        grown = dict(BASE)
        grown["d.py::test_new"] = (0.5, {})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", grown),
        )
        assert result.returncode == 0
        assert "no reference time" in result.stdout

    def test_allow_override_reports_but_passes(self, tmp_path):
        slow = dict(BASE)
        slow["b.py::test_b"] = (0.200 * 2.0, {})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", slow),
            env={"ALLOW_BENCH_REGRESSION": "1"},
        )
        assert result.returncode == 0
        assert "FAIL" in result.stderr


class TestThroughputFloors:
    def test_eroded_rate_fails_despite_stable_timing(self, tmp_path):
        # The scenario the floors exist for: a fixed-duration timed
        # section keeps its min forever while the reported rate halves.
        eroded = dict(BASE)
        eroded["c.py::test_serve"] = (1.000, {"decisions_per_sec": 10_000})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", eroded),
        )
        assert result.returncode == 1
        assert "c.py::test_serve[decisions_per_sec]" in result.stderr

    def test_dropped_floor_key_fails(self, tmp_path):
        dropped = dict(BASE)
        dropped["c.py::test_serve"] = (1.000, {})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", dropped),
        )
        assert result.returncode == 1
        assert "dropped" in result.stdout

    def test_rate_within_margin_passes(self, tmp_path):
        wobble = dict(BASE)
        wobble["c.py::test_serve"] = (1.000, {"decisions_per_sec": 17_000})
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", wobble),
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_uniformly_slower_machine_scales_floors_too(self, tmp_path):
        # 3x slower machine: every timing 3x, every rate 1/3.  The
        # machine-speed scale must rescue the floor comparison exactly
        # as it rescues the timing one.
        slower = {
            name: (
                seconds * 3.0,
                {key: value / 3.0 for key, value in extra.items()},
            )
            for name, (seconds, extra) in BASE.items()
        }
        result = run_gate(
            snapshot(tmp_path / "base.json", BASE),
            snapshot(tmp_path / "cur.json", slower),
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_non_floor_extra_info_is_ignored(self, tmp_path):
        # p99_ms, connections, workers... ride along in extra_info and
        # must not be treated as floors.
        noisy = dict(BASE)
        noisy["c.py::test_serve"] = (
            1.000,
            {"decisions_per_sec": 20_000, "p99_ms": 99_999.0},
        )
        result = run_gate(
            snapshot(tmp_path / "base.json", noisy),
            snapshot(tmp_path / "cur.json", BASE),
        )
        assert result.returncode == 0, result.stdout + result.stderr
