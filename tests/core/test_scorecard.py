"""Tests for the reproduction scorecard."""

import pytest

from repro.cli import main
from repro.core.scorecard import build_scorecard, scorecard_text


class TestScorecard:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_scorecard(scale=0.3)

    def test_all_claims_hold(self, rows):
        failing = [row.claim for row in rows if not row.holds]
        assert failing == []

    def test_every_headline_artefact_covered(self, rows):
        artefacts = {row.artefact for row in rows}
        assert {
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Table II",
            "Table III",
            "Table IV",
            "§VI",
        } <= artefacts

    def test_text_rendering(self):
        text = scorecard_text(scale=0.3)
        assert "Reproduction scorecard" in text
        assert "claims hold" in text
        # No row carries a failing verdict.
        assert "| NO" not in text

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            build_scorecard(scale=0)

    def test_cli_subcommand_exit_zero(self, capsys):
        assert main(["scorecard", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "scorecard" in out
