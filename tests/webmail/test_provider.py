"""Unit tests for the webmail provider schedule/pool model."""

import pytest

from repro.webmail.provider import ProviderSpec
from repro.webmail.providers import (
    AOL,
    GMAIL,
    HOTMAIL,
    MAILRU,
    PROVIDER_BY_NAME,
    PROVIDERS,
    QQ,
    YANDEX,
)


class TestProviderSpecValidation:
    def test_rejects_unsorted_ages(self):
        with pytest.raises(ValueError):
            ProviderSpec(name="x", retry_ages=[300, 200])

    def test_rejects_nonpositive_ages(self):
        with pytest.raises(ValueError):
            ProviderSpec(name="x", retry_ages=[0, 200])

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            ProviderSpec(name="x", retry_ages=[100], ip_pool_size=0)

    def test_rejects_out_of_range_sequence(self):
        with pytest.raises(ValueError):
            ProviderSpec(
                name="x", retry_ages=[100], ip_pool_size=2, ip_sequence=[0, 2]
            )

    def test_rejects_bad_continuation(self):
        with pytest.raises(ValueError):
            ProviderSpec(name="x", retry_ages=[100], continuation_interval=0)


class TestAttemptAges:
    def test_first_attempt_at_zero(self):
        spec = ProviderSpec(name="x", retry_ages=[100, 300])
        assert spec.attempt_age(1) == 0.0

    def test_explicit_ages(self):
        spec = ProviderSpec(name="x", retry_ages=[100, 300])
        assert spec.attempt_age(2) == 100.0
        assert spec.attempt_age(3) == 300.0

    def test_gives_up_without_continuation(self):
        spec = ProviderSpec(
            name="x", retry_ages=[100], continuation_interval=None,
            max_attempts=2,
        )
        assert spec.attempt_age(3) is None
        assert spec.gives_up

    def test_continuation_extends_schedule(self):
        spec = ProviderSpec(
            name="x", retry_ages=[100], continuation_interval=50
        )
        assert spec.attempt_age(3) == 150.0
        assert spec.attempt_age(5) == 250.0
        assert not spec.gives_up

    def test_max_attempts_cap(self):
        spec = ProviderSpec(
            name="x",
            retry_ages=[100],
            continuation_interval=50,
            max_attempts=3,
        )
        assert spec.attempt_age(3) is not None
        assert spec.attempt_age(4) is None

    def test_out_of_range_attempt_numbers(self):
        spec = ProviderSpec(name="x", retry_ages=[100])
        assert spec.attempt_age(0) is None


class TestPoolRotation:
    def test_default_round_robin(self):
        spec = ProviderSpec(name="x", retry_ages=[1, 2, 3], ip_pool_size=2)
        assert [spec.pool_index(n) for n in (1, 2, 3, 4)] == [0, 1, 0, 1]

    def test_single_ip(self):
        spec = ProviderSpec(name="x", retry_ages=[1])
        assert spec.uses_single_ip
        assert spec.pool_index(5) == 0

    def test_explicit_sequence(self):
        spec = ProviderSpec(
            name="x",
            retry_ages=[1, 2],
            ip_pool_size=3,
            ip_sequence=[0, 2, 1],
        )
        assert [spec.pool_index(n) for n in (1, 2, 3)] == [0, 2, 1]
        # Beyond the sequence: sticks to the last entry.
        assert spec.pool_index(4) == 1


class TestTable3Providers:
    def test_ten_providers(self):
        assert len(PROVIDERS) == 10
        assert set(PROVIDER_BY_NAME) == {p.name for p in PROVIDERS}

    def test_same_ip_column(self):
        # Five of ten providers use multiple addresses (paper §V.B).
        multi = [p for p in PROVIDERS if not p.uses_single_ip]
        assert len(multi) == 5
        assert {p.name for p in multi} == {
            "gmail.com",
            "qq.com",
            "mail.ru",
            "mail.com",
            "gmx.com",
        }

    def test_pool_sizes_match_parentheses(self):
        assert GMAIL.ip_pool_size == 7
        assert MAILRU.ip_pool_size == 7
        assert QQ.ip_pool_size == 2
        assert PROVIDER_BY_NAME["gmx.com"].ip_pool_size == 3

    def test_gmail_explicit_ages(self):
        assert GMAIL.attempt_age(2) == 362.0      # 6:02
        assert GMAIL.attempt_age(9) == 26086.0    # 434:46

    def test_aol_gives_up_after_five(self):
        assert AOL.gives_up
        assert AOL.attempt_age(5) == 1892.0       # 31:32
        assert AOL.attempt_age(6) is None

    def test_qq_gives_up_after_twelve(self):
        assert QQ.gives_up
        assert QQ.attempt_age(12) == 12296.0      # 204:56
        assert QQ.attempt_age(13) is None

    def test_hotmail_cadence_reaches_6h_at_attempt_94(self):
        age = HOTMAIL.attempt_age(94)
        assert age == pytest.approx(21731.0, abs=1.0)  # 362:11
        assert HOTMAIL.attempt_age(93) < 21600.0

    def test_yandex_cadence_reaches_6h_at_attempt_28(self):
        age = YANDEX.attempt_age(28)
        assert age == pytest.approx(22161.0, abs=0.5)  # 369:21
        assert YANDEX.attempt_age(27) < 21600.0

    def test_mailru_final_attempt_reuses_first_ip(self):
        assert MAILRU.pool_index(13) == 0
        assert MAILRU.pool_index(1) == 0

    def test_all_schedules_strictly_increasing(self):
        for spec in PROVIDERS:
            ages = [spec.attempt_age(n) for n in range(1, 15)]
            ages = [a for a in ages if a is not None]
            assert all(b > a for a, b in zip(ages, ages[1:])), spec.name
