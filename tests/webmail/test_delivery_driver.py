"""Unit tests for the WebmailDelivery driver itself."""

from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.dns.resolver import StubResolver
from repro.net.address import AddressPool, IPv4Network
from repro.smtp.client import SMTPClient
from repro.smtp.message import Message
from repro.webmail.provider import ProviderSpec, WebmailDelivery


def build(spec, defense=Defense.GREYLISTING, delay=300.0):
    testbed = Testbed(
        TestbedConfig(defense=defense, greylist_delay=delay)
    )
    pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    client = SMTPClient(
        internet=testbed.internet,
        resolver=StubResolver(testbed.zones, clock=testbed.clock),
        source_address=pool.allocate(),
        helo_name=f"out.{spec.name}",
    )
    delivery = WebmailDelivery(
        spec=spec,
        scheduler=testbed.scheduler,
        client=client,
        address_pool=pool,
    )
    return testbed, delivery


def send(testbed, delivery, horizon=86400.0):
    message = Message(
        sender=f"u@{delivery.spec.name}",
        recipients=["user@victim.example"],
    )
    outcome = delivery.deliver(message, "user@victim.example")
    testbed.run(horizon=horizon)
    return outcome


class TestWebmailDelivery:
    def test_single_ip_passes_on_first_eligible_retry(self):
        spec = ProviderSpec(name="fast.example", retry_ages=[100, 400, 900])
        testbed, delivery = build(spec)
        outcome = send(testbed, delivery)
        assert outcome.delivered
        # 100 s retry is below the 300 s threshold; 400 s passes.
        assert outcome.attempts == 3
        assert outcome.delivery_age == 400.0
        assert outcome.attempt_ages == [0.0, 100.0, 400.0]
        assert outcome.distinct_ips_used == 1

    def test_stops_retrying_after_success(self):
        spec = ProviderSpec(
            name="eager.example",
            retry_ages=[400],
            continuation_interval=100.0,
            max_attempts=50,
        )
        testbed, delivery = build(spec)
        outcome = send(testbed, delivery)
        assert outcome.delivered
        assert outcome.attempts == 2  # no attempts after acceptance

    def test_gives_up_when_schedule_exhausts(self):
        spec = ProviderSpec(
            name="quitter.example",
            retry_ages=[50, 100],
            continuation_interval=None,
            max_attempts=3,
        )
        testbed, delivery = build(spec)
        outcome = send(testbed, delivery)
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.delivery_age is None
        assert outcome.retry_ages == [50.0, 100.0]

    def test_pool_rotation_restarts_triplets(self):
        spec = ProviderSpec(
            name="farm.example",
            retry_ages=[400, 800, 1200, 1600],
            ip_pool_size=2,
        )
        testbed, delivery = build(spec)
        outcome = send(testbed, delivery)
        assert outcome.delivered
        # Attempt 3 (age 800, IP 0 again, triplet age 800 >= 300) passes.
        assert outcome.attempts == 3
        assert outcome.distinct_ips_used == 2

    def test_open_server_accepts_first_attempt(self):
        spec = ProviderSpec(name="any.example", retry_ages=[100])
        testbed, delivery = build(spec, defense=Defense.NONE)
        outcome = send(testbed, delivery)
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.delivery_age == 0.0

    def test_permanent_rejection_stops_immediately(self):
        spec = ProviderSpec(
            name="bounce.example",
            retry_ages=[100, 200],
            continuation_interval=60.0,
        )
        testbed, delivery = build(spec, defense=Defense.NONE)
        testbed.server.valid_recipients = set()  # everyone unknown -> 550
        outcome = send(testbed, delivery)
        assert not outcome.delivered
        assert outcome.attempts == 1
