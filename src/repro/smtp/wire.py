"""SMTP wire format: command parsing and session transcripts.

The high-level session objects in :mod:`repro.smtp.server` are driven by
method calls; this module supplies the text layer underneath — parsing
command lines as they appear on the wire ("MAIL FROM:<a@b.c> SIZE=1024")
and recording full session transcripts.  The transcript is what the
dialect-fingerprinting analysis of :mod:`repro.smtp.dialects` consumes:
Stringhini et al. showed that *how* a client speaks SMTP (argument
formats, command order, whether it bothers to QUIT) fingerprints botnets,
and the paper builds on that observation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .replies import Reply

#: Verbs the parser understands (everything else parses as UNKNOWN).
KNOWN_VERBS = (
    "HELO",
    "EHLO",
    "MAIL",
    "RCPT",
    "DATA",
    "RSET",
    "NOOP",
    "QUIT",
    "VRFY",
    "STARTTLS",
)


class CommandSyntaxError(ValueError):
    """Raised for command lines the parser cannot make sense of."""


@dataclass(frozen=True, slots=True)
class Command:
    """One parsed SMTP command line."""

    verb: str
    argument: str = ""
    #: ESMTP parameters after the argument (e.g. SIZE=1024, BODY=8BITMIME).
    parameters: Tuple[Tuple[str, Optional[str]], ...] = ()
    raw: str = ""

    def parameter(self, name: str) -> Optional[str]:
        name = name.upper()
        for key, value in self.parameters:
            if key == name:
                return value
        return None

    def __str__(self) -> str:
        return self.raw or f"{self.verb} {self.argument}".rstrip()


_PATH_RE = re.compile(r"^<(?P<path>[^<>\s]*)>$")


def _parse_path(text: str, keyword: str) -> Tuple[str, str]:
    """Split ``FROM:<path> param...`` into (path, rest)."""
    if not text.upper().startswith(keyword + ":"):
        raise CommandSyntaxError(f"expected '{keyword}:' in {text!r}")
    rest = text[len(keyword) + 1:].lstrip()
    if not rest:
        raise CommandSyntaxError(f"missing path after {keyword}:")
    head, _, tail = rest.partition(" ")
    match = _PATH_RE.match(head)
    if match is None:
        # Tolerate the bare-address dialect ("MAIL FROM:user@host") but
        # record it: real MTAs bracket the path, many bots do not.
        if "@" in head or head == "":
            return head, tail
        raise CommandSyntaxError(f"malformed path {head!r}")
    return match.group("path"), tail


def _parse_parameters(text: str) -> Tuple[Tuple[str, Optional[str]], ...]:
    parameters = []
    for token in text.split():
        key, sep, value = token.partition("=")
        parameters.append((key.upper(), value if sep else None))
    return tuple(parameters)


def parse_command(line: str) -> Command:
    """Parse one SMTP command line.

    >>> cmd = parse_command("MAIL FROM:<a@b.net> SIZE=1024")
    >>> cmd.verb, cmd.argument, cmd.parameter("SIZE")
    ('MAIL', 'a@b.net', '1024')
    """
    raw = line.rstrip("\r\n")
    stripped = raw.strip()
    if not stripped:
        raise CommandSyntaxError("empty command line")
    head, _, tail = stripped.partition(" ")
    verb = head.upper()
    tail = tail.strip()
    if verb not in KNOWN_VERBS:
        return Command(verb="UNKNOWN", argument=stripped, raw=raw)
    if verb in ("HELO", "EHLO"):
        return Command(verb=verb, argument=tail, raw=raw)
    if verb == "MAIL":
        path, rest = _parse_path(tail, "FROM")
        return Command(
            verb=verb,
            argument=path,
            parameters=_parse_parameters(rest),
            raw=raw,
        )
    if verb == "RCPT":
        path, rest = _parse_path(tail, "TO")
        return Command(
            verb=verb,
            argument=path,
            parameters=_parse_parameters(rest),
            raw=raw,
        )
    # Argument-less (or argument-optional) verbs.
    return Command(verb=verb, argument=tail, raw=raw)


def render_mail_from(sender: str, bracketed: bool = True) -> str:
    """Render a MAIL command in the compliant or bare-address dialect."""
    path = f"<{sender}>" if bracketed else sender
    return f"MAIL FROM:{path}"


def render_rcpt_to(recipient: str, bracketed: bool = True) -> str:
    path = f"<{recipient}>" if bracketed else recipient
    return f"RCPT TO:{path}"


@dataclass(slots=True)
class TranscriptEntry:
    """One exchange in a session transcript."""

    timestamp: float
    direction: str            # "C" (client->server) or "S" (server->client)
    line: str

    def __str__(self) -> str:
        return f"{self.timestamp:10.3f} {self.direction}: {self.line}"


@dataclass(slots=True)
class SessionTranscript:
    """Full wire record of one SMTP session.

    Collected by :class:`TranscribingSession`; consumed by the dialect
    fingerprinting in :mod:`repro.smtp.dialects`.
    """

    client: str
    entries: List[TranscriptEntry] = field(default_factory=list)

    def record_client(self, timestamp: float, line: str) -> None:
        self.entries.append(TranscriptEntry(timestamp, "C", line))

    def record_server(self, timestamp: float, reply: Reply) -> None:
        self.entries.append(TranscriptEntry(timestamp, "S", str(reply)))

    def client_lines(self) -> List[str]:
        return [e.line for e in self.entries if e.direction == "C"]

    def client_commands(self) -> List[Command]:
        commands = []
        for line in self.client_lines():
            try:
                commands.append(parse_command(line))
            except CommandSyntaxError:
                commands.append(Command(verb="MALFORMED", argument=line, raw=line))
        return commands

    def verbs(self) -> List[str]:
        return [c.verb for c in self.client_commands()]

    def ended_with_quit(self) -> bool:
        verbs = self.verbs()
        return bool(verbs) and verbs[-1] == "QUIT"

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.entries)


class TranscribingSession:
    """Wraps an :class:`~repro.smtp.server.SMTPSession` with a wire log.

    Drives the underlying session from raw command lines, recording both
    directions.  ``DATA`` content is carried out-of-band (the simulator's
    message object) — only the command/reply dialogue is transcribed, which
    is all the fingerprinting needs.
    """

    def __init__(self, session, clock) -> None:
        self.session = session
        self.clock = clock
        self.transcript = SessionTranscript(client=str(session.client))
        self.transcript.record_server(clock.now, session.banner)

    def execute(self, line: str, message=None) -> Reply:
        """Feed one raw command line to the session."""
        self.transcript.record_client(self.clock.now, line)
        try:
            command = parse_command(line)
        except CommandSyntaxError:
            reply = Reply(500, "5.5.2 syntax error")
            self.transcript.record_server(self.clock.now, reply)
            return reply
        reply = self._dispatch(command, message)
        self.transcript.record_server(self.clock.now, reply)
        return reply

    def _dispatch(self, command: Command, message) -> Reply:
        if command.verb == "HELO":
            return self.session.helo(command.argument)
        if command.verb == "EHLO":
            return self.session.ehlo(command.argument)
        if command.verb == "MAIL":
            return self.session.mail_from(command.argument)
        if command.verb == "RCPT":
            return self.session.rcpt_to(command.argument)
        if command.verb == "DATA":
            if message is None:
                return Reply(554, "no message supplied to simulator")
            return self.session.data(message)
        if command.verb == "RSET":
            return self.session.rset()
        if command.verb == "QUIT":
            return self.session.quit()
        if command.verb == "NOOP":
            return Reply(250, "2.0.0 OK")
        return Reply(502, "5.5.1 command not implemented")
