"""AST-based determinism & invariant linter (``python -m repro.analysis``).

The repository's headline guarantee — bit-for-bit identical results
across worker counts, cache hits and fault injection — rests on coding
conventions; this subpackage enforces them statically.  See
``docs/ARCHITECTURE.md`` § *Determinism contract* for the rule taxonomy
and suppression syntax (``# repro: noqa RULE-ID``).

* :mod:`~repro.analysis.lint.framework` — AST walker, checker registry,
  noqa handling;
* :mod:`~repro.analysis.lint.checkers` — the shipped per-file rule suite;
* :mod:`~repro.analysis.lint.graph` — whole-program phase: symbol table,
  call graph, interprocedural rules (DET001, RNG002, SHM001, ASY001,
  CCH001);
* :mod:`~repro.analysis.lint.analyze` — the two-phase driver
  (:func:`~repro.analysis.lint.analyze.analyze_paths`);
* :mod:`~repro.analysis.lint.baseline` — grandfathered-finding ratchet;
* :mod:`~repro.analysis.lint.report` — human and JSON reporters;
* :mod:`~repro.analysis.lint.cli` — the ``python -m repro.analysis``
  front end.
"""

from .analyze import AnalysisResult, analyze_contexts, analyze_paths, run_graph_rules
from .baseline import Baseline, BaselineError
from .findings import Finding, Severity
from .framework import (
    Checker,
    LintResult,
    ModuleContext,
    default_checkers,
    lint_paths,
    lint_source,
)
from .graph import GraphRule, Project, default_graph_rules
from .report import render_human, render_json

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "GraphRule",
    "LintResult",
    "ModuleContext",
    "Project",
    "Severity",
    "analyze_contexts",
    "analyze_paths",
    "default_checkers",
    "default_graph_rules",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "run_graph_rules",
]
