"""Unit tests for the equivalence-class batching primitives."""

import pytest

from repro.sim.batch import (
    BatchCounters,
    EquivalenceClassIndex,
    SessionOutcomeCache,
    SessionPlaybook,
)


class TestEquivalenceClassIndex:
    def test_groups_members_by_key(self):
        index = EquivalenceClassIndex()
        index.add(("a",), 1)
        index.add(("a",), 2)
        index.add(("b",), 3)
        assert index.num_classes == 2
        assert index.num_members == 3
        assert index.cardinality(("a",)) == 2
        assert index.cardinality(("b",)) == 1
        assert index.cardinality(("missing",)) == 0

    def test_members_in_insertion_order(self):
        index = EquivalenceClassIndex()
        for member in ("x", "y", "z"):
            index.add("k", member)
        assert index.members("k") == ["x", "y", "z"]
        assert index.members("absent") == []

    def test_classes_iterate_first_appearance_order(self):
        index = EquivalenceClassIndex()
        index.add("late", 1)
        index.add("early", 2)
        index.add("late", 3)
        assert [key for key, _ in index.classes()] == ["late", "early"]

    def test_map_representatives_evaluates_once_per_class(self):
        index = EquivalenceClassIndex()
        for i in range(10):
            index.add(i % 3, i)
        calls = []

        def fn(key):
            calls.append(key)
            return key * 100

        result = index.map_representatives(fn)
        assert calls == [0, 1, 2]
        assert result == {0: 0, 1: 100, 2: 200}

    def test_len_and_contains(self):
        index = EquivalenceClassIndex()
        index.add("k", "m")
        assert len(index) == 1
        assert "k" in index
        assert "other" not in index


class TestSessionPlaybook:
    def test_make_interns_transcript_lines(self):
        first = SessionPlaybook.make("delivered", 250, ("250 OK", "221 Bye"))
        second = SessionPlaybook.make("delivered", 250, ("250 OK", "221 Bye"))
        assert first == second
        # Interning makes the shared lines the *same* string objects.
        assert first.transcript[0] is second.transcript[0]

    def test_outcome_predicates(self):
        assert SessionPlaybook.make("delivered", 250).delivered
        assert SessionPlaybook.make("deferred", 450).deferred
        assert SessionPlaybook.make("rejected", 554).rejected
        assert not SessionPlaybook.make("deferred", 450).delivered


class TestSessionOutcomeCache:
    def test_hit_and_miss_counters(self):
        cache = SessionOutcomeCache(capacity=8)
        playbook = SessionPlaybook.make("delivered", 250)
        built = []

        def builder():
            built.append(1)
            return playbook

        assert cache.get_or_build(("k",), builder) is playbook
        assert cache.get_or_build(("k",), builder) is playbook
        assert (cache.hits, cache.misses, len(built)) == (1, 1, 1)

    def test_eviction_at_capacity_is_lru(self):
        cache = SessionOutcomeCache(capacity=2)
        make = lambda code: lambda: SessionPlaybook.make("deferred", code)  # noqa: E731
        cache.get_or_build("a", make(1))
        cache.get_or_build("b", make(2))
        # Touch "a" so "b" becomes least-recently-used.
        cache.get_or_build("a", make(1))
        cache.get_or_build("c", make(3))
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            SessionOutcomeCache(capacity=0)

    def test_clear_empties_entries(self):
        cache = SessionOutcomeCache()
        cache.get_or_build("k", lambda: SessionPlaybook.make("delivered", 250))
        cache.clear()
        assert len(cache) == 0
        assert "k" not in cache


class TestBatchCounters:
    def test_collapse_factor(self):
        counters = BatchCounters(members=100, classes=4, representative_runs=5)
        assert counters.collapse_factor == 20.0

    def test_collapse_factor_zero_runs(self):
        assert BatchCounters().collapse_factor == 0.0
