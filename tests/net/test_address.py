"""Unit tests for IPv4 addresses, networks and pools."""

import pytest

from repro.net.address import (
    AddressError,
    AddressPool,
    IPv4Address,
    IPv4Network,
    pool_for,
)


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        for text in ("0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1"):
            assert str(IPv4Address.parse(text)) == text

    def test_parse_value(self):
        assert IPv4Address.parse("1.2.3.4").value == 0x01020304

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04", "", "1..2.3"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_value_range_enforced(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_ordering_follows_value(self):
        low = IPv4Address.parse("10.0.0.1")
        high = IPv4Address.parse("10.0.0.2")
        assert low < high

    def test_hashable_and_equal(self):
        a = IPv4Address.parse("10.0.0.1")
        b = IPv4Address.parse("10.0.0.1")
        assert a == b
        assert len({a, b}) == 1


class TestIPv4Network:
    def test_parse(self):
        network = IPv4Network.parse("10.0.0.0/8")
        assert network.prefix == 8
        assert network.num_addresses == 1 << 24

    def test_contains(self):
        network = IPv4Network.parse("192.168.1.0/24")
        assert IPv4Address.parse("192.168.1.77") in network
        assert IPv4Address.parse("192.168.2.1") not in network

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            IPv4Network.parse("192.168.1.5/24")

    def test_bad_prefix_rejected(self):
        with pytest.raises(AddressError):
            IPv4Network.parse("10.0.0.0/33")
        with pytest.raises(AddressError):
            IPv4Network.parse("10.0.0.0")

    def test_hosts_iteration(self):
        network = IPv4Network.parse("10.0.0.0/30")
        hosts = list(network.hosts())
        assert [str(h) for h in hosts] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]

    def test_slash_zero_contains_everything(self):
        everything = IPv4Network.parse("0.0.0.0/0")
        assert IPv4Address.parse("255.255.255.255") in everything


class TestAddressPool:
    def test_sequential_allocation(self):
        pool = pool_for("10.0.0.0/24")
        first = pool.allocate()
        second = pool.allocate()
        assert str(first) == "10.0.0.0"
        assert str(second) == "10.0.0.1"
        assert pool.allocated == 2
        assert pool.remaining == 254

    def test_allocate_many(self):
        pool = pool_for("10.0.0.0/30")
        addresses = pool.allocate_many(4)
        assert len(set(addresses)) == 4

    def test_exhaustion(self):
        pool = pool_for("10.0.0.0/31")
        pool.allocate_many(2)
        with pytest.raises(AddressError):
            pool.allocate()

    def test_allocate_many_negative_rejected(self):
        with pytest.raises(AddressError):
            pool_for("10.0.0.0/24").allocate_many(-1)

    def test_allocations_stay_in_network(self):
        pool = AddressPool(IPv4Network.parse("172.16.0.0/16"))
        network = pool.network
        for _ in range(100):
            assert pool.allocate() in network
