"""Legacy build shim (the environment's setuptools lacks bdist_wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Measuring the Role of Greylisting and Nolisting "
        "in Fighting Spam' (DSN 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        # The columnar engine (repro.scan.columnar) vectorizes with NumPy
        # when present and transparently falls back to array-module
        # columns when absent; everything stays bit-identical either way.
        "columnar": ["numpy>=1.24"],
    },
)
