"""Named generator profiles for the synthetic-internet population.

The Figure 2 reproduction uses the paper's published category mix; the
columnar pipeline adds two realism-targeted mixes from the related
measurement literature:

``figure2``
    The DSN paper's published adoption mix — the default, and byte-for-byte
    identical to populations generated before profiles existed.
``provider-consolidated``
    A third of multi-MX domains outsource mail to shared provider MX pools
    (load-balancing and fail-over layouts), following Ruohonen's MX
    measurement study of basic load-balancing/fail-over setups, which found
    heavy consolidation of exchangers onto a few providers.
``dns-abuse``
    An abuse-shaped mix per the EU DNS Abuse technical report: abusive
    registrations skew towards throwaway single-MX setups and a much larger
    misconfigured tail (dangling MX records left behind by churn).

A profile is just a :class:`~repro.scan.population.PopulationConfig`
recipe; nothing downstream branches on the name.  The columnar pipeline
records the profile per domain (see ``PROFILE_CODE``) so mixed datasets
remain attributable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .population import FIGURE2_MIX, DomainCategory, PopulationConfig


@dataclass(frozen=True)
class GeneratorProfile:
    """A named population recipe: mix plus generator knobs."""

    name: str
    description: str
    mix: Dict[DomainCategory, float] = field(
        default_factory=lambda: dict(FIGURE2_MIX)
    )
    transient_outage_rate: float = 0.004
    persistent_outage_rate: float = 0.0
    dangling_mx_fraction: float = 0.5
    extra_mx_weights: Tuple[float, float, float] = (0.72, 0.2, 0.08)
    provider_pool_fraction: float = 0.0
    provider_pool_count: int = 8
    provider_equal_preference: float = 0.3

    def config(self, num_domains: int, **overrides: object) -> PopulationConfig:
        """Materialize the profile as a :class:`PopulationConfig`."""
        kwargs: Dict[str, object] = {
            "num_domains": num_domains,
            "mix": dict(self.mix),
            "transient_outage_rate": self.transient_outage_rate,
            "persistent_outage_rate": self.persistent_outage_rate,
            "dangling_mx_fraction": self.dangling_mx_fraction,
            "extra_mx_weights": self.extra_mx_weights,
            "provider_pool_fraction": self.provider_pool_fraction,
            "provider_pool_count": self.provider_pool_count,
            "provider_equal_preference": self.provider_equal_preference,
            "profile": self.name,
        }
        kwargs.update(overrides)
        return PopulationConfig(**kwargs)  # type: ignore[arg-type]


#: Registry of the named profiles, in definition order.
PROFILES: Dict[str, GeneratorProfile] = {
    profile.name: profile
    for profile in (
        GeneratorProfile(
            name="figure2",
            description="the DSN paper's published Figure 2 adoption mix",
        ),
        GeneratorProfile(
            name="provider-consolidated",
            description=(
                "multi-MX domains heavily outsourced to shared provider "
                "MX pools (Ruohonen's load-balancing/fail-over measurement)"
            ),
            provider_pool_fraction=0.35,
            provider_pool_count=8,
            provider_equal_preference=0.3,
        ),
        GeneratorProfile(
            name="dns-abuse",
            description=(
                "abuse-shaped registrations: throwaway single-MX setups "
                "and a large dangling-MX tail (EU DNS Abuse study)"
            ),
            mix={
                DomainCategory.SINGLE_MX: 0.62,
                DomainCategory.MULTI_MX: 0.22,
                DomainCategory.MISCONFIGURED: 0.155,
                DomainCategory.NOLISTING: 0.005,
            },
            transient_outage_rate=0.008,
            dangling_mx_fraction=0.75,
        ),
    )
}

#: profile name -> small-int code stored in the columnar ``profile`` column.
PROFILE_CODE: Dict[str, int] = {
    name: code for code, name in enumerate(PROFILES)
}


def profile_config(
    name: str, num_domains: int, **overrides: object
) -> PopulationConfig:
    """Build the :class:`PopulationConfig` of profile ``name``.

    >>> profile_config("figure2", 100).provider_pool_fraction
    0.0
    >>> profile_config("provider-consolidated", 100).profile
    'provider-consolidated'
    """
    profile = PROFILES.get(name)
    if profile is None:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown generator profile {name!r} (known: {known})")
    return profile.config(num_domains, **overrides)
