"""Discrete-event scheduler.

The scheduler owns the simulation :class:`~repro.sim.clock.Clock` and a
priority queue of timestamped callbacks.  Events scheduled for the same
instant fire in FIFO order (a monotonically increasing sequence number breaks
ties), which makes every run fully deterministic.

This is the backbone of every experiment in the reproduction: bots, MTAs,
webmail providers and scanners are all expressed as callbacks re-scheduling
themselves on this queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .clock import Clock, ClockError

EventCallback = Callable[[], Any]


class SchedulerError(Exception):
    """Raised on illegal scheduler operations."""


@dataclass(frozen=True, slots=True)
class EventHandle:
    """Opaque handle returned by :meth:`EventScheduler.schedule_at`.

    Holding the handle allows the caller to cancel the event before it fires.
    """

    when: float
    seq: int
    label: str = field(compare=False, default="")


class _Entry:
    """Internal heap entry; mutable so cancellation can tombstone it."""

    __slots__ = ("when", "seq", "callback", "label", "cancelled")

    def __init__(
        self, when: float, seq: int, callback: EventCallback, label: str
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def sort_key(self) -> tuple:
        return (self.when, self.seq)

    def __lt__(self, other: "_Entry") -> bool:
        return self.sort_key() < other.sort_key()


class EventScheduler:
    """A deterministic discrete-event loop.

    Parameters
    ----------
    clock:
        The simulation clock to drive.  A fresh one is created if omitted.
    compact_min_tombstones:
        Heap compaction is skipped while fewer than this many cancelled
        tombstones exist, so tiny heaps are not rebuilt on every
        cancellation.  Defaults to :data:`COMPACT_MIN_TOMBSTONES`; lower it
        for tighter memory bounds under schedule/cancel churn, raise it to
        amortize compaction over larger batches.

    Examples
    --------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> _ = sched.schedule_in(5.0, lambda: fired.append(sched.clock.now))
    >>> sched.run()
    1
    >>> fired
    [5.0]
    """

    #: Default compaction threshold (see ``compact_min_tombstones``).
    COMPACT_MIN_TOMBSTONES = 32

    def __init__(
        self,
        clock: Optional[Clock] = None,
        compact_min_tombstones: Optional[int] = None,
    ) -> None:
        if compact_min_tombstones is None:
            compact_min_tombstones = self.COMPACT_MIN_TOMBSTONES
        if compact_min_tombstones < 1:
            raise SchedulerError(
                f"compact_min_tombstones must be >= 1, got "
                f"{compact_min_tombstones}"
            )
        self.clock = clock if clock is not None else Clock()
        self.compact_min_tombstones = int(compact_min_tombstones)
        self._heap: list[_Entry] = []
        self._entries: dict[tuple, _Entry] = {}
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._tombstones = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, when: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self.clock.now:
            raise SchedulerError(
                f"cannot schedule event at {when} before current time "
                f"{self.clock.now}"
            )
        seq = next(self._seq)
        entry = _Entry(when, seq, callback, label)
        heapq.heappush(self._heap, entry)
        self._entries[(when, seq)] = entry
        return EventHandle(when=when, seq=seq, label=label)

    def schedule_in(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it already fired or was already cancelled.
        """
        entry = self._entries.get((handle.when, handle.seq))
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        del self._entries[(handle.when, handle.seq)]
        self._tombstones += 1
        if (
            self._tombstones >= self.compact_min_tombstones
            and self._tombstones * 2 > len(self._entries)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Rebuild the heap without cancelled tombstones.

        Cancelled entries normally linger in the heap until popped; under a
        schedule/cancel churn workload (MTA retry timers that almost always
        get cancelled) they would otherwise accumulate without bound.
        """
        self._heap = [entry for entry in self._heap if not entry.cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                self._tombstones -= 1
                continue
            del self._entries[(entry.when, entry.seq)]
            self.clock.advance_to(entry.when)
            self._events_processed += 1
            entry.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or limits are hit).

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time; the
            clock is then advanced to ``until`` so post-run reads see the full
            horizon.
        max_events:
            Safety valve for runaway self-rescheduling loops.

        Returns the number of events processed by this call.
        """
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.when > until:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and until > self.clock.now:
            try:
                self.clock.advance_to(until)
            except ClockError:  # pragma: no cover - guarded above
                pass
        return processed

    def _peek(self) -> Optional[_Entry]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._tombstones -= 1
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Shortcut for ``self.clock.now``."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of events still queued (excluding cancelled tombstones)."""
        return len(self._entries)

    @property
    def events_processed(self) -> int:
        """Total events fired since construction."""
        return self._events_processed

    @property
    def tombstones(self) -> int:
        """Cancelled entries still occupying heap slots."""
        return self._tombstones

    @property
    def heap_size(self) -> int:
        """Heap slots in use, live entries plus tombstones.

        The churn benchmark asserts this stays bounded: without
        compaction, cancel-heavy workloads (retry timers that almost
        always get cancelled) grow the heap without limit.
        """
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        entry = self._peek()
        return entry.when if entry is not None else None

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={self.clock.now:.3f}, pending={self.pending}, "
            f"processed={self._events_processed})"
        )
