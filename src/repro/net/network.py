"""The virtual internet: address routing, connections and latency.

:class:`VirtualInternet` is a registry mapping IPv4 addresses to
:class:`~repro.net.host.VirtualHost` instances plus a latency model.  It
offers the two primitives the rest of the system needs:

* ``connect(src, dst, port)`` — TCP-style connect, yielding a
  :class:`~repro.net.host.Connection` or raising
  :class:`~repro.net.host.ConnectionRefused` / ``HostUnreachable``; and
* ``syn_probe(dst, port)`` — a zmap-style half-open probe used by the
  banner-grab scanner, returning whether the port answered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Union

from .address import IPv4Address
from .host import (
    SMTP_PORT,
    Connection,
    ConnectionRefused,
    HostUnreachable,
    NetError,
    VirtualHost,
)
from .latency import LatencyModel, ZeroLatency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.model import FaultPlan

#: Epoch source for fault draws: a fixed window index or a callable (e.g.
#: ``lambda: plan.config.epoch_for(clock.now)``) evaluated per connection.
EpochSource = Union[int, Callable[[], int]]


class VirtualInternet:
    """Routes connections between registered hosts."""

    def __init__(self, latency: Optional[LatencyModel] = None) -> None:
        self._hosts_by_address: Dict[IPv4Address, VirtualHost] = {}
        self._hosts_by_name: Dict[str, VirtualHost] = {}
        self.latency = latency if latency is not None else ZeroLatency()
        self.connections_attempted = 0
        self.connections_established = 0
        self.connections_refused = 0
        self.connections_reset_scheduled = 0
        self._faults: Optional["FaultPlan"] = None
        self._fault_epoch: EpochSource = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(
        self, plan: Optional["FaultPlan"], epoch: EpochSource = 0
    ) -> None:
        """Attach (or detach, with ``None``) a fault plan to this internet.

        With a plan installed, :meth:`connect` and :meth:`syn_probe`
        consult it for scheduled host downtime windows and port-25 flaps,
        and established connections may carry a mid-session reset budget.
        ``epoch`` selects the downtime window: an int pins it (scan-style
        usage), a callable is evaluated per connection (clock-style usage).
        """
        self._faults = plan
        self._fault_epoch = epoch

    @property
    def faults(self) -> Optional["FaultPlan"]:
        return self._faults

    def _current_epoch(self) -> int:
        epoch = self._fault_epoch
        return epoch() if callable(epoch) else epoch

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, host: VirtualHost) -> VirtualHost:
        """Attach a host; all of its addresses become routable."""
        if host.name in self._hosts_by_name:
            raise NetError(f"duplicate host name {host.name!r}")
        for address in host.addresses:
            if address in self._hosts_by_address:
                owner = self._hosts_by_address[address].name
                raise NetError(
                    f"address {address} already owned by host {owner!r}"
                )
        self._hosts_by_name[host.name] = host
        for address in host.addresses:
            self._hosts_by_address[address] = host
        return host

    def unregister(self, host: VirtualHost) -> None:
        self._hosts_by_name.pop(host.name, None)
        for address in host.addresses:
            self._hosts_by_address.pop(address, None)

    def host_at(self, address: IPv4Address) -> Optional[VirtualHost]:
        return self._hosts_by_address.get(address)

    def host_named(self, name: str) -> Optional[VirtualHost]:
        return self._hosts_by_name.get(name)

    @property
    def hosts(self) -> Iterable[VirtualHost]:
        return self._hosts_by_name.values()

    @property
    def num_hosts(self) -> int:
        return len(self._hosts_by_name)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connect(
        self, source: IPv4Address, destination: IPv4Address, port: int
    ) -> Connection:
        """Open a connection; raises on refusal/unreachability."""
        self.connections_attempted += 1
        host = self._hosts_by_address.get(destination)
        if host is None or not host.up:
            raise HostUnreachable(f"no route to {destination}")
        plan = self._faults
        epoch = self._current_epoch() if plan is not None else 0
        if plan is not None and plan.host_down(host.name, epoch):
            raise HostUnreachable(
                f"{host.name} is in a downtime window (epoch {epoch})"
            )
        if (
            plan is not None
            and port == SMTP_PORT
            and plan.port_closed(host.name, epoch)
        ):
            self.connections_refused += 1
            raise ConnectionRefused(
                f"{host.name} port {port} flapped (epoch {epoch})"
            )
        try:
            session = host.accept(port, source)
        except ConnectionRefused:
            self.connections_refused += 1
            raise
        self.connections_established += 1
        if plan is not None:
            budget = plan.session_reset_after(
                f"{epoch}:{source}:{destination}:{port}"
                f":{self.connections_attempted}"
            )
            if budget is not None:
                from ..faults.session import ResettingSession

                self.connections_reset_scheduled += 1
                session = ResettingSession(session, budget)
        return Connection(source, destination, port, session)

    def syn_probe(self, destination: IPv4Address, port: int) -> bool:
        """zmap-style SYN probe: ``True`` iff something listens on the port.

        Unlike :meth:`connect` this never materialises a session, mirroring
        how the scans.io banner-grab dataset was produced.
        """
        host = self._hosts_by_address.get(destination)
        if host is None or not host.is_listening(port):
            return False
        plan = self._faults
        if plan is not None:
            epoch = self._current_epoch()
            if plan.host_down(host.name, epoch):
                return False
            if port == SMTP_PORT and plan.port_closed(host.name, epoch):
                return False
        return True

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        """Round-trip latency between two addresses, in seconds."""
        return self.latency.rtt(source, destination)

    def __repr__(self) -> str:
        return (
            f"VirtualInternet(hosts={self.num_hosts}, "
            f"established={self.connections_established}, "
            f"refused={self.connections_refused})"
        )
