"""Unit tests for MX ordering/resolution and the nolisting zone builders."""

import pytest

from repro.dns.mxutil import implicit_mx, resolve_exchangers, sort_mx
from repro.dns.nolisting import (
    setup_misconfigured,
    setup_multi_mx,
    setup_nolisting,
    setup_single_mx,
)
from repro.dns.records import MXRecord
from repro.dns.resolver import StubResolver
from repro.dns.zone import ZoneStore
from repro.net.address import IPv4Address, pool_for
from repro.net.host import SMTP_PORT
from repro.net.network import VirtualInternet
from repro.sim.rng import RandomStream


def addr(text):
    return IPv4Address.parse(text)


class TestSortMX:
    def test_orders_by_preference(self):
        records = [
            MXRecord("foo.net", 15, "smtp1.foo.net"),
            MXRecord("foo.net", 0, "smtp.foo.net"),
        ]
        assert [r.exchange for r in sort_mx(records)] == [
            "smtp.foo.net",
            "smtp1.foo.net",
        ]

    def test_name_tiebreak(self):
        records = [
            MXRecord("foo.net", 10, "b.foo.net"),
            MXRecord("foo.net", 10, "a.foo.net"),
        ]
        assert [r.exchange for r in sort_mx(records)] == [
            "a.foo.net",
            "b.foo.net",
        ]


class TestResolveExchangers:
    @pytest.fixture
    def zones(self):
        store = ZoneStore()
        zone = store.create("foo.net")
        zone.add_a("smtp.foo.net", addr("1.2.3.4"))
        zone.add_a("smtp1.foo.net", addr("1.2.3.5"))
        zone.add_mx(0, "smtp.foo.net")
        zone.add_mx(15, "smtp1.foo.net")
        return store

    def test_resolves_in_priority_order(self, zones):
        resolver = StubResolver(zones)
        exchangers = resolve_exchangers(resolver, "foo.net")
        assert [e.hostname for e in exchangers] == [
            "smtp.foo.net",
            "smtp1.foo.net",
        ]
        assert all(e.resolvable for e in exchangers)

    def test_follow_up_repairs_missing_glue(self, zones):
        resolver = StubResolver(
            zones, glue_elision_rate=1.0, rng=RandomStream(1)
        )
        exchangers = resolve_exchangers(resolver, "foo.net", follow_up=True)
        assert all(e.resolvable for e in exchangers)

    def test_without_follow_up_glue_gaps_remain(self, zones):
        resolver = StubResolver(
            zones, glue_elision_rate=1.0, rng=RandomStream(1)
        )
        exchangers = resolve_exchangers(resolver, "foo.net", follow_up=False)
        assert all(not e.resolvable for e in exchangers)

    def test_dangling_exchange_kept_unresolvable(self, zones):
        zones.zone_for("foo.net").add_mx(20, "ghost.foo.net")
        resolver = StubResolver(zones)
        exchangers = resolve_exchangers(resolver, "foo.net")
        ghost = [e for e in exchangers if e.hostname == "ghost.foo.net"]
        assert ghost and not ghost[0].resolvable

    def test_implicit_mx_fallback(self, zones):
        zones.zone_for("foo.net").add_a("bar.foo.net", addr("9.9.9.9"))
        resolver = StubResolver(zones)
        implicit = implicit_mx(resolver, "bar.foo.net")
        assert implicit is not None
        assert implicit.address == addr("9.9.9.9")

    def test_implicit_mx_none_without_a(self, zones):
        resolver = StubResolver(zones)
        assert implicit_mx(resolver, "foo.net") is None


class TestDomainSetups:
    def _fixture(self):
        return VirtualInternet(), ZoneStore(), pool_for("10.0.0.0/24")

    def test_single_mx(self):
        internet, zones, pool = self._fixture()
        setup = setup_single_mx(
            internet, zones, pool, "foo.net", lambda client: "session"
        )
        assert len(setup.hosts) == 1
        assert setup.primary_host.is_listening(SMTP_PORT)
        assert len(zones.zone_for("foo.net").mx_records()) == 1

    def test_multi_mx(self):
        internet, zones, pool = self._fixture()
        setup = setup_multi_mx(
            internet, zones, pool, "foo.net", lambda client: "session", count=3
        )
        assert len(setup.hosts) == 3
        assert all(host.is_listening(SMTP_PORT) for host in setup.hosts)
        prefs = [r.preference for r in zones.zone_for("foo.net").mx_records()]
        assert prefs == sorted(prefs)

    def test_multi_mx_needs_two(self):
        internet, zones, pool = self._fixture()
        with pytest.raises(ValueError):
            setup_multi_mx(
                internet, zones, pool, "foo.net", lambda c: "s", count=1
            )

    def test_nolisting_primary_closed_secondary_open(self):
        internet, zones, pool = self._fixture()
        setup = setup_nolisting(
            internet, zones, pool, "foo.net", lambda client: "session"
        )
        primary, secondary = setup.hosts
        assert not primary.is_listening(SMTP_PORT)
        assert secondary.is_listening(SMTP_PORT)
        # Primary still has a proper A record (Figure 1's requirement).
        resolver = StubResolver(zones)
        exchangers = resolve_exchangers(resolver, "foo.net")
        assert exchangers[0].hostname.startswith("smtp.")
        assert exchangers[0].resolvable
        assert exchangers[0].preference < exchangers[1].preference

    def test_misconfigured_no_mx(self):
        _, zones, _ = self._fixture()
        setup_misconfigured(zones, "broken.net", mode="no-mx")
        assert zones.zone_for("broken.net").mx_records() == []

    def test_misconfigured_dangling_mx(self):
        _, zones, _ = self._fixture()
        setup_misconfigured(zones, "broken.net", mode="dangling-mx")
        resolver = StubResolver(zones)
        exchangers = resolve_exchangers(resolver, "broken.net")
        assert exchangers and not exchangers[0].resolvable

    def test_misconfigured_unknown_mode(self):
        _, zones, _ = self._fixture()
        with pytest.raises(ValueError):
            setup_misconfigured(zones, "broken.net", mode="weird")
