"""Served-vs-simulated equivalence: the serving layer's core contract.

The same seeded bot traffic must produce *identical* greylist decisions
whether it flows through the simulator directly or over the wire through
the policy daemon: the full :class:`GreylistEvent` stream matches
element-for-element, and the resulting triplet-store state is
bit-identical — on every storage backend.  This is the proof that the
served and simulated paths share one policy core, not two
implementations that happen to agree on the verbs.
"""

import asyncio

import pytest

from repro.greylist.backends import create_backend
from repro.greylist.persistence import format_entry_line
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import TripletStore
from repro.serve.loadgen import capture_bot_trace, replay_trace
from repro.serve.plugins import DecisionCache, GreylistingPlugin, PluginChain
from repro.serve.server import PolicyServer, ReplayClock

THRESHOLD = 300.0
SEED = 23


def serve_trace(trace, backend_name, path=None):
    """Replay ``trace`` through a live daemon; return the served policy."""

    async def scenario():
        clock = ReplayClock()
        store = TripletStore(
            clock=clock, backend=create_backend(backend_name, path)
        )
        policy = GreylistPolicy(clock=clock, delay=THRESHOLD, store=store)
        chain = PluginChain(
            [GreylistingPlugin(policy, cache=DecisionCache())]
        )
        server = PolicyServer(chain, clock, flush_interval=0.2)
        host, port = await server.start()
        report = await replay_trace(host, port, trace.requests)
        # Snapshot before shutdown closes the backend.
        events = list(policy.events)
        snapshot = [format_entry_line(e) for e in policy.store.entries()]
        size, confirmed = policy.store.size, policy.store.confirmed
        await server.shutdown()
        return report, events, snapshot, size, confirmed

    return asyncio.run(scenario())


@pytest.fixture(scope="module")
def trace():
    return capture_bot_trace(threshold=THRESHOLD, num_messages=120, seed=SEED)


@pytest.mark.parametrize("backend_name", ["memory", "sqlite", "journal"])
def test_served_equals_simulated(trace, backend_name, tmp_path):
    path = (
        None
        if backend_name == "memory"
        else str(tmp_path / f"triplets.{backend_name}")
    )
    report, events, snapshot, size, confirmed = serve_trace(
        trace, backend_name, path
    )

    # Wire-level: every action verb matched the simulated ground truth.
    assert report.total == len(trace.requests)
    assert report.mismatches == []

    # Event-stream equivalence: the served policy logged the *same*
    # GreylistEvent sequence the simulator did — triplets, timestamps,
    # actions, all of it.
    assert events == trace.events

    # Store-snapshot equivalence: serialized triplet state is
    # bit-identical, and the aggregate counters agree.
    assert snapshot == trace.snapshot_lines
    assert (size, confirmed) == (trace.store_size, trace.store_confirmed)


def test_trace_is_deterministic_per_seed():
    a = capture_bot_trace(threshold=THRESHOLD, num_messages=40, seed=7)
    b = capture_bot_trace(threshold=THRESHOLD, num_messages=40, seed=7)
    assert a.events == b.events
    assert a.snapshot_lines == b.snapshot_lines


def test_distinct_seeds_produce_distinct_traffic():
    a = capture_bot_trace(threshold=THRESHOLD, num_messages=40, seed=7)
    b = capture_bot_trace(threshold=THRESHOLD, num_messages=40, seed=8)
    assert a.events != b.events
