"""Unit tests for greylisting key strategies."""

from repro.greylist.keying import (
    KeyStrategy,
    derive_key,
    resists_sender_rotation,
)
from repro.greylist.policy import GreylistPolicy
from repro.net.address import IPv4Address
from repro.sim.clock import Clock

CLIENT = IPv4Address.parse("198.51.100.7")
NEIGHBOR = IPv4Address.parse("198.51.100.200")
FAR = IPv4Address.parse("203.0.113.1")


class TestDeriveKey:
    def test_full_triplet_distinguishes_everything(self):
        a = derive_key(KeyStrategy.FULL_TRIPLET, CLIENT, "s@x.net", "r@y.net")
        assert a != derive_key(
            KeyStrategy.FULL_TRIPLET, CLIENT, "s2@x.net", "r@y.net"
        )
        assert a != derive_key(
            KeyStrategy.FULL_TRIPLET, NEIGHBOR, "s@x.net", "r@y.net"
        )

    def test_client_net_merges_neighbors(self):
        a = derive_key(
            KeyStrategy.CLIENT_NET_TRIPLET, CLIENT, "s@x.net", "r@y.net"
        )
        b = derive_key(
            KeyStrategy.CLIENT_NET_TRIPLET, NEIGHBOR, "s@x.net", "r@y.net"
        )
        assert a == b
        assert a != derive_key(
            KeyStrategy.CLIENT_NET_TRIPLET, FAR, "s@x.net", "r@y.net"
        )

    def test_sender_domain_merges_localparts(self):
        a = derive_key(KeyStrategy.SENDER_DOMAIN, CLIENT, "s1@x.net", "r@y.net")
        b = derive_key(KeyStrategy.SENDER_DOMAIN, CLIENT, "s2@x.net", "r@y.net")
        assert a == b
        assert a != derive_key(
            KeyStrategy.SENDER_DOMAIN, CLIENT, "s1@other.net", "r@y.net"
        )

    def test_client_only_merges_everything_but_ip(self):
        a = derive_key(KeyStrategy.CLIENT_ONLY, CLIENT, "s1@x.net", "r1@y.net")
        b = derive_key(KeyStrategy.CLIENT_ONLY, CLIENT, "s2@z.net", "r2@w.net")
        assert a == b
        assert a != derive_key(
            KeyStrategy.CLIENT_ONLY, NEIGHBOR, "s1@x.net", "r1@y.net"
        )

    def test_rotation_resistance_flags(self):
        assert resists_sender_rotation(KeyStrategy.FULL_TRIPLET)
        assert resists_sender_rotation(KeyStrategy.CLIENT_NET_TRIPLET)
        assert not resists_sender_rotation(KeyStrategy.SENDER_DOMAIN)
        assert not resists_sender_rotation(KeyStrategy.CLIENT_ONLY)


class TestPolicyWithStrategies:
    def test_sender_domain_policy_passes_rotated_localparts(self):
        clock = Clock()
        policy = GreylistPolicy(
            clock=clock, delay=300, key_strategy=KeyStrategy.SENDER_DOMAIN
        )
        assert not policy.on_rcpt_to(CLIENT, "a@list.net", "r@y.net").accept
        clock.advance_by(301)
        # Different localpart, same domain: matches the history.
        assert policy.on_rcpt_to(CLIENT, "b@list.net", "r@y.net").accept

    def test_client_only_policy_whitelists_the_ip(self):
        clock = Clock()
        policy = GreylistPolicy(
            clock=clock, delay=300, key_strategy=KeyStrategy.CLIENT_ONLY
        )
        policy.on_rcpt_to(CLIENT, "a@x.net", "r@y.net")
        clock.advance_by(301)
        assert policy.on_rcpt_to(CLIENT, "b@z.net", "q@w.net").accept
        # A third, totally unrelated message from the same IP: instant.
        assert policy.on_rcpt_to(CLIENT, "c@v.net", "p@u.net").accept

    def test_network_prefix_kwarg_promotes_strategy(self):
        policy = GreylistPolicy(
            clock=Clock(), delay=300, network_prefix=24
        )
        assert policy.key_strategy is KeyStrategy.CLIENT_NET_TRIPLET

    def test_explicit_strategy_wins_over_prefix_default(self):
        policy = GreylistPolicy(
            clock=Clock(),
            delay=300,
            network_prefix=16,
            key_strategy=KeyStrategy.CLIENT_ONLY,
        )
        assert policy.key_strategy is KeyStrategy.CLIENT_ONLY
