"""The reproduction scorecard: every headline number, one call.

Runs a reduced-scale version of every experiment and prints a
paper-vs-measured table with a pass/fail verdict per claim — the
one-page answer to "does this reproduction hold?".

Each paper artefact is scored by its own section function; the sections
are independent experiments, so :func:`build_scorecard` fans them over
the parallel experiment runner (``workers > 1``) and concatenates the
rows in the fixed section order — the table is identical whatever the
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.cdf import ks_distance
from ..analysis.tables import render_table
from ..botnet.families import KELIHOS
from ..runner.pool import run_tasks
from ..scan.detect import DomainClass
from .adoption import run_adoption_experiment
from .coverage import build_coverage_report
from .defense_matrix import build_defense_matrix
from .deployment import run_deployment_experiment
from .figure1 import run_figure1
from .greylist_experiment import run_greylist_experiment
from .mta_survey import run_mta_survey
from .testbed import Defense
from .webmail_experiment import run_webmail_experiment


@dataclass
class ScorecardRow:
    """One claim's reproduction status."""

    artefact: str
    claim: str
    paper: str
    measured: str
    holds: bool


def _scaled(base: int, scale: float) -> int:
    return max(10, int(base * scale))


def _score_figure1(seed: int, scale: float) -> List[ScorecardRow]:
    trace = run_figure1()
    return [
        ScorecardRow(
            artefact="Figure 1",
            claim="compliant MTA delivers through nolisting",
            paper="delivers via secondary MX",
            measured="delivered" if trace.delivered else "LOST",
            holds=trace.delivered,
        )
    ]


def _score_adoption(seed: int, scale: float) -> List[ScorecardRow]:
    adoption = run_adoption_experiment(
        num_domains=_scaled(5000, scale), seed=seed
    )
    nolisting_pct = 100.0 * adoption.summary.fraction(DomainClass.NOLISTING)
    return [
        ScorecardRow(
            artefact="Figure 2",
            claim="nolisting adoption share",
            paper="0.52%",
            measured=f"{nolisting_pct:.2f}%",
            holds=abs(nolisting_pct - 0.52) < 0.2,
        ),
        ScorecardRow(
            artefact="Figure 2",
            claim="top-15 adopter found",
            paper="1",
            measured=str(adoption.crosscheck.top15),
            holds=adoption.crosscheck.top15 == 1,
        ),
    ]


def _score_defenses(seed: int, scale: float) -> List[ScorecardRow]:
    matrix = build_defense_matrix(seed=seed, recipients=2)
    grey = matrix.family_verdicts(Defense.GREYLISTING)
    nolist = matrix.family_verdicts(Defense.NOLISTING)
    table2_holds = (
        grey
        == {
            "Cutwail": True,
            "Kelihos": False,
            "Darkmailer": True,
            "Darkmailer(v3)": True,
        }
        and nolist
        == {
            "Cutwail": False,
            "Kelihos": True,
            "Darkmailer": False,
            "Darkmailer(v3)": False,
        }
    )
    report = build_coverage_report(matrix)
    return [
        ScorecardRow(
            artefact="Table II",
            claim="per-family verdict matrix",
            paper="grey blocks C/D/Dv3; nolist blocks K",
            measured="identical" if table2_holds else "DIVERGED",
            holds=table2_holds,
        ),
        ScorecardRow(
            artefact="§VI",
            claim="global spam stopped by either technique",
            paper=">70% (70.69%)",
            measured=f"{100 * report.combined_share:.2f}%",
            holds=report.combined_share > 0.70,
        ),
    ]


def _score_figure3(seed: int, scale: float) -> List[ScorecardRow]:
    n = _scaled(50, scale)
    res5 = run_greylist_experiment(KELIHOS, 5.0, num_messages=n, seed=seed)
    res300 = run_greylist_experiment(KELIHOS, 300.0, num_messages=n, seed=seed)
    ks = ks_distance(res5.delay_cdf(), res300.delay_cdf())
    return [
        ScorecardRow(
            artefact="Figure 3",
            claim="Kelihos CDFs similar at 5s vs 300s",
            paper="similar curves",
            measured=f"KS={ks:.3f}",
            holds=ks <= 0.25,
        ),
        ScorecardRow(
            artefact="Figure 3",
            claim="minimum Kelihos retry delay",
            paper=">=300s",
            measured=f"{min(res5.delivery_delays):.0f}s",
            holds=min(res5.delivery_delays) >= 300.0,
        ),
    ]


def _score_figure4(seed: int, scale: float) -> List[ScorecardRow]:
    res21600 = run_greylist_experiment(
        KELIHOS,
        21600.0,
        num_messages=_scaled(30, scale),
        seed=seed,
        horizon=400000.0,
    )
    return [
        ScorecardRow(
            artefact="Figure 4",
            claim="Kelihos defeats a 6h threshold",
            paper="delivers after several attempts",
            measured=f"{100 * res21600.delivery_rate:.0f}% delivered",
            holds=res21600.delivery_rate == 1.0,
        )
    ]


def _score_figure5(seed: int, scale: float) -> List[ScorecardRow]:
    deployment = run_deployment_experiment(
        num_messages=_scaled(1000, scale), seed=5
    )
    within = deployment.fraction_delivered_within(600.0)
    return [
        ScorecardRow(
            artefact="Figure 5",
            claim="benign mail within 10 minutes",
            paper="~half",
            measured=f"{100 * within:.0f}%",
            holds=0.30 <= within <= 0.70,
        )
    ]


def _score_webmail(seed: int, scale: float) -> List[ScorecardRow]:
    webmail = run_webmail_experiment()
    lost = sorted(r.provider for r in webmail if not r.delivered)
    attempts = {r.provider: r.attempts for r in webmail}
    return [
        ScorecardRow(
            artefact="Table III",
            claim="providers losing mail at 6h",
            paper="qq.com, aol.com",
            measured=", ".join(lost),
            holds=lost == ["aol.com", "qq.com"],
        ),
        ScorecardRow(
            artefact="Table III",
            claim="hotmail attempt count",
            paper="94",
            measured=str(attempts["hotmail.com"]),
            holds=attempts["hotmail.com"] == 94,
        ),
    ]


def _score_mta(seed: int, scale: float) -> List[ScorecardRow]:
    survey = run_mta_survey()
    violators = [r.mta for r in survey if not r.rfc_compliant_lifetime]
    return [
        ScorecardRow(
            artefact="Table IV",
            claim="only Exchange violates the RFC give-up guidance",
            paper="exchange",
            measured=", ".join(violators),
            holds=violators == ["exchange"],
        )
    ]


#: Section name -> scorer, in scorecard row order.
_SECTIONS = {
    "figure1": _score_figure1,
    "adoption": _score_adoption,
    "defenses": _score_defenses,
    "figure3": _score_figure3,
    "figure4": _score_figure4,
    "figure5": _score_figure5,
    "webmail": _score_webmail,
    "mta": _score_mta,
}


def score_section(section: str, seed: int, scale: float) -> List[ScorecardRow]:
    """Score one scorecard section (one worker's unit of work)."""
    try:
        scorer = _SECTIONS[section]
    except KeyError:
        raise ValueError(f"unknown scorecard section {section!r}") from None
    return scorer(seed, scale)


def build_scorecard(
    seed: int = 42, scale: float = 1.0, workers: int = 1
) -> List[ScorecardRow]:
    """Run everything and score it.

    ``scale`` shrinks the workloads for quick runs (0.5 halves message and
    domain counts); verdicts are scale-insensitive.  ``workers`` fans the
    sections over that many processes; the rows come back in the same
    order regardless.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    from ..runner.shards import scorecard_section_task

    payloads = [
        {"section": section, "seed": seed, "scale": scale}
        for section in _SECTIONS
    ]
    sections = run_tasks(scorecard_section_task, payloads, workers=workers)
    return [row for section_rows in sections for row in section_rows]


def scorecard_text(seed: int = 42, scale: float = 1.0, workers: int = 1) -> str:
    """Render the scorecard."""
    rows = build_scorecard(seed=seed, scale=scale, workers=workers)
    passed = sum(1 for row in rows if row.holds)
    table = render_table(
        headers=("Artefact", "Claim", "Paper", "Measured", "Holds"),
        rows=[
            (row.artefact, row.claim, row.paper, row.measured,
             "yes" if row.holds else "NO")
            for row in rows
        ],
        title=f"Reproduction scorecard — {passed}/{len(rows)} claims hold",
    )
    return table
