"""Tests for the Table III webmail experiment and Table IV MTA survey."""

import pytest

from repro.core.mta_survey import run_mta_survey, survey_mta
from repro.core.webmail_experiment import (
    SIX_HOURS,
    run_provider,
    run_webmail_experiment,
)
from repro.mta.profiles import PROFILES
from repro.sim.clock import format_duration
from repro.webmail.providers import PROVIDER_BY_NAME, PROVIDERS

#: Table III expectations: provider -> (same_ip, attempts, delivered).
PAPER_TABLE3 = {
    "gmail.com": (False, 9, True),
    "yahoo.co.uk": (True, 9, True),
    "hotmail.com": (True, 94, True),
    "qq.com": (False, 12, False),
    "mail.ru": (False, 13, True),
    "yandex.com": (True, 28, True),
    "mail.com": (False, 10, True),
    "gmx.com": (False, 10, True),
    "aol.com": (True, 5, False),
    "india.com": (True, 10, True),
}


@pytest.fixture(scope="module")
def rows():
    return run_webmail_experiment()


class TestTable3Reproduction:
    def test_all_ten_rows(self, rows):
        assert [r.provider for r in rows] == [p.name for p in PROVIDERS]

    def test_same_ip_column(self, rows):
        for row in rows:
            assert row.same_ip == PAPER_TABLE3[row.provider][0], row.provider

    def test_attempt_counts(self, rows):
        for row in rows:
            assert row.attempts == PAPER_TABLE3[row.provider][1], row.provider

    def test_delivery_verdicts(self, rows):
        for row in rows:
            assert row.delivered == PAPER_TABLE3[row.provider][2], row.provider

    def test_gmail_delay_stamps(self, rows):
        gmail = next(r for r in rows if r.provider == "gmail.com")
        assert gmail.delays_mmss() == [
            "6:02", "29:02", "56:36", "98:44", "162:03", "229:44",
            "309:05", "434:46",
        ]

    def test_aol_abandons_after_half_hour(self, rows):
        aol = next(r for r in rows if r.provider == "aol.com")
        assert aol.delays_mmss() == ["5:32", "11:32", "21:32", "31:32"]
        assert not aol.delivered

    def test_hotmail_delivers_just_past_6h(self, rows):
        hotmail = next(r for r in rows if r.provider == "hotmail.com")
        assert hotmail.delivery_age >= SIX_HOURS
        assert format_duration(hotmail.delivery_age) == "362:11"

    def test_delivered_rows_pass_the_threshold(self, rows):
        for row in rows:
            if row.delivered:
                assert row.delivery_age >= SIX_HOURS
            else:
                assert all(age < SIX_HOURS for age in row.retry_delays)

    def test_multi_ip_providers_need_ip_reuse(self, rows):
        # mail.ru only delivers because its farm lands back on an address
        # whose triplet is old enough; verify reuse actually happened.
        mailru = next(r for r in rows if r.provider == "mail.ru")
        assert mailru.delivered
        spec = PROVIDER_BY_NAME["mail.ru"]
        used = [spec.pool_index(n) for n in range(1, mailru.attempts + 1)]
        assert len(used) > len(set(used))


class TestThresholdVariations:
    def test_small_threshold_everyone_delivers(self):
        for spec in PROVIDERS:
            row = run_provider(spec, threshold=300.0)
            assert row.delivered, spec.name

    def test_aol_fails_even_at_one_hour(self):
        # aol gives up after ~30 minutes; any threshold beyond that kills it.
        row = run_provider(PROVIDER_BY_NAME["aol.com"], threshold=3600.0)
        assert not row.delivered

    def test_single_ip_fast_retrier_beats_most_thresholds(self):
        row = run_provider(PROVIDER_BY_NAME["hotmail.com"], threshold=3600.0)
        assert row.delivered
        assert row.delivery_age >= 3600.0


class TestTable4Survey:
    def test_six_rows_in_order(self):
        rows = run_mta_survey()
        assert [r.mta for r in rows] == [
            "sendmail", "exim", "postfix", "qmail", "courier", "exchange",
        ]

    def test_queue_lifetimes(self):
        rows = {r.mta: r for r in run_mta_survey()}
        assert rows["sendmail"].max_queue_days == 5
        assert rows["exim"].max_queue_days == 4
        assert rows["postfix"].max_queue_days == 5
        assert rows["qmail"].max_queue_days == 7
        assert rows["courier"].max_queue_days == 7
        assert rows["exchange"].max_queue_days == 2

    def test_only_exchange_violates_rfc(self):
        rows = run_mta_survey()
        violators = [r.mta for r in rows if not r.rfc_compliant_lifetime]
        assert violators == ["exchange"]

    def test_paper_schedule_prefixes(self):
        rows = {r.mta: r for r in run_mta_survey()}
        assert rows["sendmail"].retransmission_minutes[:3] == [10, 20, 30]
        assert rows["exim"].retransmission_minutes[:2] == [15, 30]
        assert rows["postfix"].retransmission_minutes[:3] == [5, 10, 15]
        assert rows["qmail"].retransmission_minutes[0] == pytest.approx(
            6.67, abs=0.01
        )
        assert rows["courier"].retransmission_minutes[:3] == [5, 10, 15]
        assert rows["exchange"].retransmission_minutes[:2] == [15, 30]

    def test_survey_single_profile(self):
        row = survey_mta(PROFILES["postfix"])
        assert row.mta == "postfix"
        assert row.first_gaps_minutes(3) == [5.0, 5.0, 5.0]
