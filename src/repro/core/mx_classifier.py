"""Observed MX-behaviour classification (paper §IV.B).

Given a malware sample, run it against a domain where every exchanger
resolves but *refuses connections* and infer the sample's category from
which hosts it tried, in which order:

* only the highest-priority host → primary only;
* only the lowest-priority host → secondary only;
* every host, in priority order → RFC compliant;
* every host, out of order → all MX.

A dead-MX domain is the right observation probe because the RFC's MX walk
only manifests on connection failure — against an accepting primary even a
fully compliant client never touches the secondaries.  (The paper observed
the same traces through its nolisting experiments, where the primary
refuses connections by construction.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..botnet.behavior import MXBehavior
from ..botnet.campaign import SpamCampaign, make_recipient_list
from ..botnet.samples import Sample
from ..net.host import VirtualHost
from ..sim.rng import RandomStream
from .testbed import Defense, Testbed, TestbedConfig


@dataclass
class MXClassification:
    """Outcome of classifying one sample."""

    sample_label: str
    contacted: List[str]               # MX hostnames, in contact order
    inferred: Optional[MXBehavior]
    expected: MXBehavior

    @property
    def matches_expected(self) -> bool:
        return self.inferred is self.expected


def infer_behavior(
    contacted: List[str], ordered_mx: List[str]
) -> Optional[MXBehavior]:
    """Map a contact trace onto the taxonomy.

    ``ordered_mx`` is the domain's exchanger list in ascending preference.
    """
    if not contacted or not ordered_mx:
        return None
    distinct = list(dict.fromkeys(contacted))  # order-preserving dedup
    primary = ordered_mx[0]
    lowest = ordered_mx[-1]
    if distinct == [primary]:
        return MXBehavior.PRIMARY_ONLY
    if distinct == [lowest]:
        return MXBehavior.SECONDARY_ONLY
    if set(distinct) == set(ordered_mx):
        if distinct == list(ordered_mx):
            return MXBehavior.RFC_COMPLIANT
        return MXBehavior.ALL_MX
    # Partial coverage: a strict prefix of the priority order is compliant
    # behaviour that stopped early; anything else is a scrambled walk.
    if distinct == list(ordered_mx)[: len(distinct)]:
        return MXBehavior.RFC_COMPLIANT
    return MXBehavior.ALL_MX


def _setup_dead_mx_domain(testbed: Testbed, domain: str, count: int) -> List[str]:
    """A domain whose ``count`` exchangers all resolve but refuse port 25."""
    zone = testbed.zones.get_or_create(domain)
    hostnames: List[str] = []
    for index in range(count):
        hostname = f"mx{index}.{domain}"
        address = testbed.server_pool.allocate()
        zone.add_a(hostname, address)
        zone.add_mx((index + 1) * 10, hostname)
        testbed.internet.register(VirtualHost(hostname, [address]))
        hostnames.append(hostname)
    return hostnames


def classify_sample(
    sample: Sample,
    seed: int = 7,
    recipients: int = 1,
    observation_window: float = 1800.0,
) -> MXClassification:
    """Run one sample against a dead multi-MX domain and classify its walk.

    ``observation_window`` defaults to the paper's 30-minute sandbox run.
    """
    testbed = Testbed(
        TestbedConfig(defense=Defense.NONE, victim_domain="observe.example")
    )
    domain = "trace.observe.example"
    ordered_mx = _setup_dead_mx_domain(testbed, domain, count=3)

    rng = RandomStream(seed, "mx-classify")
    bot = sample.build_bot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        rng=rng,
    )
    campaign = SpamCampaign(
        sender="spammer@botnet.example",
        recipients=make_recipient_list(domain, recipients),
    )
    for job in campaign.single_recipient_jobs():
        bot.assign(job)
    testbed.run(horizon=observation_window)

    contacted = [
        attempt.target
        for attempt in bot.all_attempts()
        if attempt.target is not None
    ]
    inferred = infer_behavior(contacted, ordered_mx)
    return MXClassification(
        sample_label=sample.label,
        contacted=contacted,
        inferred=inferred,
        expected=sample.family.mx_behavior,
    )
