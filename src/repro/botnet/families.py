"""The four malware families of the study (paper Table I + §IV-V findings).

Each family is characterised by the two traits the paper measured:

================  ==================  ====================  ==========================
Family            MX behaviour        Retry behaviour       Consequence
================  ==================  ====================  ==========================
Cutwail           secondary-only      fire-and-forget       beats nolisting, loses to
                                                            greylisting
Kelihos           primary-only        empirical retrier     loses to nolisting, beats
                                                            greylisting
Darkmailer        RFC-compliant       fire-and-forget       beats nolisting, loses to
                                                            greylisting
Darkmailer v3     RFC-compliant       fire-and-forget       beats nolisting, loses to
                                                            greylisting
================  ==================  ====================  ==========================

Spam shares come from the Symantec 2014 report as cited in Table I; the
four families together account for 93.02 % of botnet spam, and with 76 % of
world spam botnet-originated, for 70.69 % of global spam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..dns.resolver import StubResolver
from ..net.address import IPv4Address
from ..net.network import VirtualInternet
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from .behavior import MXBehavior
from .bot import SpamBot
from .retry import BotRetryModel, FireAndForget, kelihos_retry_model

RetryFactory = Callable[[], BotRetryModel]


@dataclass(frozen=True)
class FamilyProfile:
    """Static description of one malware family."""

    name: str
    mx_behavior: MXBehavior
    retry_factory: RetryFactory
    botnet_spam_share: float      # fraction of 2014 botnet spam (Table I)
    sample_count: int             # binaries analysed in the paper (Table I)
    walks_mx_on_failure: bool = True

    @property
    def retries(self) -> bool:
        return not isinstance(self.retry_factory(), FireAndForget)

    @property
    def helo_name(self) -> str:
        """The family's HELO string — its SMTP dialect identity.

        Also the dialect component of the batch engine's session-playbook
        cache keys, so it must stay a pure function of the family.
        """
        return f"{self.name.lower()}-bot.invalid.example"

    def build_bot(
        self,
        internet: VirtualInternet,
        resolver: StubResolver,
        scheduler: EventScheduler,
        source_address: IPv4Address,
        rng: RandomStream,
    ) -> SpamBot:
        """Instantiate an infected machine running this family."""
        return SpamBot(
            internet=internet,
            resolver=resolver,
            scheduler=scheduler,
            source_address=source_address,
            mx_behavior=self.mx_behavior,
            retry_model=self.retry_factory(),
            rng=rng,
            helo_name=self.helo_name,
            walks_mx_on_failure=self.walks_mx_on_failure,
        )


CUTWAIL = FamilyProfile(
    name="Cutwail",
    mx_behavior=MXBehavior.SECONDARY_ONLY,
    retry_factory=FireAndForget,
    botnet_spam_share=0.4690,
    sample_count=3,
    # Single-shot: a refused connection to its chosen target ends the
    # attempt (it never had a second target anyway).
    walks_mx_on_failure=False,
)

KELIHOS = FamilyProfile(
    name="Kelihos",
    mx_behavior=MXBehavior.PRIMARY_ONLY,
    retry_factory=kelihos_retry_model,
    botnet_spam_share=0.3633,
    sample_count=6,
    walks_mx_on_failure=False,
)

DARKMAILER = FamilyProfile(
    name="Darkmailer",
    mx_behavior=MXBehavior.RFC_COMPLIANT,
    retry_factory=FireAndForget,
    botnet_spam_share=0.0721,
    sample_count=1,
    walks_mx_on_failure=True,
)

DARKMAILER_V3 = FamilyProfile(
    name="Darkmailer(v3)",
    mx_behavior=MXBehavior.RFC_COMPLIANT,
    retry_factory=FireAndForget,
    botnet_spam_share=0.0258,
    sample_count=1,
    walks_mx_on_failure=True,
)

#: Table I row order.
FAMILIES: Tuple[FamilyProfile, ...] = (
    CUTWAIL,
    KELIHOS,
    DARKMAILER,
    DARKMAILER_V3,
)

FAMILY_BY_NAME: Dict[str, FamilyProfile] = {f.name: f for f in FAMILIES}

#: Fraction of 2014 world spam sent from botnets (Symantec, via the paper).
BOTNET_FRACTION_OF_GLOBAL_SPAM = 0.76

#: Table I totals.
TOTAL_BOTNET_SPAM_SHARE = sum(f.botnet_spam_share for f in FAMILIES)
TOTAL_GLOBAL_SPAM_SHARE = 0.7069


def global_spam_share(family: FamilyProfile) -> float:
    """A family's share of *global* spam (botnet share x botnet fraction)."""
    return family.botnet_spam_share * BOTNET_FRACTION_OF_GLOBAL_SPAM
