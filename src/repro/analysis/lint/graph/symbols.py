"""Per-module symbol collection for the whole-program analyzer.

One :class:`ModuleSymbols` per parsed module records everything the
cross-module layer (:mod:`~repro.analysis.lint.graph.project`) needs to
resolve names across the project: top-level functions, classes with
their methods and base-class chains, module-level global bindings (with
mutability and in-module mutation tracking for SHM001), and every import
binding — including the lazy in-function imports this codebase uses to
break ``repro.core`` ↔ ``repro.runner`` cycles, which is exactly where a
naive top-level-only import scan would lose the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..framework import ModuleContext, dotted_name

#: Top-level directories holding project code *outside* the importable
#: ``repro`` package.  Their modules join the analysis (so rules can see
#: e.g. a benchmark building shard payloads) but carry no dotted module
#: name and cannot be the target of ``import repro...`` resolution.
OUT_OF_PACKAGE_PREFIXES = ("tests", "benchmarks", "scripts", "examples")

#: The importable package root all in-package module paths hang off.
ROOT_PACKAGE = "repro"

#: Constructor calls that produce a mutable container.
MUTABLE_CONTAINER_CALLS = frozenset(
    [
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
    ]
)

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    [
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    ]
)


def dotted_module_name(module_path: str) -> Optional[str]:
    """``"core/adoption.py"`` → ``"repro.core.adoption"``.

    Returns ``None`` for snippets and for files outside the package tree
    (``tests/...``, ``benchmarks/...``, ``scripts/...``), which are
    analyzed but not importable as ``repro.*``.
    """
    if not module_path.endswith(".py"):
        return None
    first = module_path.split("/", 1)[0]
    if first in OUT_OF_PACKAGE_PREFIXES or first.startswith("<"):
        return None
    parts = module_path[:-3].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([ROOT_PACKAGE, *parts]) if parts else ROOT_PACKAGE


@dataclass
class ImportBinding:
    """One local name bound by an ``import`` / ``from ... import``."""

    alias: str
    #: Dotted module the binding comes from (relative imports resolved).
    module: str
    #: Imported symbol name, or ``None`` when the module itself is bound.
    name: Optional[str]
    lineno: int


@dataclass
class GlobalBinding:
    """One module-level name binding (``NAME = ...`` / ``NAME: T = ...``)."""

    name: str
    lineno: int
    col: int
    value: Optional[ast.expr]
    #: Bound to a mutable container literal/constructor (SHM001 fodder).
    is_container: bool
    #: ``UPPER_CASE`` naming convention (leading underscores allowed).
    constant_named: bool
    #: Annotated ``Final`` — the author promised not to rebind it.
    is_final: bool = False
    #: Mutated somewhere in its own module (method call, subscript
    #: assignment, ``global`` rebind, augmented assignment).
    mutated: bool = False


@dataclass
class FunctionSymbol:
    """A top-level function or a class method."""

    module_path: str
    #: ``"run_adoption_experiment"`` or ``"SQLiteBackend.get"``.
    qualname: str
    name: str
    lineno: int
    col: int
    is_async: bool
    node: ast.AST = field(repr=False)
    class_name: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        """The call-graph node identity: ``(module_path, qualname)``."""
        return (self.module_path, self.qualname)


@dataclass
class ClassSymbol:
    """A top-level class with its methods and raw base-class chains."""

    module_path: str
    name: str
    lineno: int
    #: Base classes as written (``("TripletBackend",)``,
    #: ``("backends", "TripletBackend")``); resolved by the project.
    base_chains: List[Tuple[str, ...]]
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module_path, self.name)


@dataclass
class ModuleSymbols:
    """Everything one module contributes to the project symbol table."""

    context: ModuleContext = field(repr=False)
    path: str = ""
    dotted: Optional[str] = None
    is_tests: bool = False
    is_init: bool = False
    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)
    globals: Dict[str, GlobalBinding] = field(default_factory=dict)
    imports: Dict[str, ImportBinding] = field(default_factory=dict)
    #: ``from x import *`` targets, as dotted module names.
    star_imports: List[Tuple[str, int]] = field(default_factory=list)
    #: ``__all__`` when statically evaluable (a list/tuple of strings).
    explicit_all: Optional[List[str]] = None

    def exported_names(self) -> List[str]:
        """Names a ``from module import *`` would bind."""
        if self.explicit_all is not None:
            return list(self.explicit_all)
        public = []
        for name in (
            list(self.functions)
            + list(self.classes)
            + list(self.globals)
            + list(self.imports)
        ):
            if not name.startswith("_"):
                public.append(name)
        return public


def _is_mutable_container(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CONTAINER_CALLS
    return False


def _is_constant_named(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _annotation_is_final(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "Final":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "Final":
            return True
    return False


def _static_all(node: ast.expr) -> Optional[List[str]]:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return names


def _function_symbol(
    module_path: str,
    node: ast.AST,
    class_name: Optional[str] = None,
) -> FunctionSymbol:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionSymbol(
        module_path=module_path,
        qualname=qualname,
        name=node.name,
        lineno=node.lineno,
        col=node.col_offset + 1,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        node=node,
        class_name=class_name,
    )


def _resolve_relative(
    dotted: Optional[str], is_init: bool, level: int, module: Optional[str]
) -> Optional[str]:
    """Resolve a relative ``from``-import against this module's position."""
    if level == 0:
        return module
    if dotted is None:
        return None
    parts = dotted.split(".")
    # ``from . import x`` refers to the containing package: the module
    # itself for ``__init__.py``, the parent package otherwise; each
    # additional level strips one more package.
    drop = level if not is_init else level - 1
    if drop >= len(parts):
        return None
    base = parts[: len(parts) - drop]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def collect_module(ctx: ModuleContext) -> ModuleSymbols:
    """Build the symbol table for one parsed module."""
    dotted = dotted_module_name(ctx.module_path)
    is_init = ctx.module_path.rsplit("/", 1)[-1] == "__init__.py"
    symbols = ModuleSymbols(
        context=ctx,
        path=ctx.module_path,
        dotted=dotted,
        is_tests=ctx.is_tests,
        is_init=is_init,
    )

    assert isinstance(ctx.tree, ast.Module)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbol = _function_symbol(ctx.module_path, stmt)
            symbols.functions[symbol.name] = symbol
        elif isinstance(stmt, ast.ClassDef):
            base_chains = []
            for base in stmt.bases:
                chain = dotted_name(base)
                if chain is not None:
                    base_chains.append(chain)
            cls = ClassSymbol(
                module_path=ctx.module_path,
                name=stmt.name,
                lineno=stmt.lineno,
                base_chains=base_chains,
            )
            for child in stmt.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = _function_symbol(
                        ctx.module_path, child, class_name=stmt.name
                    )
                    cls.methods[method.name] = method
            symbols.classes[stmt.name] = cls
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            annotation = (
                stmt.annotation if isinstance(stmt, ast.AnnAssign) else None
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__" and stmt.value is not None:
                    symbols.explicit_all = _static_all(stmt.value)
                binding = GlobalBinding(
                    name=target.id,
                    lineno=stmt.lineno,
                    col=stmt.col_offset + 1,
                    value=stmt.value,
                    is_container=_is_mutable_container(stmt.value),
                    constant_named=_is_constant_named(target.id),
                    is_final=_annotation_is_final(annotation),
                )
                # First binding wins for location; later rebinds at module
                # level count as mutation of shared state.
                if target.id in symbols.globals:
                    symbols.globals[target.id].mutated = True
                else:
                    symbols.globals[target.id] = binding

    # Imports are collected module-wide: the codebase leans on lazy
    # in-function imports to break package cycles, and the call graph
    # must see through them.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    symbols.imports[alias.asname] = ImportBinding(
                        alias=alias.asname,
                        module=alias.name,
                        name=None,
                        lineno=node.lineno,
                    )
                else:
                    head = alias.name.split(".", 1)[0]
                    symbols.imports[head] = ImportBinding(
                        alias=head, module=head, name=None, lineno=node.lineno
                    )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(
                dotted, is_init, node.level, node.module
            )
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    symbols.star_imports.append((target, node.lineno))
                    continue
                bound = alias.asname or alias.name
                symbols.imports[bound] = ImportBinding(
                    alias=bound,
                    module=target,
                    name=alias.name,
                    lineno=node.lineno,
                )

    _mark_mutations(ctx.tree, symbols)
    return symbols


def _mark_mutations(tree: ast.AST, symbols: ModuleSymbols) -> None:
    """Flag module globals that are mutated anywhere in their module."""
    names = symbols.globals
    declared_global: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in names
            ):
                names[func.value.id].mutated = True
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                inner = target
                while isinstance(inner, (ast.Subscript, ast.Attribute)):
                    inner = inner.value
                if not isinstance(inner, ast.Name):
                    continue
                if inner is target:
                    # Plain rebinds are only mutation when routed through
                    # a ``global`` declaration (module-level rebinds were
                    # handled during collection).
                    if (
                        isinstance(node, ast.AugAssign)
                        or inner.id in declared_global
                    ) and inner.id in names:
                        names[inner.id].mutated = True
                elif inner.id in names:
                    names[inner.id].mutated = True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                inner = target
                while isinstance(inner, (ast.Subscript, ast.Attribute)):
                    inner = inner.value
                if isinstance(inner, ast.Name) and inner.id in names:
                    names[inner.id].mutated = True
