"""Tests for the greylisting-variant comparison experiment."""

import math

import pytest

from repro.core.variants import ALL_STRATEGIES, compare_variants
from repro.greylist.keying import KeyStrategy


@pytest.fixture(scope="module")
def results():
    return {r.strategy: r for r in compare_variants()}


class TestVariantComparison:
    def test_all_strategies_measured(self, results):
        assert set(results) == set(ALL_STRATEGIES)

    def test_fine_keys_resist_sender_rotation(self, results):
        assert results[KeyStrategy.FULL_TRIPLET].rotation_resistant
        assert results[KeyStrategy.CLIENT_NET_TRIPLET].rotation_resistant

    def test_coarse_keys_fall_to_rotation(self, results):
        sender_domain = results[KeyStrategy.SENDER_DOMAIN]
        client_only = results[KeyStrategy.CLIENT_ONLY]
        assert sender_domain.rotating_spam_delivered == 20
        assert client_only.rotating_spam_delivered == 20

    def test_coarser_keys_need_fewer_attempts(self, results):
        # Once whitelisted, the rotation flows: fewer total attempts.
        assert (
            results[KeyStrategy.CLIENT_ONLY].rotating_spam_attempts
            < results[KeyStrategy.SENDER_DOMAIN].rotating_spam_attempts
            < results[KeyStrategy.FULL_TRIPLET].rotating_spam_attempts
        )

    def test_db_load_shrinks_with_coarseness(self, results):
        assert (
            results[KeyStrategy.CLIENT_ONLY].db_entries_under_rotation
            <= results[KeyStrategy.SENDER_DOMAIN].db_entries_under_rotation
            <= results[KeyStrategy.FULL_TRIPLET].db_entries_under_rotation
        )
        assert results[KeyStrategy.CLIENT_ONLY].db_entries_under_rotation == 1

    def test_net_keying_tolerates_farms(self, results):
        # Only /24 keying spares the rotating benign farm the extra rounds.
        net = results[KeyStrategy.CLIENT_NET_TRIPLET]
        full = results[KeyStrategy.FULL_TRIPLET]
        assert net.farm_delivery_delay < full.farm_delivery_delay
        assert not math.isinf(full.farm_delivery_delay)

    def test_no_free_lunch(self, results):
        # No strategy is both rotation-resistant and farm-fast AND db-lean:
        # the trade-off is real.
        for result in results.values():
            wins = (
                result.rotation_resistant,
                result.farm_delivery_delay < 400.0,
                result.db_entries_under_rotation <= 7,
            )
            assert not all(wins), result.strategy
