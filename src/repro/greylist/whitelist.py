"""Client whitelists for greylisting.

Postgrey ships a default whitelist of big senders (notably the large webmail
providers) precisely because their multi-IP retry farms interact badly with
triplet matching — the paper removes that default whitelist to measure the
raw provider behaviour in Table III, and §VI concludes whitelisting them is
essential.  We model whitelisting by exact IP, CIDR block, sender domain and
HELO-name suffix.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..net.address import IPv4Address, IPv4Network
from ..smtp.message import domain_of


class Whitelist:
    """A composite allow-list consulted before greylisting applies."""

    def __init__(self) -> None:
        self._addresses: Set[IPv4Address] = set()
        self._networks: List[IPv4Network] = []
        self._sender_domains: Set[str] = set()
        self._helo_suffixes: List[str] = []
        #: Mutation counter: bumped by every populating call so cached
        #: verdict layers (the serving daemon's ``CachedWhitelist``) can
        #: key on it and drop stale entries after a live update.
        self.generation = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_address(self, address: IPv4Address) -> None:
        self._addresses.add(address)
        self.generation += 1

    def add_network(self, network: IPv4Network) -> None:
        # Deduplicated but order-preserving: matching scans this list, so
        # repeated adds (or merges) must not inflate the per-lookup cost.
        if network not in self._networks:
            self._networks.append(network)
        self.generation += 1

    def add_cidr(self, cidr: str) -> None:
        self.add_network(IPv4Network.parse(cidr))

    def add_sender_domain(self, domain: str) -> None:
        self._sender_domains.add(domain.strip().lower().rstrip("."))
        self.generation += 1

    def add_helo_suffix(self, suffix: str) -> None:
        suffix = suffix.strip().lower().rstrip(".")
        if suffix not in self._helo_suffixes:
            self._helo_suffixes.append(suffix)
        self.generation += 1

    def update(self, other: "Whitelist") -> None:
        """Merge another whitelist into this one.

        Idempotent: merging the same whitelist twice (or two lists with
        overlapping entries) leaves one copy of each network and HELO
        suffix, so repeated merges don't linearly inflate match cost.
        (The generation counter still advances on a no-op merge — cached
        verdicts are re-derived, never wrong.)
        """
        self._addresses |= other._addresses
        for network in other._networks:
            self.add_network(network)
        self._sender_domains |= other._sender_domains
        for suffix in other._helo_suffixes:
            self.add_helo_suffix(suffix)
        self.generation += 1

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches_client(self, client: IPv4Address) -> bool:
        if client in self._addresses:
            return True
        return any(client in network for network in self._networks)

    def matches_sender(self, sender: str) -> bool:
        # Stored domains are lowercased on add; the probe must be too, or
        # ``User@Gmail.com`` misses a ``gmail.com`` entry (domains are
        # case-insensitive per RFC 1035, and senders arrive raw here —
        # before triplet canonicalization).
        return (
            domain_of(sender).lower().rstrip(".") in self._sender_domains
        )

    def matches_helo(self, helo_name: Optional[str]) -> bool:
        if not helo_name:
            return False
        name = helo_name.strip().lower().rstrip(".")
        return any(
            name == suffix or name.endswith("." + suffix)
            for suffix in self._helo_suffixes
        )

    def matches(
        self,
        client: IPv4Address,
        sender: str,
        helo_name: Optional[str] = None,
    ) -> bool:
        return (
            self.matches_client(client)
            or self.matches_sender(sender)
            or self.matches_helo(helo_name)
        )

    @property
    def is_empty(self) -> bool:
        return not (
            self._addresses
            or self._networks
            or self._sender_domains
            or self._helo_suffixes
        )

    def __repr__(self) -> str:
        return (
            f"Whitelist(addresses={len(self._addresses)}, "
            f"networks={len(self._networks)}, "
            f"domains={len(self._sender_domains)})"
        )


# The big providers Postgrey's stock whitelist covers; used by the Table III
# experiment (removed) and the deployment simulation (installed).
DEFAULT_WHITELISTED_DOMAINS = (
    "gmail.com",
    "yahoo.co.uk",
    "hotmail.com",
    "qq.com",
    "mail.ru",
    "yandex.com",
    "mail.com",
    "gmx.com",
    "aol.com",
    "india.com",
)


def default_provider_whitelist(domains: Iterable[str] = DEFAULT_WHITELISTED_DOMAINS) -> Whitelist:
    """Build the Postgrey-style stock whitelist of big webmail senders."""
    whitelist = Whitelist()
    for domain in domains:
        whitelist.add_sender_domain(domain)
        whitelist.add_helo_suffix(domain)
    return whitelist
