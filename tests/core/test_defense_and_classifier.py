"""Tests for the Table II defence matrix and the MX-behaviour classifier."""

import pytest

from repro.botnet.behavior import MXBehavior
from repro.botnet.families import FAMILIES
from repro.botnet.samples import collect_samples, samples_of
from repro.core.defense_matrix import build_defense_matrix, run_sample
from repro.core.mx_classifier import classify_sample, infer_behavior
from repro.core.testbed import Defense


@pytest.fixture(scope="module")
def matrix():
    # Smaller workload than the bench, same verdicts.
    return build_defense_matrix(recipients=2, horizon=200000.0)


class TestDefenseMatrix:
    def test_all_samples_run_under_both_defenses(self, matrix):
        assert len(matrix.runs) == 22  # 11 samples x 2 defences

    def test_greylisting_verdicts_match_paper(self, matrix):
        verdicts = matrix.family_verdicts(Defense.GREYLISTING)
        assert verdicts == {
            "Cutwail": True,
            "Kelihos": False,
            "Darkmailer": True,
            "Darkmailer(v3)": True,
        }

    def test_nolisting_verdicts_match_paper(self, matrix):
        verdicts = matrix.family_verdicts(Defense.NOLISTING)
        assert verdicts == {
            "Cutwail": False,
            "Kelihos": True,
            "Darkmailer": False,
            "Darkmailer(v3)": False,
        }

    def test_intra_family_consistency(self, matrix):
        # "all malware samples belonging to the same family shared the same
        # behavior" — family_verdicts raises if they disagree.
        matrix.family_verdicts(Defense.GREYLISTING)
        matrix.family_verdicts(Defense.NOLISTING)

    def test_verdict_lookup(self, matrix):
        run = matrix.verdict("Kelihos/sample1", Defense.NOLISTING)
        assert run is not None
        assert run.effective
        assert run.spam_delivered == 0
        assert matrix.verdict("Kelihos/sample1", Defense.GREYLISTING).spam_delivered > 0

    def test_unknown_sample_returns_none(self, matrix):
        assert matrix.verdict("Ghost/sample1", Defense.NOLISTING) is None

    def test_blocked_bots_still_attempted(self, matrix):
        for run in matrix.runs:
            assert run.total_attempts > 0


class TestRunSample:
    def test_single_run_kelihos_greylisting(self):
        sample = samples_of("Kelihos")[0]
        run = run_sample(sample, Defense.GREYLISTING, recipients=2)
        assert not run.blocked
        assert run.family == "Kelihos"

    def test_single_run_cutwail_nolisting(self):
        sample = samples_of("Cutwail")[0]
        run = run_sample(sample, Defense.NOLISTING, recipients=2)
        assert not run.blocked

    def test_both_defenses_stop_everything(self):
        # §VI: "using both techniques together is a very effective way to
        # protect against the majority of spam."
        for family in FAMILIES:
            sample = samples_of(family.name)[0]
            run = run_sample(sample, Defense.BOTH, recipients=2)
            assert run.blocked, family.name


class TestInferBehavior:
    MX = ["mx0.d", "mx1.d", "mx2.d"]

    def test_primary_only(self):
        assert infer_behavior(["mx0.d", "mx0.d"], self.MX) is MXBehavior.PRIMARY_ONLY

    def test_secondary_only(self):
        assert infer_behavior(["mx2.d"], self.MX) is MXBehavior.SECONDARY_ONLY

    def test_rfc_compliant_full_walk(self):
        assert (
            infer_behavior(["mx0.d", "mx1.d", "mx2.d"], self.MX)
            is MXBehavior.RFC_COMPLIANT
        )

    def test_rfc_compliant_prefix(self):
        assert infer_behavior(["mx0.d", "mx1.d"], self.MX) is MXBehavior.RFC_COMPLIANT

    def test_all_mx_scrambled(self):
        assert (
            infer_behavior(["mx2.d", "mx0.d", "mx1.d"], self.MX)
            is MXBehavior.ALL_MX
        )

    def test_empty_trace(self):
        assert infer_behavior([], self.MX) is None


class TestClassifySamples:
    def test_every_sample_classified_as_its_family(self):
        for sample in collect_samples():
            result = classify_sample(sample)
            assert result.inferred is result.expected, sample.label
            assert result.matches_expected

    def test_kelihos_trace_touches_only_primary(self):
        result = classify_sample(samples_of("Kelihos")[0])
        assert set(result.contacted) == {"mx0.trace.observe.example"}

    def test_cutwail_trace_touches_only_lowest(self):
        result = classify_sample(samples_of("Cutwail")[0])
        assert set(result.contacted) == {"mx2.trace.observe.example"}

    def test_darkmailer_walks_in_order(self):
        result = classify_sample(samples_of("Darkmailer")[0])
        assert result.contacted[:3] == [
            "mx0.trace.observe.example",
            "mx1.trace.observe.example",
            "mx2.trace.observe.example",
        ]
