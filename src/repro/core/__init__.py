"""The measurement harness: the paper's experiments as runnable code."""

from .adaptation import (
    BEHAVIOR_CLASSES,
    ClassVerdicts,
    EcosystemPoint,
    ecosystem_weights,
    measure_class_verdicts,
    obsolescence_level,
    sweep_adaptation,
)
from .adoption import (
    AdoptionExperimentResult,
    run_adoption_experiment,
    single_scan_false_positives,
)
from .cost_attack import (
    CostAttackResult,
    compare_sweeping,
    run_cost_attack,
)
from .coverage import (
    PAPER_COMBINED_GLOBAL_SHARE,
    CoverageReport,
    build_coverage_report,
)
from .defense_matrix import (
    DefenseMatrix,
    SampleRun,
    build_defense_matrix,
    run_sample,
)
from .deployment import DeploymentExperimentResult, run_deployment_experiment
from .dialect_survey import (
    DEFAULT_TRAFFIC_MIX,
    DialectSurveyResult,
    run_dialect_survey,
)
from .figure1 import Figure1Trace, figure1_text, run_figure1
from .filter_comparison import (
    FilterComparisonResult,
    compare_filtering,
    run_filter_comparison,
)
from .greylist_experiment import (
    PAPER_THRESHOLDS,
    AttemptPoint,
    GreylistExperimentResult,
    run_greylist_experiment,
    run_kelihos_threshold_sweep,
)
from .internet_scale import (
    InternetScaleResult,
    run_internet_scale,
    sweep_deployment_rates,
)
from .longterm import LongTermResult, run_longterm_analysis
from .mta_survey import MTARow, run_mta_survey, survey_mta
from .multimx_greylist import (
    MultiMXResult,
    compare_store_sharing,
    run_multimx_experiment,
)
from .mx_classifier import MXClassification, classify_sample, infer_behavior
from .nolisting_impact import (
    NolistingImpactResult,
    SenderClassOutcome,
    run_nolisting_impact,
)
from .reports import (
    figure2_text,
    figure3_text,
    figure4_text,
    figure5_text,
    table1_text,
    table2_text,
    table3_text,
    table4_text,
)
from .scorecard import ScorecardRow, build_scorecard, scorecard_text
from .sensitivity import (
    adoption_sensitivity,
    deployment_sensitivity,
    verdicts_seed_invariant,
)
from .synergy import (
    SynergyResult,
    run_synergy_comparison,
    run_synergy_experiment,
    sweep_greylist_delay,
    sweep_listing_speed,
)
from .testbed import Defense, ExemptingPolicy, Testbed, TestbedConfig
from .variants import ALL_STRATEGIES, VariantResult, compare_variants
from .webmail_experiment import (
    SIX_HOURS,
    WebmailRow,
    run_provider,
    run_webmail_experiment,
)

__all__ = [
    "AdoptionExperimentResult",
    "AttemptPoint",
    "BEHAVIOR_CLASSES",
    "ClassVerdicts",
    "CostAttackResult",
    "DEFAULT_TRAFFIC_MIX",
    "MultiMXResult",
    "NolistingImpactResult",
    "SenderClassOutcome",
    "compare_store_sharing",
    "compare_sweeping",
    "run_cost_attack",
    "run_multimx_experiment",
    "run_nolisting_impact",
    "DialectSurveyResult",
    "EcosystemPoint",
    "Figure1Trace",
    "FilterComparisonResult",
    "InternetScaleResult",
    "LongTermResult",
    "figure1_text",
    "run_internet_scale",
    "sweep_deployment_rates",
    "run_figure1",
    "compare_filtering",
    "run_filter_comparison",
    "ALL_STRATEGIES",
    "SynergyResult",
    "VariantResult",
    "adoption_sensitivity",
    "compare_variants",
    "deployment_sensitivity",
    "ecosystem_weights",
    "verdicts_seed_invariant",
    "measure_class_verdicts",
    "obsolescence_level",
    "run_dialect_survey",
    "run_longterm_analysis",
    "run_synergy_comparison",
    "run_synergy_experiment",
    "sweep_adaptation",
    "sweep_greylist_delay",
    "sweep_listing_speed",
    "CoverageReport",
    "Defense",
    "DefenseMatrix",
    "DeploymentExperimentResult",
    "ExemptingPolicy",
    "GreylistExperimentResult",
    "MTARow",
    "MXClassification",
    "PAPER_COMBINED_GLOBAL_SHARE",
    "PAPER_THRESHOLDS",
    "SIX_HOURS",
    "SampleRun",
    "ScorecardRow",
    "Testbed",
    "build_scorecard",
    "scorecard_text",
    "TestbedConfig",
    "WebmailRow",
    "build_coverage_report",
    "build_defense_matrix",
    "classify_sample",
    "figure2_text",
    "figure3_text",
    "figure4_text",
    "figure5_text",
    "infer_behavior",
    "run_adoption_experiment",
    "run_deployment_experiment",
    "run_greylist_experiment",
    "run_kelihos_threshold_sweep",
    "run_mta_survey",
    "run_provider",
    "run_sample",
    "run_webmail_experiment",
    "single_scan_false_positives",
    "survey_mta",
    "table1_text",
    "table2_text",
    "table3_text",
    "table4_text",
]
