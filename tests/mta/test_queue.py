"""Unit tests for the outbound queue manager driving retries."""

from repro.dns.nolisting import setup_single_mx
from repro.dns.resolver import StubResolver
from repro.dns.zone import ZoneStore
from repro.greylist.policy import GreylistPolicy
from repro.mta.queue import QueueEntryState, QueueManager
from repro.mta.schedule import FixedIntervalSchedule, NoRetrySchedule
from repro.net.address import IPv4Address, pool_for
from repro.net.network import VirtualInternet
from repro.sim.clock import Clock
from repro.sim.events import EventScheduler
from repro.smtp.client import SMTPClient
from repro.smtp.message import Message
from repro.smtp.server import SMTPServer

SOURCE = IPv4Address.parse("203.0.113.10")


def build_world(policy=None, valid_recipients=None):
    scheduler = EventScheduler(Clock())
    internet = VirtualInternet()
    zones = ZoneStore()
    pool = pool_for("192.0.2.0/24")
    server = SMTPServer(
        hostname="smtp.foo.net",
        clock=scheduler.clock,
        policy=policy,
        valid_recipients=valid_recipients,
    )
    setup_single_mx(internet, zones, pool, "foo.net", server.session_factory)
    client = SMTPClient(
        internet=internet,
        resolver=StubResolver(zones, clock=scheduler.clock),
        source_address=SOURCE,
    )
    return scheduler, server, client


def make_message(recipients=("user@foo.net",)):
    return Message(sender="alice@sender.example", recipients=list(recipients))


class TestImmediateDelivery:
    def test_delivers_on_first_attempt(self):
        scheduler, server, client = build_world()
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(600))
        entries = queue.submit(make_message())
        scheduler.run()
        assert entries[0].state is QueueEntryState.DELIVERED
        assert entries[0].attempt_count == 1
        assert entries[0].delivery_delay == 0.0
        assert server.stats.messages_accepted == 1

    def test_one_entry_per_recipient(self):
        scheduler, _, client = build_world()
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(600))
        entries = queue.submit(
            make_message(["a@foo.net", "b@foo.net", "c@foo.net"])
        )
        scheduler.run()
        assert len(entries) == 3
        assert all(e.state is QueueEntryState.DELIVERED for e in entries)


class TestRetryOnDeferral:
    def test_retries_through_greylisting(self):
        scheduler, server, client = build_world()
        greylist = GreylistPolicy(clock=scheduler.clock, delay=300)
        server.policy = greylist
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(400))
        entries = queue.submit(make_message())
        scheduler.run()
        entry = entries[0]
        assert entry.state is QueueEntryState.DELIVERED
        assert entry.attempt_count == 2
        assert entry.delivery_delay == 400.0
        assert entry.attempt_delays() == [0.0, 400.0]

    def test_retry_below_threshold_takes_extra_round(self):
        scheduler, server, client = build_world()
        server.policy = GreylistPolicy(clock=scheduler.clock, delay=900)
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(400))
        entries = queue.submit(make_message())
        scheduler.run()
        entry = entries[0]
        assert entry.state is QueueEntryState.DELIVERED
        # Attempts at 0, 400 (early), 800 (early), 1200 (passes).
        assert entry.attempt_count == 4
        assert entry.delivery_delay == 1200.0

    def test_no_retry_schedule_abandons(self):
        scheduler, server, client = build_world()
        server.policy = GreylistPolicy(clock=scheduler.clock, delay=300)
        queue = QueueManager(scheduler, client, NoRetrySchedule())
        entries = queue.submit(make_message())
        scheduler.run()
        assert entries[0].state is QueueEntryState.ABANDONED
        assert server.stats.messages_accepted == 0

    def test_queue_lifetime_expiry(self):
        scheduler, server, client = build_world()
        server.policy = GreylistPolicy(clock=scheduler.clock, delay=10 ** 9)
        schedule = FixedIntervalSchedule(interval=600, max_queue_time=1800)
        queue = QueueManager(scheduler, client, schedule)
        entries = queue.submit(make_message())
        scheduler.run()
        entry = entries[0]
        assert entry.state is QueueEntryState.EXPIRED
        assert entry.attempt_count == 4  # 0, 600, 1200, 1800


class TestBounce:
    def test_permanent_rejection_bounces_immediately(self):
        scheduler, _, client = build_world(valid_recipients=set())
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(600))
        entries = queue.submit(make_message())
        scheduler.run()
        assert entries[0].state is QueueEntryState.BOUNCED
        assert entries[0].attempt_count == 1


class TestCompletionHook:
    def test_on_complete_fires_for_each_entry(self):
        finished = []
        scheduler, _, client = build_world()
        queue = QueueManager(
            scheduler,
            client,
            FixedIntervalSchedule(600),
            on_complete=lambda entry: finished.append(entry.recipient),
        )
        queue.submit(make_message(["a@foo.net", "b@foo.net"]))
        scheduler.run()
        assert sorted(finished) == ["a@foo.net", "b@foo.net"]

    def test_introspection_properties(self):
        scheduler, _, client = build_world()
        queue = QueueManager(scheduler, client, FixedIntervalSchedule(600))
        queue.submit(make_message())
        assert len(queue.pending) == 1
        scheduler.run()
        assert len(queue.delivered) == 1
        assert queue.pending == []
