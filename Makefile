# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint lint-baseline graph-report bench bench-smoke bench-json \
	profile scorecard examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Whole-program determinism/invariant analyzer always runs (stdlib-only):
# per-file checkers plus the call-graph phase, over the package AND the
# test/bench/script trees, ratcheted against .repro-lint-baseline.json.
# ruff and mypy run when installed (CI installs them; the pinned local
# env may not have them).
LINT_PATHS := src/repro tests benchmarks scripts
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS)
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; \
		then ruff check src tests benchmarks examples scripts; \
		else echo "ruff not installed; skipping"; fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; \
		then $(PYTHON) -m mypy src/repro scripts/check_bench_regression.py; \
		else echo "mypy not installed; skipping"; fi

# Refresh the grandfathered-finding baseline (only when a finding is
# consciously accepted; the ratchet otherwise only goes down).
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) --write-baseline

# Whole-program artefacts: call-graph dump and API-surface/dead-symbol
# report (same JSON CI uploads).
graph-report:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--json --graph-json lint-callgraph.json --api-report lint-api.json \
		> lint-findings.json || true
	@echo "wrote lint-findings.json lint-callgraph.json lint-api.json"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The CI smoke set: substrate/runner/batch/columnar/store microbenches,
# gated against BENCH_0.json by scripts/check_bench_regression.py.
SMOKE_BENCHES := benchmarks/test_perf_substrates.py benchmarks/test_perf_runner.py \
	benchmarks/test_perf_batch.py benchmarks/test_perf_columnar.py \
	benchmarks/test_perf_store.py benchmarks/test_perf_serve.py
bench-smoke:
	$(PYTHON) -m pytest $(SMOKE_BENCHES) --benchmark-only --benchmark-disable-gc \
		--benchmark-json=bench-smoke.json
	$(PYTHON) scripts/check_bench_regression.py BENCH_0.json bench-smoke.json

# Benches with the reproduced tables/figures printed.
bench-show:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Machine-readable benchmark snapshot (for tracking perf across commits).
BENCH_DATE := $(shell date +%Y%m%d)
bench-json:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_$(BENCH_DATE).json

# Profile any CLI command under cProfile (report on stderr, artefact on
# stdout).  Override PROFILE_CMD to profile a different experiment, e.g.
#   make profile PROFILE_CMD="internet-scale --domains 50000"
PROFILE_CMD ?= adoption --domains 2000
profile:
	PYTHONPATH=src $(PYTHON) -m repro --profile $(PROFILE_CMD)

scorecard:
	$(PYTHON) -m repro scorecard

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: test bench scorecard

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
