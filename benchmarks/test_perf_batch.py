"""Microbenchmarks of the equivalence-class batch engines.

These pin the throughput of the batched paths themselves (the object
engines are covered by the experiment benches); the CI regression gate
compares them against the committed ``BENCH_0.json`` baseline.
"""

from repro.core.adoption import run_adoption_experiment
from repro.core.internet_scale import run_internet_scale
from repro.core.synergy import run_synergy_experiment
from repro.sim.batch import SessionOutcomeCache


def test_perf_batch_adoption(benchmark):
    """Batched adoption scan: classify 2,000 domains without zones/probes."""

    def run():
        result = run_adoption_experiment(
            num_domains=2000, seed=7, engine="batch"
        )
        return result.summary.total_domains

    assert benchmark(run) == 2000


def test_perf_batch_internet_scale(benchmark):
    """Batched spam wave over a 50,000-domain internet."""

    def run():
        result = run_internet_scale(
            num_domains=50_000,
            greylisting_rate=0.5,
            nolisting_rate=0.1,
            messages=400,
            seed=61,
            engine="batch",
        )
        return result.spam_sent

    assert benchmark(run) == 400


def test_perf_batch_synergy(benchmark):
    """Batched synergy runs with a shared session-playbook cache."""
    cache = SessionOutcomeCache()

    def run():
        delivered = 0
        for configuration in ("greylist", "dnsbl", "both"):
            result = run_synergy_experiment(
                configuration,
                num_messages=100,
                seed=31,
                engine="batch",
                session_cache=cache,
            )
            delivered += result.num_messages
        return delivered

    assert benchmark(run) == 300
