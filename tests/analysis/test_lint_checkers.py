"""Positive and negative snippets for every determinism-linter rule."""

import textwrap

from repro.analysis.lint import lint_source


def lint(source, module_path="core/example.py", **kwargs):
    return lint_source(textwrap.dedent(source), module_path, **kwargs)


def rules_at(result):
    """``[(rule, line), ...]`` for compact assertions."""
    return [(f.rule, f.line) for f in result.findings]


class TestRNG001:
    def test_import_random_flagged(self):
        result = lint(
            """\
            import random

            def pick():
                return random.choice([1, 2, 3])
            """
        )
        assert ("RNG001", 1) in rules_at(result)
        assert ("RNG001", 4) in rules_at(result)

    def test_from_random_import_flagged(self):
        result = lint("from random import choice\n")
        assert rules_at(result) == [("RNG001", 1)]

    def test_random_attribute_chain_flagged(self):
        result = lint("value = random.Random(7).random()\n")
        assert ("RNG001", 1) in rules_at(result)

    def test_rng_module_itself_exempt(self):
        result = lint("import random\n", module_path="sim/rng.py")
        assert result.findings == []

    def test_tests_exempt(self):
        result = lint("import random\n", is_tests=True)
        assert result.findings == []

    def test_split_stream_clean(self):
        result = lint(
            """\
            def pick(rng):
                return rng.split("pick").choice([1, 2, 3])
            """
        )
        assert result.findings == []


class TestSEED001:
    def test_literal_positional_seed_flagged(self):
        result = lint("stream = RandomStream(42, \"bot\")\n")
        assert rules_at(result) == [("SEED001", 1)]

    def test_literal_keyword_seed_flagged(self):
        result = lint("stream = RandomStream(seed=0)\n")
        assert rules_at(result) == [("SEED001", 1)]

    def test_threaded_seed_clean(self):
        result = lint(
            """\
            def build(seed):
                return RandomStream(seed, "experiment")
            """
        )
        assert result.findings == []

    def test_tests_exempt(self):
        result = lint("stream = RandomStream(0)\n", is_tests=True)
        assert result.findings == []


class TestCLK001:
    def test_time_time_flagged(self):
        result = lint(
            """\
            import time

            def stamp():
                return time.time()
            """
        )
        assert rules_at(result) == [("CLK001", 4)]

    def test_datetime_now_flagged(self):
        result = lint(
            """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert rules_at(result) == [("CLK001", 4)]

    def test_cli_exempt(self):
        result = lint(
            """\
            import time

            def stamp():
                return time.time()
            """,
            module_path="cli.py",
        )
        assert result.findings == []

    def test_virtual_clock_clean(self):
        result = lint(
            """\
            def stamp(clock):
                return clock.now
            """
        )
        assert result.findings == []


class TestORD001:
    def test_loop_over_set_flagged(self):
        result = lint(
            """\
            def walk(items):
                pending = set(items)
                for item in pending:
                    print(item)
            """
        )
        assert rules_at(result) == [("ORD001", 3)]

    def test_list_of_set_flagged(self):
        result = lint(
            """\
            def snapshot(items):
                seen = {x for x in items}
                return list(seen)
            """
        )
        assert rules_at(result) == [("ORD001", 3)]

    def test_sampling_from_dict_view_flagged(self):
        result = lint(
            """\
            def pick(rng, table):
                return rng.choice(table.keys())
            """
        )
        assert rules_at(result) == [("ORD001", 2)]

    def test_comprehension_over_set_flagged(self):
        result = lint(
            """\
            def labels(hosts):
                alive = set(hosts)
                return [h.name for h in alive]
            """
        )
        assert rules_at(result) == [("ORD001", 3)]

    def test_sorted_set_clean(self):
        result = lint(
            """\
            def walk(items):
                pending = set(items)
                for item in sorted(pending):
                    print(item)
            """
        )
        assert result.findings == []

    def test_reassigned_name_not_tracked(self):
        result = lint(
            """\
            def walk(items):
                pending = set(items)
                pending = sorted(pending)
                for item in pending:
                    print(item)
            """
        )
        assert result.findings == []


class TestFLT001:
    def test_sum_over_set_flagged(self):
        result = lint(
            """\
            def total(values):
                bag = set(values)
                return sum(bag)
            """
        )
        assert rules_at(result) == [("FLT001", 3)]

    def test_sum_generator_over_set_flagged(self):
        result = lint(
            """\
            def total(rows):
                keys = set(rows)
                return sum(r.weight for r in keys)
            """
        )
        # The generator over the set is also an unordered iteration.
        assert ("FLT001", 3) in rules_at(result)

    def test_sum_sorted_clean(self):
        result = lint(
            """\
            def total(values):
                bag = set(values)
                return sum(sorted(bag))
            """
        )
        assert result.findings == []


class TestDEF001:
    def test_list_literal_default_flagged(self):
        result = lint(
            """\
            def collect(item, into=[]):
                into.append(item)
                return into
            """
        )
        assert rules_at(result) == [("DEF001", 1)]

    def test_dict_call_default_flagged(self):
        result = lint("def build(options=dict()):\n    return options\n")
        assert rules_at(result) == [("DEF001", 1)]

    def test_kwonly_default_flagged(self):
        result = lint("def build(*, options={}):\n    return options\n")
        assert rules_at(result) == [("DEF001", 1)]

    def test_checked_even_in_tests(self):
        result = lint("def helper(acc=[]):\n    return acc\n", is_tests=True)
        assert rules_at(result) == [("DEF001", 1)]

    def test_none_default_clean(self):
        result = lint(
            """\
            def collect(item, into=None):
                into = [] if into is None else into
                into.append(item)
                return into
            """
        )
        assert result.findings == []


class TestEXC001:
    def test_bare_except_flagged(self):
        result = lint(
            """\
            def deliver(send):
                try:
                    send()
                except:
                    pass
            """
        )
        assert rules_at(result) == [("EXC001", 4)]

    def test_broad_except_swallow_flagged(self):
        result = lint(
            """\
            def deliver(send):
                try:
                    send()
                except Exception:
                    pass
            """
        )
        assert rules_at(result) == [("EXC001", 4)]

    def test_reraise_clean(self):
        result = lint(
            """\
            def deliver(send):
                try:
                    send()
                except Exception:
                    raise
            """
        )
        assert result.findings == []

    def test_counter_increment_clean(self):
        result = lint(
            """\
            def deliver(self, send):
                try:
                    send()
                except Exception:
                    self.errors += 1
            """
        )
        assert result.findings == []

    def test_logging_clean(self):
        result = lint(
            """\
            def deliver(send, logger):
                try:
                    send()
                except Exception as error:
                    logger.warning("delivery failed: %r", error)
            """
        )
        assert result.findings == []

    def test_narrow_except_clean(self):
        result = lint(
            """\
            def deliver(send):
                try:
                    send()
                except ValueError:
                    pass
            """
        )
        assert result.findings == []


class TestSLT001:
    def test_hot_dataclass_without_slots_flagged(self):
        result = lint(
            """\
            from dataclasses import dataclass

            @dataclass
            class Packet:
                src: int
                dst: int
            """,
            module_path="net/packet.py",
        )
        assert rules_at(result) == [("SLT001", 4)]

    def test_slots_true_clean(self):
        result = lint(
            """\
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Packet:
                src: int
                dst: int
            """,
            module_path="net/packet.py",
        )
        assert result.findings == []

    def test_manual_dunder_slots_clean(self):
        result = lint(
            """\
            from dataclasses import dataclass

            @dataclass
            class Packet:
                __slots__ = ("src",)
                src: int
            """,
            module_path="sim/things.py",
        )
        assert result.findings == []

    def test_cold_module_exempt(self):
        result = lint(
            """\
            from dataclasses import dataclass

            @dataclass
            class Row:
                value: float
            """,
            module_path="core/reports.py",
        )
        assert result.findings == []

    def test_smtp_wire_is_hot(self):
        result = lint(
            """\
            from dataclasses import dataclass

            @dataclass
            class Command:
                verb: str
            """,
            module_path="smtp/wire.py",
        )
        assert rules_at(result) == [("SLT001", 4)]
