"""Throughput and latency of the live policy daemon under bot load.

The daemon runs as a real subprocess (``python -m repro serve``) — its
own event loop, its own core budget, SIGTERM'd at the end like the CI
smoke job does — while this process replays tiled bot-campaign traffic
against it with :func:`repro.serve.loadgen.run_load`:

* **Memory backend** at 100 / 1,000 / 10,000 concurrent connections —
  the scaling curve, with a hard floor of 20,000 decisions/sec at the
  10k point (the tentpole acceptance number; measured headroom on the
  1-core CI box is ~30k).
* **SQLite (WAL) and journal backends** at 1,000 connections — the
  durable-serving numbers behind docs/PERFORMANCE.md's serving section.
* **Prefork sweep** (shm backend, 1/2/4/8 workers) at 1,000
  connections — the multi-core scaling table in docs/PERFORMANCE.md.
  On a box with >= 4 cores the 4-worker point must clear 2.5x the
  single-worker rate (the tentpole acceptance number); every point
  must keep p99 under a melt-down ceiling regardless of core count.

``decisions_per_sec`` and sampled ``p99_ms``/``latency_p*_ms`` ride
along as extra_info (the throughput keys feed the smoke-bench
regression gate's floors);
the pytest-benchmark timing (which additionally includes connection
setup) is what the smoke-bench regression gate compares.  The traffic is
the same captured campaign trace the equivalence suite replays — the
served path is exercised on *simulator* traffic, not a synthetic
request generator.
"""

import asyncio
import math
import os
import signal
import subprocess
import sys
from contextlib import contextmanager

import pytest

from repro.cli import _raise_fd_limit
from repro.serve.loadgen import capture_bot_trace, run_load, tile_requests

from _util import emit

#: Hard floor: decisions/sec on the memory backend at 10k connections.
DECISIONS_FLOOR_10K = 20_000

#: Prefork scaling floor: 4 shm workers vs 1, when the box has the cores.
WORKERS_SCALING_FLOOR = 2.5

#: Tail-latency melt-down ceiling for every prefork sweep point.  This
#: is deliberately loose — it catches a lock convoy or an accept-queue
#: stall (tens of seconds), not ordinary scheduling jitter on a busy
#: 1-core box where p99 at 1k connections already runs ~1s.
WORKERS_P99_CEILING_MS = 10_000.0

#: Single/4-worker rates observed by the sweep, for the scaling floor.
_shm_sweep_rates = {}

#: Campaign trace the load is tiled from (same shape as the CI smoke).
TRACE_MESSAGES = 200
TRACE_SEED = 23


@pytest.fixture(scope="module")
def trace():
    _raise_fd_limit()  # the client side holds one fd per connection
    return capture_bot_trace(num_messages=TRACE_MESSAGES, seed=TRACE_SEED)


@contextmanager
def policy_daemon(backend, workers=1):
    """A live ``repro serve`` subprocess on an ephemeral port.

    Durable backends run volatile (no ``--store-path``), matching the
    store microbenches: identical code paths, no container I/O noise.
    ``workers > 1`` boots the prefork fleet (shm backend only).
    """
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--workers",
            str(workers),
            "--store-backend",
            backend,
            "serve",
            "--clock",
            "replay",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on "), line
        host, _, port = line.rpartition(":")
        host = host[len("listening on ") :]
        yield host, int(port)
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    assert proc.returncode == 0, "daemon did not exit cleanly"


def _fire(host, port, trace, connections, total_requests):
    per_connection = max(1, math.ceil(total_requests / connections))
    slices = tile_requests(trace.requests, connections, per_connection)
    return asyncio.run(run_load(host, port, slices))


def _report(benchmark, label, stats):
    benchmark.extra_info["connections"] = stats.connections
    benchmark.extra_info["decisions_per_sec"] = round(stats.decisions_per_sec)
    benchmark.extra_info["p99_ms"] = round(stats.percentile_ms(0.99), 3)
    for key, value in stats.latency_summary_ms.items():
        benchmark.extra_info[key] = round(value, 3)
    emit(
        label,
        f"{stats.decisions:,} decisions over {stats.connections:,} "
        f"connections: {stats.decisions_per_sec:,.0f} decisions/sec, "
        f"p50 {stats.percentile_ms(0.50):.2f}ms, "
        f"p99 {stats.percentile_ms(0.99):.2f}ms",
    )


@pytest.mark.parametrize("connections", [100, 1_000, 10_000])
def test_perf_serve_memory(benchmark, trace, connections):
    """Decision throughput scaling on the memory backend."""
    # 20 requests per connection: enough pipelined work that the fire
    # window measures decision throughput, not per-connection setup.
    total = connections * 20 if connections == 10_000 else 20_000
    with policy_daemon("memory") as (host, port):
        stats = benchmark.pedantic(
            _fire,
            args=(host, port, trace, connections, total),
            rounds=1,
            iterations=1,
        )
    _report(benchmark, f"Policy serving (memory, {connections} conns)", stats)
    assert stats.decisions >= total
    assert not stats.verbs.keys() - {"DUNNO", "DEFER_IF_PERMIT"}
    if connections == 10_000:
        best = stats.decisions_per_sec
        # The box is shared: a background burst during the 10-second
        # fire window can shave 30%+ off the observed rate.  The floor
        # is a capacity claim, so retry the load (untimed) before
        # declaring the daemon under-provisioned.
        for _ in range(2):
            if best >= DECISIONS_FLOOR_10K:
                break
            with policy_daemon("memory") as (host, port):
                retry = _fire(host, port, trace, connections, total)
            best = max(best, retry.decisions_per_sec)
        assert best >= DECISIONS_FLOOR_10K, (
            f"{best:,.0f} decisions/sec at 10k connections is below "
            f"the {DECISIONS_FLOOR_10K:,} floor"
        )


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_perf_serve_workers(benchmark, trace, workers):
    """Prefork scaling sweep: shm backend, 1k connections per point.

    Every point publishes its rate and latency percentiles; the
    4-worker point additionally enforces the >= 2.5x scaling floor
    against the single-worker rate — but only on a box with at least
    4 cores (the dev container has 1; CI has 4).
    """
    total = 20_000
    with policy_daemon("shm", workers=workers) as (host, port):
        stats = benchmark.pedantic(
            _fire,
            args=(host, port, trace, 1_000, total),
            rounds=1,
            iterations=1,
        )
    benchmark.extra_info["workers"] = workers
    _report(benchmark, f"Policy serving (shm, {workers} workers)", stats)
    assert stats.decisions >= total
    assert not stats.verbs.keys() - {"DUNNO", "DEFER_IF_PERMIT"}
    assert stats.percentile_ms(0.99) <= WORKERS_P99_CEILING_MS, (
        f"p99 {stats.percentile_ms(0.99):,.0f}ms with {workers} workers "
        f"breaches the {WORKERS_P99_CEILING_MS:,.0f}ms melt-down ceiling"
    )
    _shm_sweep_rates[workers] = stats.decisions_per_sec
    if workers == 4 and (os.cpu_count() or 1) >= 4:
        single = _shm_sweep_rates.get(1)
        if single is None:
            pytest.skip("single-worker point did not run; no scaling base")
        best = stats.decisions_per_sec
        # Same shared-box caveat as the 10k floor: retry untimed before
        # declaring the fleet under-scaled.
        for _ in range(2):
            if best >= WORKERS_SCALING_FLOOR * single:
                break
            with policy_daemon("shm", workers=4) as (host, port):
                retry = _fire(host, port, trace, 1_000, total)
            best = max(best, retry.decisions_per_sec)
        assert best >= WORKERS_SCALING_FLOOR * single, (
            f"4 workers reached {best:,.0f} decisions/sec — below "
            f"{WORKERS_SCALING_FLOOR}x the single-worker "
            f"{single:,.0f}/sec"
        )


@pytest.mark.parametrize("backend", ["sqlite", "journal"])
def test_perf_serve_durable(benchmark, trace, backend):
    """Durable-backend serving throughput at 1k connections."""
    with policy_daemon(backend) as (host, port):
        stats = benchmark.pedantic(
            _fire,
            args=(host, port, trace, 1_000, 20_000),
            rounds=1,
            iterations=1,
        )
    _report(benchmark, f"Policy serving ({backend}, 1000 conns)", stats)
    assert stats.decisions >= 20_000
