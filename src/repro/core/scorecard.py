"""The reproduction scorecard: every headline number, one call.

Runs a reduced-scale version of every experiment and prints a
paper-vs-measured table with a pass/fail verdict per claim — the
one-page answer to "does this reproduction hold?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..analysis.cdf import ks_distance
from ..analysis.tables import render_table
from ..botnet.families import KELIHOS
from .adoption import run_adoption_experiment
from .coverage import build_coverage_report
from .defense_matrix import build_defense_matrix
from .deployment import run_deployment_experiment
from .greylist_experiment import run_greylist_experiment
from .mta_survey import run_mta_survey
from .testbed import Defense
from .webmail_experiment import run_webmail_experiment
from .figure1 import run_figure1
from ..scan.detect import DomainClass


@dataclass
class ScorecardRow:
    """One claim's reproduction status."""

    artefact: str
    claim: str
    paper: str
    measured: str
    holds: bool


def build_scorecard(seed: int = 42, scale: float = 1.0) -> List[ScorecardRow]:
    """Run everything and score it.

    ``scale`` shrinks the workloads for quick runs (0.5 halves message and
    domain counts); verdicts are scale-insensitive.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = lambda base: max(10, int(base * scale))  # noqa: E731

    rows: List[ScorecardRow] = []

    # Figure 1 — protocol sequence.
    trace = run_figure1()
    rows.append(
        ScorecardRow(
            artefact="Figure 1",
            claim="compliant MTA delivers through nolisting",
            paper="delivers via secondary MX",
            measured="delivered" if trace.delivered else "LOST",
            holds=trace.delivered,
        )
    )

    # Figure 2 — adoption.
    adoption = run_adoption_experiment(num_domains=n(5000), seed=seed)
    nolisting_pct = 100.0 * adoption.summary.fraction(DomainClass.NOLISTING)
    rows.append(
        ScorecardRow(
            artefact="Figure 2",
            claim="nolisting adoption share",
            paper="0.52%",
            measured=f"{nolisting_pct:.2f}%",
            holds=abs(nolisting_pct - 0.52) < 0.2,
        )
    )
    rows.append(
        ScorecardRow(
            artefact="Figure 2",
            claim="top-15 adopter found",
            paper="1",
            measured=str(adoption.crosscheck.top15),
            holds=adoption.crosscheck.top15 == 1,
        )
    )

    # Table II + coverage.
    matrix = build_defense_matrix(seed=seed, recipients=2)
    grey = matrix.family_verdicts(Defense.GREYLISTING)
    nolist = matrix.family_verdicts(Defense.NOLISTING)
    table2_holds = (
        grey
        == {
            "Cutwail": True,
            "Kelihos": False,
            "Darkmailer": True,
            "Darkmailer(v3)": True,
        }
        and nolist
        == {
            "Cutwail": False,
            "Kelihos": True,
            "Darkmailer": False,
            "Darkmailer(v3)": False,
        }
    )
    rows.append(
        ScorecardRow(
            artefact="Table II",
            claim="per-family verdict matrix",
            paper="grey blocks C/D/Dv3; nolist blocks K",
            measured="identical" if table2_holds else "DIVERGED",
            holds=table2_holds,
        )
    )
    report = build_coverage_report(matrix)
    rows.append(
        ScorecardRow(
            artefact="§VI",
            claim="global spam stopped by either technique",
            paper=">70% (70.69%)",
            measured=f"{100 * report.combined_share:.2f}%",
            holds=report.combined_share > 0.70,
        )
    )

    # Figure 3 — threshold insensitivity.
    res5 = run_greylist_experiment(KELIHOS, 5.0, num_messages=n(50), seed=seed)
    res300 = run_greylist_experiment(
        KELIHOS, 300.0, num_messages=n(50), seed=seed
    )
    ks = ks_distance(res5.delay_cdf(), res300.delay_cdf())
    rows.append(
        ScorecardRow(
            artefact="Figure 3",
            claim="Kelihos CDFs similar at 5s vs 300s",
            paper="similar curves",
            measured=f"KS={ks:.3f}",
            holds=ks <= 0.25,
        )
    )
    rows.append(
        ScorecardRow(
            artefact="Figure 3",
            claim="minimum Kelihos retry delay",
            paper=">=300s",
            measured=f"{min(res5.delivery_delays):.0f}s",
            holds=min(res5.delivery_delays) >= 300.0,
        )
    )

    # Figure 4 — six hours still lost.
    res21600 = run_greylist_experiment(
        KELIHOS, 21600.0, num_messages=n(30), seed=seed, horizon=400000.0
    )
    rows.append(
        ScorecardRow(
            artefact="Figure 4",
            claim="Kelihos defeats a 6h threshold",
            paper="delivers after several attempts",
            measured=f"{100 * res21600.delivery_rate:.0f}% delivered",
            holds=res21600.delivery_rate == 1.0,
        )
    )

    # Figure 5 — benign impact.
    deployment = run_deployment_experiment(num_messages=n(1000), seed=5)
    within = deployment.fraction_delivered_within(600.0)
    rows.append(
        ScorecardRow(
            artefact="Figure 5",
            claim="benign mail within 10 minutes",
            paper="~half",
            measured=f"{100 * within:.0f}%",
            holds=0.30 <= within <= 0.70,
        )
    )

    # Table III — webmail.
    webmail = run_webmail_experiment()
    lost = sorted(r.provider for r in webmail if not r.delivered)
    rows.append(
        ScorecardRow(
            artefact="Table III",
            claim="providers losing mail at 6h",
            paper="qq.com, aol.com",
            measured=", ".join(lost),
            holds=lost == ["aol.com", "qq.com"],
        )
    )
    attempts = {r.provider: r.attempts for r in webmail}
    rows.append(
        ScorecardRow(
            artefact="Table III",
            claim="hotmail attempt count",
            paper="94",
            measured=str(attempts["hotmail.com"]),
            holds=attempts["hotmail.com"] == 94,
        )
    )

    # Table IV — MTA survey.
    survey = run_mta_survey()
    violators = [r.mta for r in survey if not r.rfc_compliant_lifetime]
    rows.append(
        ScorecardRow(
            artefact="Table IV",
            claim="only Exchange violates the RFC give-up guidance",
            paper="exchange",
            measured=", ".join(violators),
            holds=violators == ["exchange"],
        )
    )

    return rows


def scorecard_text(seed: int = 42, scale: float = 1.0) -> str:
    """Render the scorecard."""
    rows = build_scorecard(seed=seed, scale=scale)
    passed = sum(1 for row in rows if row.holds)
    table = render_table(
        headers=("Artefact", "Claim", "Paper", "Measured", "Holds"),
        rows=[
            (row.artefact, row.claim, row.paper, row.measured,
             "yes" if row.holds else "NO")
            for row in rows
        ],
        title=f"Reproduction scorecard — {passed}/{len(rows)} claims hold",
    )
    return table
