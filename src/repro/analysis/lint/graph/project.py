"""The cross-module layer: name resolution, class hierarchy, call graph.

A :class:`Project` owns every module's symbol table and answers the
questions interprocedural rules ask:

* *what does this name mean here?* — :meth:`Project.resolve_name`
  follows import chains and ``from x import *`` re-exports (with cycle
  guards, so mutually-importing modules terminate);
* *who does this call reach?* — :class:`CallSite` records each call's
  resolved project targets plus a canonical dotted chain for external
  calls (``import random as rnd; rnd.random()`` canonicalizes to
  ``random.random``), and :meth:`Project.reachable_from` runs BFS with
  parent pointers so findings can print the offending call path;
* *who inherits from whom?* — base chains resolve into a class
  hierarchy, ``self.method()`` resolves through ancestors *and*
  subclass overrides (the template-method pattern the
  ``TripletBackend`` implementations use).

Resolution is deliberately conservative: an edge is only added when the
callee is confidently a project symbol (same module, explicit import,
``self.``/local-instance method).  Unknown receivers produce no edge —
for taint rules a missing edge is a missed finding, never a false one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..framework import ModuleContext, context_from_source, dotted_name
from .symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    collect_module,
)

Key = Tuple[str, str]


@dataclass(frozen=True)
class ModuleRef:
    """A resolved reference to a project module (by module path)."""

    path: str


@dataclass(frozen=True)
class ExternalRef:
    """A reference that leaves the project (stdlib/third-party)."""

    chain: Tuple[str, ...]


Resolved = Union[FunctionSymbol, ClassSymbol, ModuleRef, ExternalRef, None]


@dataclass
class CallSite:
    """One call expression inside one function."""

    line: int
    col: int
    #: Dotted chain, canonicalized through import aliases when possible
    #: (``rnd.random`` → ``("random", "random")``); ``None`` when the
    #: callee is not a name/attribute chain.
    chain: Optional[Tuple[str, ...]]
    #: Attribute name for method-style calls (``x.iterdir()`` → ``"iterdir"``).
    attr: Optional[str]
    #: Keys of confidently-resolved project callees.
    targets: Tuple[Key, ...]
    node: ast.Call = field(repr=False)


@dataclass
class FunctionNode:
    """A call-graph node: one function plus its outgoing calls."""

    symbol: FunctionSymbol
    calls: List[CallSite] = field(default_factory=list)


class Project:
    """Whole-program view over a set of parsed modules."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        for ctx in contexts:
            self.modules[ctx.module_path] = collect_module(ctx)
        self.by_dotted: Dict[str, str] = {
            ms.dotted: path
            for path, ms in self.modules.items()
            if ms.dotted is not None
        }
        self.functions: Dict[Key, FunctionSymbol] = {}
        self.classes: Dict[Key, ClassSymbol] = {}
        for path, ms in self.modules.items():
            for fn in ms.functions.values():
                self.functions[fn.key] = fn
            for cls in ms.classes.values():
                self.classes[cls.key] = cls
                for method in cls.methods.values():
                    self.functions[method.key] = method
        self._subclasses: Dict[Key, List[ClassSymbol]] = {}
        self._link_hierarchy()
        self._attr_types: Dict[Key, Dict[str, ClassSymbol]] = {}
        self.nodes: Dict[Key, FunctionNode] = {}
        for ms in self.modules.values():
            for fn in ms.functions.values():
                self.nodes[fn.key] = self._build_node(ms, fn)
            for cls in ms.classes.values():
                for method in cls.methods.values():
                    self.nodes[method.key] = self._build_node(ms, method)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{module_path: source}`` (test fixtures)."""
        contexts: List[ModuleContext] = []
        for module_path in sorted(sources):
            ctx, parse_finding = context_from_source(
                sources[module_path],
                module_path,
                is_tests=module_path.startswith("tests/"),
            )
            if parse_finding is not None:
                raise SyntaxError(
                    f"fixture module {module_path}: {parse_finding.message}"
                )
            assert ctx is not None
            contexts.append(ctx)
        return cls(contexts)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_name(
        self,
        module: ModuleSymbols,
        name: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Resolved:
        """What ``name`` means at module scope in ``module``.

        Follows import chains into other project modules and expands
        ``from x import *`` re-exports; cycles (mutually importing
        modules) are cut by the ``_seen`` guard.
        """
        seen = _seen if _seen is not None else set()
        if (module.path, name) in seen:
            return None
        seen.add((module.path, name))

        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        binding = module.imports.get(name)
        if binding is not None:
            target_path = self.by_dotted.get(binding.module)
            if binding.name is None:
                if target_path is not None:
                    return ModuleRef(target_path)
                return ExternalRef(tuple(binding.module.split(".")))
            if target_path is not None:
                target = self.modules[target_path]
                resolved = self.resolve_name(target, binding.name, seen)
                if resolved is not None:
                    return resolved
                # ``from repro.scan import batch`` — a submodule import.
                sub = self.by_dotted.get(f"{binding.module}.{binding.name}")
                if sub is not None:
                    return ModuleRef(sub)
                return None
            # The parent package may be absent from the analyzed set
            # (partial trees, fixtures) while the submodule is present.
            sub = self.by_dotted.get(f"{binding.module}.{binding.name}")
            if sub is not None:
                return ModuleRef(sub)
            return ExternalRef((*binding.module.split("."), binding.name))
        if name in module.globals:
            return None
        for star_module, _ in module.star_imports:
            target_path = self.by_dotted.get(star_module)
            if target_path is None:
                continue
            target = self.modules[target_path]
            if name in target.exported_names():
                resolved = self.resolve_name(target, name, seen)
                if resolved is not None:
                    return resolved
        return None

    def resolve_chain(
        self, module: ModuleSymbols, chain: Tuple[str, ...]
    ) -> Tuple[Resolved, Optional[Tuple[str, ...]]]:
        """Resolve a dotted chain like ``scan.batch.replay`` or ``os.path.join``.

        Returns ``(project symbol or None, canonical external chain or
        None)``.  Exactly one of the two is meaningful; both ``None``
        means the chain could not be resolved at all.
        """
        head = self.resolve_name(module, chain[0])
        index = 1
        while isinstance(head, ModuleRef) and index < len(chain):
            target = self.modules[head.path]
            nxt: Resolved = self.resolve_name(target, chain[index])
            if nxt is None and target.dotted is not None:
                sub = self.by_dotted.get(f"{target.dotted}.{chain[index]}")
                if sub is not None:
                    nxt = ModuleRef(sub)
            if nxt is None:
                return None, None
            head = nxt
            index += 1
        if isinstance(head, ExternalRef):
            return None, head.chain + tuple(chain[index:])
        if isinstance(head, ClassSymbol) and index < len(chain):
            candidates = self.method_candidates(head, chain[index])
            if candidates and index == len(chain) - 1:
                return candidates[0], None
            return None, None
        if index == len(chain):
            return head, None
        return None, None

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def _link_hierarchy(self) -> None:
        self._bases: Dict[Key, List[ClassSymbol]] = {}
        for cls in self.classes.values():
            module = self.modules[cls.module_path]
            bases: List[ClassSymbol] = []
            for chain in cls.base_chains:
                resolved: Resolved
                if len(chain) == 1:
                    resolved = self.resolve_name(module, chain[0])
                else:
                    resolved, _ = self.resolve_chain(module, chain)
                if isinstance(resolved, ClassSymbol):
                    bases.append(resolved)
                    self._subclasses.setdefault(resolved.key, []).append(cls)
            self._bases[cls.key] = bases

    def ancestors(self, cls: ClassSymbol) -> Iterator[ClassSymbol]:
        """All resolved project base classes, nearest first."""
        seen: Set[Key] = {cls.key}
        queue = list(self._bases.get(cls.key, []))
        while queue:
            base = queue.pop(0)
            if base.key in seen:
                continue
            seen.add(base.key)
            yield base
            queue.extend(self._bases.get(base.key, []))

    def descendants(self, cls: ClassSymbol) -> Iterator[ClassSymbol]:
        """All transitive project subclasses."""
        seen: Set[Key] = {cls.key}
        queue = list(self._subclasses.get(cls.key, []))
        while queue:
            sub = queue.pop(0)
            if sub.key in seen:
                continue
            seen.add(sub.key)
            yield sub
            queue.extend(self._subclasses.get(sub.key, []))

    def method_candidates(
        self,
        cls: ClassSymbol,
        name: str,
        include_subclasses: bool = False,
    ) -> List[FunctionSymbol]:
        """Methods a ``cls().name()`` call could dispatch to."""
        candidates: List[FunctionSymbol] = []
        if name in cls.methods:
            candidates.append(cls.methods[name])
        for ancestor in self.ancestors(cls):
            if name in ancestor.methods:
                candidates.append(ancestor.methods[name])
        if include_subclasses:
            for sub in self.descendants(cls):
                if name in sub.methods:
                    candidates.append(sub.methods[name])
        return candidates

    # ------------------------------------------------------------------
    # Call-graph construction
    # ------------------------------------------------------------------
    def _annotation_class(
        self, module: ModuleSymbols, annotation: Optional[ast.expr]
    ) -> Optional[ClassSymbol]:
        """Resolve a type annotation to a project class, if it names one.

        Unwraps ``Optional[T]`` / ``Union[T, None]`` and string
        annotations; container annotations (``List[T]`` etc.) do not
        resolve — the binding's *elements* are typed, not the binding.
        """
        if annotation is None:
            return None
        node: ast.expr = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = dotted_name(node.value)
            if head is None or head[-1] not in ("Optional", "Union"):
                return None
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                resolved = self._annotation_class(module, element)
                if resolved is not None:
                    return resolved
            return None
        chain = dotted_name(node)
        if chain is None:
            return None
        resolved: Resolved
        if len(chain) == 1:
            resolved = self.resolve_name(module, chain[0])
        else:
            resolved, _ = self.resolve_chain(module, chain)
        return resolved if isinstance(resolved, ClassSymbol) else None

    def _resolve_constructor(
        self, module: ModuleSymbols, value: ast.expr
    ) -> Optional[ClassSymbol]:
        """``ClassName(...)`` on the right-hand side of an assignment."""
        if not isinstance(value, ast.Call):
            return None
        chain = dotted_name(value.func)
        if chain is None:
            return None
        resolved: Resolved
        if len(chain) == 1:
            resolved = self.resolve_name(module, chain[0])
        else:
            resolved, _ = self.resolve_chain(module, chain)
        return resolved if isinstance(resolved, ClassSymbol) else None

    def _instance_types(
        self, module: ModuleSymbols, fn: FunctionSymbol
    ) -> Dict[str, Tuple[ClassSymbol, bool]]:
        """Local name -> (class, dispatch-to-subclasses) bindings.

        Two sources: ``x = ClassName(...)`` pins the concrete class, and
        a local annotation (``x: Base`` — the pre-annotated loop
        variable idiom — or an annotated parameter) declares an
        *interface*, so calls through it may dispatch to any subclass.
        """
        instances: Dict[str, Tuple[ClassSymbol, bool]] = {}
        args = fn.node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotated = self._annotation_class(module, arg.annotation)
            if annotated is not None:
                instances[arg.arg] = (annotated, True)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign):
                if not isinstance(node.target, ast.Name):
                    continue
                annotated = self._annotation_class(module, node.annotation)
                if annotated is not None:
                    instances[node.target.id] = (annotated, True)
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            constructed = self._resolve_constructor(module, node.value)
            if constructed is not None:
                instances[target.id] = (constructed, False)
        return instances

    def attribute_types(self, cls: ClassSymbol) -> Dict[str, ClassSymbol]:
        """Instance-attribute name -> class, gathered from the methods.

        Sources, in priority order (first resolution of a name wins,
        ``__init__`` scanned first): ``self.x: T`` annotated
        assignments, ``self.x = ClassName(...)`` constructor calls, and
        ``self.x = param`` where the parameter is annotated with a
        project class.  This is what lets the call graph resolve
        ``self.attr.method()`` — the serving daemon's whole decision
        path hangs off such calls.
        """
        cached = self._attr_types.get(cls.key)
        if cached is not None:
            return cached
        module = self.modules[cls.module_path]
        types: Dict[str, ClassSymbol] = {}
        ordered = sorted(
            cls.methods.values(), key=lambda m: m.name != "__init__"
        )
        for method in ordered:
            args = method.node.args  # type: ignore[attr-defined]
            params: Dict[str, Optional[ClassSymbol]] = {
                arg.arg: self._annotation_class(module, arg.annotation)
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            }
            for node in ast.walk(method.node):
                target: Optional[ast.expr]
                value: Optional[ast.expr]
                if isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                name = target.attr
                if name in types:
                    continue
                if isinstance(node, ast.AnnAssign):
                    annotated = self._annotation_class(module, node.annotation)
                    if annotated is not None:
                        types[name] = annotated
                        continue
                if value is None:
                    continue
                constructed = self._resolve_constructor(module, value)
                if constructed is not None:
                    types[name] = constructed
                    continue
                if isinstance(value, ast.Name):
                    annotated = params.get(value.id)
                    if annotated is not None:
                        types[name] = annotated
        self._attr_types[cls.key] = types
        return types

    def _build_node(
        self, module: ModuleSymbols, fn: FunctionSymbol
    ) -> FunctionNode:
        node = FunctionNode(symbol=fn)
        instances = self._instance_types(module, fn)
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            chain = dotted_name(call.func)
            canonical = chain
            targets: List[FunctionSymbol] = []
            if chain is not None and len(chain) == 1:
                resolved = self.resolve_name(module, chain[0])
                if isinstance(resolved, FunctionSymbol):
                    targets = [resolved]
                elif isinstance(resolved, ClassSymbol):
                    targets = self.method_candidates(resolved, "__init__")
                elif isinstance(resolved, ExternalRef):
                    canonical = resolved.chain
            elif chain is not None:
                head = chain[0]
                if head == "self" and fn.class_name is not None:
                    cls = module.classes.get(fn.class_name)
                    if cls is not None and len(chain) == 2:
                        targets = self.method_candidates(
                            cls, chain[1], include_subclasses=True
                        )
                    elif cls is not None and len(chain) >= 3:
                        # self.attr[.attr...].method(): walk each hop
                        # through the attribute's declared/constructed
                        # type, then dispatch on the final receiver (and
                        # its subclasses — it may hold any of them).
                        attr_cls: Optional[ClassSymbol] = cls
                        for attr in chain[1:-1]:
                            if attr_cls is None:
                                break
                            attr_cls = self.attribute_types(attr_cls).get(attr)
                        if attr_cls is not None:
                            targets = self.method_candidates(
                                attr_cls, chain[-1], include_subclasses=True
                            )
                elif head in instances and len(chain) == 2:
                    bound, is_interface = instances[head]
                    targets = self.method_candidates(
                        bound, chain[1], include_subclasses=is_interface
                    )
                else:
                    resolved, external = self.resolve_chain(module, chain)
                    if isinstance(resolved, FunctionSymbol):
                        targets = [resolved]
                    elif isinstance(resolved, ClassSymbol):
                        targets = self.method_candidates(resolved, "__init__")
                    if external is not None:
                        canonical = external
            attr = (
                call.func.attr if isinstance(call.func, ast.Attribute) else None
            )
            node.calls.append(
                CallSite(
                    line=call.lineno,
                    col=call.col_offset + 1,
                    chain=canonical,
                    attr=attr,
                    targets=tuple(t.key for t in targets),
                    node=call,
                )
            )
        return node

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self,
        entries: Iterable[Key],
        *,
        skip: Optional[Set[Key]] = None,
    ) -> Dict[Key, Optional[Key]]:
        """BFS over call edges; maps each reached key to its parent.

        Entries map to ``None``.  Iteration order is deterministic:
        entries in the given order, callees in call-site order.
        """
        parents: Dict[Key, Optional[Key]] = {}
        queue: List[Key] = []
        for entry in entries:
            if entry in self.nodes and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            key = queue.pop(0)
            for call in self.nodes[key].calls:
                for target in call.targets:
                    if target in parents or target not in self.nodes:
                        continue
                    if skip is not None and target in skip:
                        continue
                    parents[target] = key
                    queue.append(target)
        return parents

    def call_path(
        self, parents: Dict[Key, Optional[Key]], key: Key
    ) -> List[Key]:
        """Entry-to-``key`` path through a :meth:`reachable_from` map."""
        path = [key]
        current: Optional[Key] = key
        while current is not None:
            current = parents.get(current)
            if current is not None:
                path.append(current)
        return list(reversed(path))

    # ------------------------------------------------------------------
    # Dumps and reports
    # ------------------------------------------------------------------
    def call_graph_json(self) -> Dict[str, Any]:
        """The ``--graph-json`` document: every node and resolved edge."""
        nodes = []
        edge_count = 0
        for key in sorted(self.nodes):
            node = self.nodes[key]
            calls = []
            for call in node.calls:
                for target in call.targets:
                    calls.append(
                        {
                            "line": call.line,
                            "target": f"{target[0]}::{target[1]}",
                        }
                    )
                    edge_count += 1
            nodes.append(
                {
                    "module": key[0],
                    "function": key[1],
                    "line": node.symbol.lineno,
                    "async": node.symbol.is_async,
                    "calls": calls,
                }
            )
        return {
            "modules": len(self.modules),
            "functions": len(self.nodes),
            "edges": edge_count,
            "nodes": nodes,
        }

    def referenced_symbols(self) -> Set[Key]:
        """Function/class keys referenced anywhere beyond their definition.

        A reference is a resolved import binding from another module, or
        a name/attribute *use* in any module — including the defining one,
        since a helper only its own module calls is not dead (so functions
        passed as values — e.g. shard task functions handed to
        ``run_tasks`` — count as referenced).
        """
        referenced: Set[Key] = set()
        for path, ms in self.modules.items():
            for binding in ms.imports.values():
                if binding.name is None:
                    continue
                target_path = self.by_dotted.get(binding.module)
                if target_path is None or target_path == path:
                    continue
                resolved = self.resolve_name(
                    self.modules[target_path], binding.name
                )
                if (
                    isinstance(resolved, (FunctionSymbol, ClassSymbol))
                    and resolved.key[0] != path
                ):
                    referenced.add(resolved.key)
            for node in ast.walk(ms.context.tree):
                chain: Optional[Tuple[str, ...]] = None
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    chain = (node.id,)
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    chain = dotted_name(node)
                if chain is None:
                    continue
                resolved, _ = self.resolve_chain(ms, chain)
                if isinstance(resolved, (FunctionSymbol, ClassSymbol)):
                    referenced.add(resolved.key)
        return referenced

    def api_report(self) -> Dict[str, Any]:
        """The API-surface / dead-symbol report.

        *Surface* is every name exported from a package module (via
        ``__all__`` when present, public names otherwise); *dead* is
        every public top-level function or class in a package module
        that no other module imports, calls, or names.
        """
        referenced = self.referenced_symbols()
        surface = {}
        dead = []
        for path in sorted(self.modules):
            ms = self.modules[path]
            if ms.dotted is None or ms.is_tests:
                continue
            surface[path] = sorted(ms.exported_names())
            if ms.is_init:
                continue
            candidates: List[Tuple[str, int]] = [
                (fn.qualname, fn.lineno)
                for fn in ms.functions.values()
                if not fn.name.startswith("_")
            ] + [
                (cls.name, cls.lineno)
                for cls in ms.classes.values()
                if not cls.name.startswith("_")
            ]
            for qualname, lineno in sorted(candidates):
                if (path, qualname) not in referenced:
                    dead.append(
                        {"module": path, "symbol": qualname, "line": lineno}
                    )
        return {"surface": surface, "dead_symbols": dead}
