"""Webmail provider sending models.

Each provider is modelled by the three traits Table III measures:

* its **retry schedule** — the queue ages at which it re-attempts a deferred
  message (explicit early attempts, optionally continuing at a fixed cadence,
  optionally giving up after a maximum number of attempts);
* its **outbound IP pool** — how many distinct addresses its delivery farm
  rotates through, and in what order; and
* implicitly, whether that combination gets a message past a greylisting
  threshold.

The :class:`WebmailDelivery` driver plays a provider's schedule against a
destination server on the simulator, which is how the Table III experiment
regenerates the ATTEMPTS / DELIVER / DELAYS columns instead of transcribing
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..net.address import AddressPool, IPv4Address
from ..sim.events import EventScheduler
from ..smtp.client import AttemptOutcome, SMTPClient
from ..smtp.message import Message


@dataclass(frozen=True)
class ProviderSpec:
    """Static description of one webmail provider's sending behaviour.

    Parameters
    ----------
    name:
        Provider domain (``gmail.com``).
    retry_ages:
        Queue ages, in seconds, of scheduled retries (attempt 1 is always at
        age 0 and is not listed).
    ip_pool_size:
        Number of distinct outbound addresses the farm uses for one message.
    ip_sequence:
        Optional explicit pool-index sequence for successive attempts; when
        omitted the pool is used round-robin.  (mail.ru's farm revisits its
        first address late in the sequence, which is what lets it pass a six
        hour threshold — the default rotation would not.)
    continuation_interval:
        When set, after ``retry_ages`` is exhausted the provider keeps
        retrying at this fixed cadence (hotmail's 4-minute hammering,
        yandex's 15:25 cycle).  When ``None`` the provider gives up once the
        explicit schedule ends (aol.com, qq.com).
    max_attempts:
        Hard cap on total attempts, give-up included.
    """

    name: str
    retry_ages: Sequence[float]
    ip_pool_size: int = 1
    ip_sequence: Optional[Sequence[int]] = None
    continuation_interval: Optional[float] = None
    max_attempts: int = 200

    def __post_init__(self) -> None:
        ages = list(self.retry_ages)
        if any(a <= 0 for a in ages) or sorted(ages) != ages:
            raise ValueError(f"{self.name}: retry ages must be positive ascending")
        if self.ip_pool_size < 1:
            raise ValueError(f"{self.name}: need at least one outbound IP")
        if self.ip_sequence is not None:
            if any(not 0 <= i < self.ip_pool_size for i in self.ip_sequence):
                raise ValueError(f"{self.name}: ip_sequence index out of range")
        if self.continuation_interval is not None and self.continuation_interval <= 0:
            raise ValueError(f"{self.name}: continuation interval must be positive")
        if self.max_attempts < 1:
            raise ValueError(f"{self.name}: max_attempts must be >= 1")

    @property
    def uses_single_ip(self) -> bool:
        """The Table III 'SAME IP' column."""
        return self.ip_pool_size == 1

    @property
    def gives_up(self) -> bool:
        """Whether the schedule ends before the RFC's 4-5 day guidance."""
        return self.continuation_interval is None

    def attempt_age(self, attempt_number: int) -> Optional[float]:
        """Queue age of the ``attempt_number``-th attempt (1-based).

        Returns ``None`` when the provider never makes that attempt.
        """
        if attempt_number < 1 or attempt_number > self.max_attempts:
            return None
        if attempt_number == 1:
            return 0.0
        index = attempt_number - 2
        ages = list(self.retry_ages)
        if index < len(ages):
            return ages[index]
        if self.continuation_interval is None:
            return None
        overflow = index - len(ages) + 1
        base = ages[-1] if ages else 0.0
        return base + overflow * self.continuation_interval

    def pool_index(self, attempt_number: int) -> int:
        """Which pool member sends the ``attempt_number``-th attempt."""
        index = attempt_number - 1
        if self.ip_sequence is not None:
            if index < len(self.ip_sequence):
                return self.ip_sequence[index]
            return self.ip_sequence[-1]
        return index % self.ip_pool_size


@dataclass
class DeliveryOutcome:
    """Result of playing one provider schedule against one server."""

    provider: ProviderSpec
    delivered: bool
    attempts: int
    attempt_ages: List[float] = field(default_factory=list)
    distinct_ips_used: int = 0
    delivery_age: Optional[float] = None

    @property
    def retry_ages(self) -> List[float]:
        """Ages of re-transmissions only (Table III's DELAYS column)."""
        return self.attempt_ages[1:]


class WebmailDelivery:
    """Drives one provider's outbound farm on the event scheduler."""

    def __init__(
        self,
        spec: ProviderSpec,
        scheduler: EventScheduler,
        client: SMTPClient,
        address_pool: AddressPool,
    ) -> None:
        self.spec = spec
        self.scheduler = scheduler
        self.client = client
        self.addresses: List[IPv4Address] = address_pool.allocate_many(
            spec.ip_pool_size
        )

    def deliver(self, message: Message, recipient: str) -> DeliveryOutcome:
        """Submit a message and drive the schedule synchronously.

        Schedules every attempt on the event loop; the caller is expected to
        ``scheduler.run()`` afterwards.  Returns the live outcome object that
        the attempts mutate.
        """
        outcome = DeliveryOutcome(
            provider=self.spec, delivered=False, attempts=0
        )
        submitted_at = self.scheduler.now
        used_ips: Set[IPv4Address] = set()

        def attempt(number: int) -> None:
            if outcome.delivered:
                return
            source = self.addresses[self.spec.pool_index(number)]
            used_ips.add(source)
            outcome.distinct_ips_used = len(used_ips)
            result = self.client.send(message, recipient, source_override=source)
            now = self.scheduler.now
            outcome.attempts = number
            outcome.attempt_ages.append(now - submitted_at)
            if result.outcome is AttemptOutcome.DELIVERED:
                outcome.delivered = True
                outcome.delivery_age = now - submitted_at
                return
            if result.outcome is AttemptOutcome.BOUNCED:
                return  # permanent rejection: stop immediately
            next_age = self.spec.attempt_age(number + 1)
            if next_age is None:
                return
            delay = (submitted_at + next_age) - now
            self.scheduler.schedule_in(
                max(delay, 0.0),
                lambda: attempt(number + 1),
                label=f"webmail:{self.spec.name}:attempt{number + 1}",
            )

        self.scheduler.schedule_in(
            0.0, lambda: attempt(1), label=f"webmail:{self.spec.name}:attempt1"
        )
        return outcome
