"""Load generator: the synthetic internet's bot traffic, served live.

The serving daemon and the simulator must *provably* share one policy
core.  This module is the proof machinery:

* :func:`capture_bot_trace` runs a real simulated spam campaign (the
  same :class:`~repro.core.testbed.Testbed` + botnet machinery every
  experiment uses) against a greylisted victim and records the policy's
  decision stream — one :class:`TracedRequest` per RCPT-time decision,
  carrying the virtual timestamp, the triplet and the action the
  *simulated* path took.
* :func:`replay_trace` pushes exactly that request stream through a live
  daemon over the wire (sequentially, stamps in order) so a
  :class:`~repro.serve.server.ReplayClock` server reproduces the
  simulator's `GreylistEvent` stream and triplet-store state
  bit-for-bit — the equivalence suite and the CI smoke job both run
  this.
* :func:`run_load` is the throughput harness: it spreads a trace over N
  concurrent connections (tiling it with per-connection client
  subnets when N exceeds the trace), pre-renders each connection's
  pipelined burst, and measures decisions/sec plus sampled p50/p99
  latency against a running daemon.

Wall-clock reads here time a *live server over real sockets* — they are
measurement of the system under test, not simulation state, which is
why the two ``perf_counter`` sites carry CLK001 waivers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter  # repro: noqa CLK001 - loadgen times a live server, not the simulation
from typing import Dict, List, Optional, Sequence, Tuple

from ..botnet.campaign import SpamCampaign, make_recipient_list
from ..botnet.families import KELIHOS, FamilyProfile
from ..core.testbed import Defense, Testbed, TestbedConfig
from ..greylist.persistence import format_entry_line
from ..greylist.policy import GreylistAction, GreylistEvent
from ..sim.rng import RandomStream
from .client import PolicyClient, make_request_attrs
from .protocol import (
    ACTION_DEFER_IF_PERMIT,
    ACTION_DUNNO,
    format_request,
)

#: Actions the simulated policy maps to on the wire (verb only — defer
#: replies also carry the 450 text, compared separately where it matters).
_EVENT_VERBS = {
    GreylistAction.WHITELISTED: ACTION_DUNNO,
    GreylistAction.AUTO_WHITELISTED: ACTION_DUNNO,
    GreylistAction.PASSED: ACTION_DUNNO,
    GreylistAction.PASSED_KNOWN: ACTION_DUNNO,
    GreylistAction.GREYLISTED_NEW: ACTION_DEFER_IF_PERMIT,
    GreylistAction.GREYLISTED_EARLY: ACTION_DEFER_IF_PERMIT,
}


def expected_verb(event: GreylistEvent) -> str:
    """The wire action verb the served path must answer for ``event``."""
    return _EVENT_VERBS[event.action]


@dataclass(slots=True)
class TracedRequest:
    """One RCPT-time decision of the simulated run, replayable."""

    stamp: float
    client: str
    sender: str
    recipient: str
    expected: str  # action verb the simulated path produced

    def attrs(self) -> Dict[str, str]:
        return make_request_attrs(
            self.client, self.sender, self.recipient, stamp=self.stamp
        )


@dataclass
class TrafficTrace:
    """A captured campaign: requests + the simulated ground truth."""

    family: str
    threshold: float
    seed: int
    requests: List[TracedRequest]
    events: List[GreylistEvent]
    snapshot_lines: List[str]
    store_size: int
    store_confirmed: int


def capture_bot_trace(
    family: FamilyProfile = KELIHOS,
    threshold: float = 300.0,
    num_messages: int = 200,
    seed: int = 23,
    num_bots: int = 4,
    horizon: float = 400000.0,
    store_backend: str = "memory",
    store_path: Optional[str] = None,
) -> TrafficTrace:
    """Run a simulated campaign; capture its policy decisions as a trace.

    The testbed, bot family, scheduler and greylist policy are exactly
    the ones :func:`~repro.core.greylist_experiment.run_greylist_experiment`
    drives — the trace *is* simulated bot traffic, not a synthetic
    approximation of it.
    """
    if num_bots < 1:
        raise ValueError("num_bots must be >= 1")
    testbed = Testbed(
        TestbedConfig(
            defense=Defense.GREYLISTING,
            greylist_delay=threshold,
            greylist_store_backend=store_backend,
            greylist_store_path=store_path,
        )
    )
    domain = testbed.config.victim_domain
    rng = RandomStream(seed, f"serve-load:{family.name}:{threshold}")
    bots = [
        family.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=rng.split(f"bot:{i}"),
        )
        for i in range(num_bots)
    ]
    campaign = SpamCampaign(
        sender=f"spam@{family.name.lower().replace('(', '').replace(')', '')}.example",
        recipients=make_recipient_list(domain, num_messages),
    )
    for index, job in enumerate(campaign.single_recipient_jobs()):
        bots[index % num_bots].assign(job)
    testbed.run(horizon=horizon)

    policy = testbed.greylist
    assert policy is not None
    requests = [
        TracedRequest(
            stamp=event.timestamp,
            client=str(event.triplet.client),
            sender=event.triplet.sender,
            recipient=event.triplet.recipient,
            expected=expected_verb(event),
        )
        for event in policy.events
    ]
    snapshot_lines = [
        format_entry_line(entry) for entry in policy.store.entries()
    ]
    trace = TrafficTrace(
        family=family.name,
        threshold=threshold,
        seed=seed,
        requests=requests,
        events=list(policy.events),
        snapshot_lines=snapshot_lines,
        store_size=policy.store.size,
        store_confirmed=policy.store.confirmed,
    )
    policy.store.close()
    return trace


# ----------------------------------------------------------------------
# Sequential replay (correctness: equivalence suite, CI smoke)
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of a sequential trace replay against a live daemon."""

    total: int
    mismatches: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


async def replay_trace(
    host: str,
    port: int,
    requests: Sequence[TracedRequest],
    chunk: int = 256,
) -> ReplayReport:
    """Replay a trace in order over one connection; verify each action.

    Requests are pipelined ``chunk`` at a time (order preserved — one
    connection, in-order responses), so correctness replay is still
    thousands of decisions/sec.
    """
    client = await PolicyClient.connect(host, port)
    report = ReplayReport(total=len(requests))
    try:
        for base in range(0, len(requests), chunk):
            batch = requests[base : base + chunk]
            actions = await client.pipeline([r.attrs() for r in batch])
            for offset, (request, action) in enumerate(zip(batch, actions)):
                verb = action.split(" ", 1)[0]
                if verb != request.expected:
                    report.mismatches.append(
                        (base + offset, request.expected, verb)
                    )
    finally:
        await client.close()
    return report


# ----------------------------------------------------------------------
# Concurrent load (throughput: benchmarks, capacity tests)
# ----------------------------------------------------------------------
@dataclass
class LoadStats:
    """What one load run measured."""

    connections: int
    decisions: int
    elapsed: float
    decisions_per_sec: float
    latencies_ms: List[float]
    verbs: Dict[str, int]

    def percentile_ms(self, q: float) -> float:
        """Latency percentile (ms) over the sampled closed-loop probes."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def latency_summary_ms(self) -> Dict[str, float]:
        """p50/p95/p99 of the sampled round trips, ready for reporting.

        The benchmarks publish these as ``extra_info`` next to
        ``decisions_per_sec`` so the regression gate can hold a tail
        ceiling, not just an aggregate-throughput floor.
        """
        return {
            "latency_p50_ms": self.percentile_ms(0.50),
            "latency_p95_ms": self.percentile_ms(0.95),
            "latency_p99_ms": self.percentile_ms(0.99),
        }


def tile_requests(
    requests: Sequence[TracedRequest],
    connections: int,
    per_connection: int,
) -> List[List[TracedRequest]]:
    """Spread a trace over ``connections`` independent request slices.

    Each connection replays a contiguous window of the trace with its
    client address rebased into a connection-private ``10.x.y.0/24``
    subnet — the serving equivalent of many bot subnets hammering one
    policy daemon at once.  Distinct subnets keep each connection's
    greylist phase progression intact regardless of interleaving.
    """
    if connections < 1 or per_connection < 1:
        raise ValueError("connections and per_connection must be >= 1")
    if not requests:
        raise ValueError("cannot tile an empty trace")
    tiled: List[List[TracedRequest]] = []
    size = len(requests)
    for conn in range(connections):
        prefix = f"10.{(conn >> 8) & 0xFF}.{conn & 0xFF}"
        slice_: List[TracedRequest] = []
        for i in range(per_connection):
            source = requests[(conn * per_connection + i) % size]
            slice_.append(
                TracedRequest(
                    stamp=source.stamp,
                    client=f"{prefix}.{int(source.client.rsplit('.', 1)[1])}",
                    sender=source.sender,
                    recipient=source.recipient,
                    expected=source.expected,
                )
            )
        tiled.append(slice_)
    return tiled


async def run_load(
    host: str,
    port: int,
    slices: Sequence[Sequence[TracedRequest]],
    sample_connections: int = 8,
) -> LoadStats:
    """Fire every slice concurrently; measure the fire phase only.

    Connection setup happens before the clock starts (we are measuring
    decision throughput, not TCP accept throughput).  Most connections
    run *open-loop*: their whole burst is pre-rendered to bytes and
    written at once, responses counted as they stream back.  The first
    ``sample_connections`` run *closed-loop*, one timed round trip per
    request — their latencies are the p50/p99 sample.
    """
    # Connect in bounded waves: 10k simultaneous SYNs overflow listen
    # queues (SYN cookies reset the excess); a wave of 512 stays inside
    # any sane backlog, and a couple of retries absorb the stragglers.
    async def connect_with_retry() -> PolicyClient:
        for attempt in (1, 2, 3):
            try:
                return await PolicyClient.connect(host, port)
            except (ConnectionError, OSError):
                if attempt == 3:
                    raise
                await asyncio.sleep(0.05 * attempt)
        raise AssertionError("unreachable")

    clients: List[PolicyClient] = []
    for base in range(0, len(slices), 512):
        wave = min(512, len(slices) - base)
        clients.extend(
            await asyncio.gather(*(connect_with_retry() for _ in range(wave)))
        )
    latencies_ms: List[float] = []
    verbs: Dict[str, int] = {}

    async def open_loop(client: PolicyClient, payload: bytes, count: int) -> None:
        # Responses are counted, not parsed — the closed-loop sample
        # carries the verb statistics; open-loop connections contribute
        # pure throughput.
        await client.send_counted(payload, count)

    async def closed_loop(client: PolicyClient, burst: Sequence[TracedRequest]) -> None:
        for request in burst:
            t0 = perf_counter()
            action = await client.request(request.attrs())
            latencies_ms.append((perf_counter() - t0) * 1000.0)
            verb = action.split(" ", 1)[0]
            verbs[verb] = verbs.get(verb, 0) + 1

    # Pre-render every open-loop burst *before* the clock starts: the
    # timed section measures the server answering decisions, not the
    # client formatting stanzas.
    tasks = []
    for index, (client, burst) in enumerate(zip(clients, slices)):
        if index < sample_connections:
            tasks.append(closed_loop(client, burst))
        else:
            payload = b"".join(format_request(r.attrs()) for r in burst)
            tasks.append(open_loop(client, payload, len(burst)))
    started = perf_counter()
    await asyncio.gather(*tasks)
    elapsed = perf_counter() - started
    await asyncio.gather(*(client.close() for client in clients))

    decisions = sum(len(burst) for burst in slices)
    return LoadStats(
        connections=len(slices),
        decisions=decisions,
        elapsed=elapsed,
        decisions_per_sec=decisions / elapsed if elapsed > 0 else 0.0,
        latencies_ms=latencies_ms,
        verbs=verbs,
    )
