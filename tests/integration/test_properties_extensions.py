"""Property-based tests for the extension modules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bootstrap import bootstrap_ci, mean
from repro.greylist.keying import KeyStrategy, derive_key
from repro.greylist.persistence import dump_store, load_store
from repro.greylist.store import TripletStore
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp.wire import parse_command, render_mail_from, render_rcpt_to

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
localparts = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=12
).filter(lambda s: "@" not in s)
domains = st.sampled_from(
    ["x.net", "mail.example", "corp.example", "a.b.example"]
)
emails = st.builds(lambda local, dom: f"{local}@{dom}", localparts, domains)


class TestKeyingProperties:
    @given(addresses, emails, emails)
    def test_full_triplet_is_identity(self, client, sender, recipient):
        key = derive_key(KeyStrategy.FULL_TRIPLET, client, sender, recipient)
        assert key == Triplet(client, sender, recipient)

    @given(addresses, emails, emails)
    def test_coarser_strategies_merge_what_finer_ones_split(
        self, client, sender, recipient
    ):
        # Partition refinement: if two observations share a FULL_TRIPLET
        # key they must share every coarser key.
        fine = derive_key(KeyStrategy.FULL_TRIPLET, client, sender, recipient)
        for strategy in (
            KeyStrategy.CLIENT_NET_TRIPLET,
            KeyStrategy.SENDER_DOMAIN,
            KeyStrategy.CLIENT_ONLY,
        ):
            a = derive_key(strategy, client, sender, recipient)
            b = derive_key(
                strategy, fine.client, fine.sender, fine.recipient
            )
            assert a == b

    @given(addresses, emails, emails, emails)
    def test_client_only_ignores_mail_fields(
        self, client, sender1, sender2, recipient
    ):
        a = derive_key(KeyStrategy.CLIENT_ONLY, client, sender1, recipient)
        b = derive_key(KeyStrategy.CLIENT_ONLY, client, sender2, recipient)
        assert a == b

    @given(addresses, addresses, emails, emails)
    def test_strategies_never_merge_distinct_far_clients(
        self, client_a, client_b, sender, recipient
    ):
        if (client_a.value >> 8) == (client_b.value >> 8):
            return  # same /24: merging is allowed
        for strategy in KeyStrategy:
            a = derive_key(strategy, client_a, sender, recipient)
            b = derive_key(strategy, client_b, sender, recipient)
            assert a != b


class TestPersistenceProperties:
    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),   # client index
                st.integers(min_value=0, max_value=5),    # sender index
                st.floats(min_value=0.1, max_value=3600.0, allow_nan=False),
                st.booleans(),                            # mark passed?
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_dump_load_preserves_live_entries(self, events):
        clock = Clock()
        store = TripletStore(clock, retry_window=10 ** 9)
        for client_idx, sender_idx, gap, passed in events:
            clock.advance_by(gap)
            triplet = Triplet(
                IPv4Address(client_idx),
                f"s{sender_idx}@x.example",
                "r@y.example",
            )
            store.observe(triplet)
            if passed:
                store.mark_passed(triplet)
        restored = load_store(dump_store(store), clock, retry_window=10 ** 9)
        assert restored.size == store.size
        for entry in store.entries():
            other = restored.lookup(entry.triplet)
            assert other is not None
            assert other.attempts == entry.attempts
            assert other.passed == entry.passed
            assert other.first_seen == entry.first_seen


class TestWireProperties:
    @given(emails)
    def test_mail_from_roundtrip(self, address):
        assert parse_command(render_mail_from(address)).argument == address

    @given(emails)
    def test_rcpt_to_roundtrip(self, address):
        assert parse_command(render_rcpt_to(address)).argument == address

    @given(emails)
    def test_bare_dialect_roundtrip(self, address):
        command = parse_command(render_mail_from(address, bracketed=False))
        assert command.argument == address


class TestBootstrapProperties:
    @settings(max_examples=25)
    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=60,
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_interval_brackets_estimate(self, samples, seed):
        ci = bootstrap_ci(samples, mean, seed=seed, resamples=100)
        assert ci.low <= ci.estimate <= ci.high
        # Resample means can drift by a few ULPs from the sample extremes.
        slack = 1e-9 * max(1.0, max(abs(s) for s in samples))
        assert min(samples) - slack <= ci.low
        assert ci.high <= max(samples) + slack
