"""Synthetic internet population for the adoption measurement.

The Figure 2 experiment needs an internet's worth of mail domains whose
ground truth we control: how many use a single MX, several MXes, nolisting,
or are misconfigured — plus the realistic nuisances the paper's pipeline had
to survive (transiently-down primaries, MX answers with missing glue,
persistent primary outages indistinguishable from nolisting).

:class:`SyntheticInternet` generates such a population deterministically
from a seed and exposes exactly the two views the real study had:
authoritative DNS (via a :class:`~repro.dns.zone.ZoneStore`) and per-scan
TCP/25 reachability (via :meth:`is_listening`).

Generation is *chunked*: the domain space is split into fixed-size chunks,
each built from its own RNG sub-stream (``seed -> "chunk:<k>"``) and its own
disjoint slice of the address space.  A chunk's content therefore depends
only on ``(config, seed, chunk index)`` — never on which other chunks were
generated in the same process — which is what lets the parallel experiment
runner hand each worker a disjoint slice of the population
(:meth:`SyntheticInternet.shard`) and still merge results bit-for-bit
identical to a serial run.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dns.zone import ZoneStore
from ..net.address import AddressPool, IPv4Address, IPv4Network
from ..sim.rng import RandomStream


class DomainCategory(enum.Enum):
    """Ground-truth configuration of a generated domain."""

    SINGLE_MX = "single-mx"
    MULTI_MX = "multi-mx"
    NOLISTING = "nolisting"
    MISCONFIGURED = "misconfigured"


#: Figure 2's published mix (fractions of all domains).
FIGURE2_MIX: Dict[DomainCategory, float] = {
    DomainCategory.SINGLE_MX: 0.4773,
    DomainCategory.MULTI_MX: 0.4597,
    DomainCategory.MISCONFIGURED: 0.0578,
    DomainCategory.NOLISTING: 0.0052,
}

#: Upper bound on addresses one domain can consume (multi-MX tops out at a
#: primary plus three extra exchangers); sizes each chunk's address slice.
MAX_ADDRESSES_PER_DOMAIN = 4

#: Exchangers provisioned per provider-consolidated MX pool.
POOL_HOSTS = MAX_ADDRESSES_PER_DOMAIN

#: Apex under which provider-consolidated MX pools live; pool ``k`` owns the
#: zone ``pool<k>.mx-pools.example``.
PROVIDER_APEX = "mx-pools.example"

#: Address block reserved for provider pools (RFC 2544 benchmarking range,
#: disjoint from the population's default 10/8 and the bot source ranges).
#: Pool addresses are arithmetic — pool ``k`` slot ``i`` maps to
#: ``base + k * POOL_HOSTS + i`` — so the batch/columnar replay never needs
#: an allocator to know them.
PROVIDER_ADDRESS_SPACE = "198.18.0.0/16"


def provider_pool_apex(pool_id: int) -> str:
    """Zone apex of provider pool ``pool_id``."""
    return f"pool{pool_id}.{PROVIDER_APEX}"


def provider_pool_host(pool_id: int, slot: int) -> str:
    """Hostname of exchanger ``slot`` in provider pool ``pool_id``.

    Slots are single digits (``POOL_HOSTS <= 4``), so lexicographic order of
    the hostnames equals slot order — which keeps the scanner's
    ``(preference, exchange)`` sort stable for load-balanced (equal
    preference) pools.
    """
    return f"mx{slot}.{provider_pool_apex(pool_id)}"


def provider_pool_address(pool_id: int, slot: int) -> int:
    """Integer address of exchanger ``slot`` in provider pool ``pool_id``."""
    base = IPv4Network.parse(PROVIDER_ADDRESS_SPACE).base.value
    return base + pool_id * POOL_HOSTS + slot

#: Canonical category order backing the plan's columnar representation.
#: Sorted by enum value, matching the plan's canonical layout order, so a
#: category's code is stable across processes and releases of this module.
CATEGORY_ORDER: Tuple[DomainCategory, ...] = tuple(
    sorted(DomainCategory, key=lambda c: c.value)
)

#: category -> small-int code used in the plan's ``array('B')`` column.
CATEGORY_CODE: Dict[DomainCategory, int] = {
    category: code for code, category in enumerate(CATEGORY_ORDER)
}


@dataclass
class DomainTruth:
    """Everything the generator decided about one domain."""

    name: str
    category: DomainCategory
    mx_hosts: List[Tuple[str, int, Optional[IPv4Address]]] = field(
        default_factory=list
    )  # (hostname, preference, address-or-None)
    #: Scan index (0 or 1) during which the *primary* MX is spuriously down,
    #: or None.  Models maintenance windows / transient failures.
    outage_scan: Optional[int] = None
    #: Primary down in *both* scans (a persistent failure, which the paper
    #: deliberately counts as nolisting-equivalent).
    persistent_outage: bool = False
    alexa_rank: Optional[int] = None
    #: Provider-consolidated MX pool this domain's exchangers live in, or
    #: None for self-hosted MX.  Pool domains share exchanger addresses.
    provider_pool: Optional[int] = None
    #: Pool advertised with equal preferences (load balancing) rather than
    #: the weighted fail-over layout.
    pool_balanced: bool = False

    @property
    def primary(self) -> Optional[Tuple[str, int, Optional[IPv4Address]]]:
        if not self.mx_hosts:
            return None
        return min(self.mx_hosts, key=lambda h: h[1])

    @property
    def secondaries(self) -> List[Tuple[str, int, Optional[IPv4Address]]]:
        if len(self.mx_hosts) < 2:
            return []
        primary = self.primary
        return [h for h in self.mx_hosts if h is not primary]


@dataclass
class PopulationConfig:
    """Knobs of the generator."""

    num_domains: int = 10000
    mix: Dict[DomainCategory, float] = field(
        default_factory=lambda: dict(FIGURE2_MIX)
    )
    #: Fraction of single/multi-MX domains whose primary suffers a transient
    #: outage during exactly one of the two scans.
    transient_outage_rate: float = 0.004
    #: Fraction of multi-MX domains whose primary is persistently dead
    #: (counted as nolisting by the paper's operational definition).
    persistent_outage_rate: float = 0.0
    #: Fraction of multi-MX domains (2, 3 or 4 exchangers).
    extra_mx_weights: Tuple[float, float, float] = (0.72, 0.2, 0.08)
    #: Of the misconfigured domains, fraction that have a dangling MX (the
    #: rest have no MX records at all).
    dangling_mx_fraction: float = 0.5
    #: Fraction of multi-MX domains hosted on a provider-consolidated MX
    #: pool (shared exchangers, à la the Ruohonen MX measurement) instead of
    #: self-hosted exchangers.  0 disables pools — and skips their draws, so
    #: pool-free populations stay bit-identical to pre-pool releases.
    provider_pool_fraction: float = 0.0
    #: Number of distinct provider pools domains are spread over.
    provider_pool_count: int = 8
    #: Of the pool-hosted domains, fraction whose pool is advertised with
    #: equal MX preferences (load balancing); the rest use the weighted
    #: fail-over layout (ascending preferences).
    provider_equal_preference: float = 0.3
    #: Generator mix this config was derived from (see
    #: :mod:`repro.scan.profiles`); purely descriptive metadata that the
    #: columnar pipeline records per domain.
    profile: str = "figure2"
    address_space: str = "10.0.0.0/8"
    #: Domains per generation chunk.  Part of the population's identity: the
    #: same (seed, chunk_size) yields the same domains whether chunks are
    #: built in one process or spread over many workers.
    chunk_size: int = 512

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError("population needs at least one domain")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"category mix must sum to 1, got {total}")
        for rate in (self.transient_outage_rate, self.persistent_outage_rate,
                     self.dangling_mx_fraction, self.provider_pool_fraction,
                     self.provider_equal_preference):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must lie in [0, 1]")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.provider_pool_count < 1:
            raise ValueError("provider_pool_count must be positive")
        if self.provider_pool_fraction > 0:
            provider = IPv4Network.parse(PROVIDER_ADDRESS_SPACE)
            if self.provider_pool_count * POOL_HOSTS > provider.num_addresses:
                raise ValueError(
                    f"{self.provider_pool_count} provider pools exceed the "
                    f"reserved {PROVIDER_ADDRESS_SPACE} block"
                )
            population = IPv4Network.parse(self.address_space)
            if provider.base in population or population.base in provider:
                raise ValueError(
                    "population address space overlaps the provider pool "
                    f"block {PROVIDER_ADDRESS_SPACE}"
                )

    @property
    def num_chunks(self) -> int:
        return -(-self.num_domains // self.chunk_size)

    @property
    def chunk_address_stride(self) -> int:
        """Addresses reserved per chunk (disjoint across chunks)."""
        return self.chunk_size * MAX_ADDRESSES_PER_DOMAIN


def population_params(config: PopulationConfig) -> Dict[str, object]:
    """Canonical, JSON-able description of a config (cache keys, workers)."""
    params: Dict[str, object] = {
        "num_domains": config.num_domains,
        "mix": {c.value: config.mix[c] for c in sorted(config.mix, key=lambda c: c.value)},
        "transient_outage_rate": config.transient_outage_rate,
        "persistent_outage_rate": config.persistent_outage_rate,
        "extra_mx_weights": list(config.extra_mx_weights),
        "dangling_mx_fraction": config.dangling_mx_fraction,
        "address_space": config.address_space,
        "chunk_size": config.chunk_size,
    }
    # Provider-pool and profile keys appear only when they deviate from the
    # defaults, so pool-free configs keep their pre-pool cache identity.
    if config.provider_pool_fraction > 0:
        params["provider_pool_fraction"] = config.provider_pool_fraction
        params["provider_pool_count"] = config.provider_pool_count
        params["provider_equal_preference"] = config.provider_equal_preference
    if config.profile != "figure2":
        params["profile"] = config.profile
    return params


def population_from_params(params: Dict[str, object]) -> PopulationConfig:
    """Inverse of :func:`population_params`."""
    return PopulationConfig(
        num_domains=int(params["num_domains"]),
        mix={DomainCategory(k): v for k, v in params["mix"].items()},
        transient_outage_rate=float(params["transient_outage_rate"]),
        persistent_outage_rate=float(params["persistent_outage_rate"]),
        extra_mx_weights=tuple(params["extra_mx_weights"]),
        dangling_mx_fraction=float(params["dangling_mx_fraction"]),
        provider_pool_fraction=float(params.get("provider_pool_fraction", 0.0)),
        provider_pool_count=int(params.get("provider_pool_count", 8)),
        provider_equal_preference=float(
            params.get("provider_equal_preference", 0.3)
        ),
        profile=str(params.get("profile", "figure2")),
        address_space=str(params["address_space"]),
        chunk_size=int(params["chunk_size"]),
    )


@dataclass
class PlannedDomain:
    """The cheap part of one domain's ground truth: name, category, rank.

    Everything a coordinator needs to shard, plant popular adopters and
    merge results — without paying for zones, addresses or outage draws.
    """

    index: int
    name: str
    category: DomainCategory
    alexa_rank: int


class PopulationPlan:
    """Deterministic per-domain plan shared by every worker.

    Apportions domains to categories (largest-remainder, exact counts),
    shuffles the category order and the Alexa-style rank permutation — all
    O(n) in cheap scalar data.  Both the full generator and every shard
    derive the same plan from ``(config, seed)``, so chunk ``k`` means the
    same domains everywhere.

    The plan's authoritative storage is *columnar*: an ``array('B')`` of
    category codes and an ``array('I')`` of ranks.  :class:`PlannedDomain`
    objects are materialized lazily (and at most once) when somebody asks
    for :attr:`domains`; the batched engines and worker-side generators
    read :meth:`chunk_rows` instead and never pay for the object layer.
    A category index and the ground-truth counts are built once here —
    categories never change after planning, so they need no invalidation;
    the name->rank map is cached and dropped by :meth:`plant`.
    """

    def __init__(self, config: PopulationConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        root = RandomStream(seed, "population")

        counts = self._category_counts(config)
        codes = array("B")
        # Canonical category order: the plan must not depend on the mix
        # dict's insertion order, or a worker rebuilding the config from
        # canonical params would lay out a different population.  Shuffling
        # the code column draws exactly what shuffling the old object list
        # drew (the draws depend only on the length), so populations are
        # bit-identical to the pre-columnar layout.
        for category in sorted(counts, key=lambda c: c.value):
            codes.extend([CATEGORY_CODE[category]] * counts[category])
        root.split("order").shuffle(codes)

        ranks = array("I", range(1, config.num_domains + 1))
        root.split("ranks").shuffle(ranks)

        self._codes = codes
        self._ranks = ranks
        self._counts: Dict[DomainCategory, int] = {
            category: counts.get(category, 0) for category in DomainCategory
        }
        self._index_by_category: Dict[DomainCategory, "array[int]"] = {
            category: array("I") for category in CATEGORY_ORDER
        }
        for index, code in enumerate(codes):
            self._index_by_category[CATEGORY_ORDER[code]].append(index)
        self._domains: Optional[List[PlannedDomain]] = None
        self._rank_cache: Optional[Dict[str, int]] = None

    @staticmethod
    def name_of(index: int) -> str:
        """The (purely positional) name of domain ``index``."""
        return f"dom{index:07d}.example"

    @property
    def domains(self) -> List[PlannedDomain]:
        """The object view of the plan, materialized on first access."""
        if self._domains is None:
            ranks = self._ranks
            self._domains = [
                PlannedDomain(
                    index=index,
                    name=self.name_of(index),
                    category=CATEGORY_ORDER[code],
                    alexa_rank=ranks[index],
                )
                for index, code in enumerate(self._codes)
            ]
        return self._domains

    @staticmethod
    def _category_counts(config: PopulationConfig) -> Dict[DomainCategory, int]:
        """Apportion domains to categories with largest-remainder rounding."""
        n = config.num_domains
        raw = {c: n * frac for c, frac in config.mix.items()}
        counts = {c: int(v) for c, v in raw.items()}
        shortfall = n - sum(counts.values())
        by_remainder = sorted(
            raw, key=lambda c: (counts[c] - raw[c], c.value)
        )
        for category in by_remainder[:shortfall]:
            counts[category] += 1
        return counts

    @property
    def num_chunks(self) -> int:
        return self.config.num_chunks

    def chunk(self, chunk_index: int) -> List[PlannedDomain]:
        """The planned domains of chunk ``chunk_index`` (object view)."""
        self._check_chunk(chunk_index)
        size = self.config.chunk_size
        return self.domains[chunk_index * size: (chunk_index + 1) * size]

    def chunk_rows(self, chunk_index: int) -> List[Tuple[int, str, DomainCategory, int]]:
        """Chunk contents as cheap ``(index, name, category, rank)`` rows.

        Reads straight from the columnar arrays, so a worker generating one
        shard never materializes the full object plan.  Falls back to the
        object view when it exists, because planting mutates object ranks.
        """
        self._check_chunk(chunk_index)
        size = self.config.chunk_size
        start = chunk_index * size
        stop = min(start + size, self.config.num_domains)
        if self._domains is not None:
            return [
                (d.index, d.name, d.category, d.alexa_rank)
                for d in self._domains[start:stop]
            ]
        codes, ranks = self._codes, self._ranks
        return [
            (i, self.name_of(i), CATEGORY_ORDER[codes[i]], ranks[i])
            for i in range(start, stop)
        ]

    def _check_chunk(self, chunk_index: int) -> None:
        if not 0 <= chunk_index < self.num_chunks:
            raise ValueError(
                f"chunk {chunk_index} out of range [0, {self.num_chunks})"
            )

    def truth_counts(self) -> Dict[DomainCategory, int]:
        """Exact category counts, precomputed at planning time."""
        return dict(self._counts)

    def domains_in(self, category: DomainCategory) -> List[PlannedDomain]:
        """Planned domains of one category, via the one-time index."""
        domains = self.domains
        return [domains[i] for i in self._index_by_category[category]]

    def count_in(self, category: DomainCategory) -> int:
        """Category cardinality without materializing any objects."""
        return self._counts[category]

    def rank_of(self) -> Dict[str, int]:
        """Domain name -> current Alexa rank (reflects any planting).

        Cached after the first call; :meth:`plant` (or an explicit
        :meth:`invalidate_rank_cache`) drops the cache when ranks move.
        Treat the returned mapping as read-only.
        """
        if self._rank_cache is None:
            if self._domains is None:
                self._rank_cache = {
                    self.name_of(i): rank
                    for i, rank in enumerate(self._ranks)
                }
            else:
                self._rank_cache = {
                    d.name: d.alexa_rank for d in self._domains
                }
        return self._rank_cache

    def plant(self, ranks: Sequence[int]) -> List[str]:
        """Plant nolisting adopters at ``ranks`` and invalidate rank caches.

        The one sanctioned way to re-rank a plan: callers that reach for
        :func:`repro.scan.alexa.plant_ranks` directly bypass the cache
        invalidation and will read stale :meth:`rank_of` answers.
        """
        from .alexa import plant_ranks  # deferred: alexa imports this module

        planted = plant_ranks(self.domains, ranks)
        self.invalidate_rank_cache()
        return planted

    def invalidate_rank_cache(self) -> None:
        """Forget the memoized name->rank map after external rank edits."""
        self._rank_cache = None


class SyntheticInternet:
    """A generated population of mail domains with ground truth attached.

    Parameters
    ----------
    config, seed:
        Identity of the population.
    chunks:
        Chunk indices to generate; ``None`` builds the full population.
        Use :meth:`shard` for the explicit worker-side constructor.
    plan:
        Pre-computed :class:`PopulationPlan` to reuse (must match
        ``(config, seed)``); avoids re-planning when the caller already
        holds one.
    """

    def __init__(
        self,
        config: PopulationConfig,
        seed: int,
        chunks: Optional[Sequence[int]] = None,
        plan: Optional[PopulationPlan] = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.zones = ZoneStore()
        self.domains: List[DomainTruth] = []
        # One-time ground-truth indexes, maintained during generation so the
        # accessors below never rescan the population.  Categories are fixed
        # at generation (planting only moves ranks), so nothing here needs
        # invalidation.
        self._truth_counts: Dict[DomainCategory, int] = {
            c: 0 for c in DomainCategory
        }
        self._by_category: Dict[DomainCategory, List[DomainTruth]] = {
            c: [] for c in DomainCategory
        }
        self._mail_addresses: List[IPv4Address] = []
        self._listening: Dict[IPv4Address, bool] = {}
        #: Provider pools already provisioned (zone + glue + listeners).
        self._provider_pools: set = set()
        #: address -> scan index during which it is spuriously down
        self._down_during_scan: Dict[IPv4Address, int] = {}
        network = IPv4Network.parse(config.address_space)
        if config.num_chunks * config.chunk_address_stride > network.num_addresses:
            raise ValueError(
                f"address space {config.address_space} too small for "
                f"{config.num_domains} domains in chunks of {config.chunk_size}"
            )
        self._pool = AddressPool(network)
        self.plan = plan if plan is not None else PopulationPlan(config, seed)
        if chunks is None:
            self.chunk_indices: List[int] = list(range(self.plan.num_chunks))
        else:
            self.chunk_indices = sorted(set(int(c) for c in chunks))
        root = RandomStream(seed, "population")
        for chunk_index in self.chunk_indices:
            self._generate_chunk(root, chunk_index)

    @classmethod
    def shard(
        cls,
        config: PopulationConfig,
        seed: int,
        chunks: Iterable[int],
    ) -> "SyntheticInternet":
        """Generate only the given chunks of the population.

        The returned internet holds exactly the domains (and zones,
        addresses, outage schedules) those chunks hold in the full
        population — a worker-sized, bit-identical slice.
        """
        return cls(config, seed, chunks=list(chunks))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate_chunk(self, root: RandomStream, chunk_index: int) -> None:
        """Build one chunk from its own RNG streams and address slice."""
        chunk_rng = root.split(f"chunk:{chunk_index}")
        outage_rng = chunk_rng.split("outages")
        mx_rng = chunk_rng.split("mx-count")
        misc_rng = chunk_rng.split("misconfig")
        # The provider stream exists (and is drawn from) only when pools are
        # enabled, so pool-free populations remain bit-identical to releases
        # that predate provider pools.
        provider_rng = (
            chunk_rng.split("provider")
            if self.config.provider_pool_fraction > 0
            else None
        )
        pool = self._pool.subpool(
            chunk_index * self.config.chunk_address_stride,
            self.config.chunk_address_stride,
        )

        for _, name, category, rank in self.plan.chunk_rows(chunk_index):
            truth = DomainTruth(
                name=name,
                category=category,
                alexa_rank=rank,
            )
            if category is DomainCategory.SINGLE_MX:
                self._build_single(truth, pool)
                self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.MULTI_MX:
                self._build_multi(truth, pool, mx_rng, provider_rng)
                if truth.provider_pool is not None:
                    # Pool exchangers are shared across domains; per-domain
                    # outage draws would couple unrelated domains through a
                    # common address, so pool-hosted domains take none.
                    pass
                elif outage_rng.random() < self.config.persistent_outage_rate:
                    self._apply_persistent_outage(truth)
                else:
                    self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.NOLISTING:
                self._build_nolisting(truth, pool)
            else:
                self._build_misconfigured(truth, pool, misc_rng)
            self.domains.append(truth)
            self._truth_counts[category] += 1
            self._by_category[category].append(truth)

    def _allocate_mx(
        self,
        truth: DomainTruth,
        pool: AddressPool,
        label: str,
        preference: int,
        listening: bool,
    ) -> IPv4Address:
        address = pool.allocate()
        hostname = f"{label}.{truth.name}"
        zone = self.zones.get_or_create(truth.name)
        zone.add_a(hostname, address)
        zone.add_mx(preference, hostname)
        truth.mx_hosts.append((hostname, preference, address))
        self._listening[address] = listening
        self._mail_addresses.append(address)
        return address

    def _build_single(self, truth: DomainTruth, pool: AddressPool) -> None:
        self._allocate_mx(truth, pool, "smtp", 10, listening=True)

    def _build_multi(
        self,
        truth: DomainTruth,
        pool: AddressPool,
        rng: RandomStream,
        provider_rng: Optional[RandomStream] = None,
    ) -> None:
        extra = rng.weighted_index(list(self.config.extra_mx_weights)) + 1
        if provider_rng is not None:
            # Fixed draw order (membership, pool id, layout) so the columnar
            # replay can mirror this stream draw-for-draw.
            if provider_rng.random() < self.config.provider_pool_fraction:
                pool_id = provider_rng.randrange(self.config.provider_pool_count)
                balanced = (
                    provider_rng.random() < self.config.provider_equal_preference
                )
                self._attach_provider_pool(truth, pool_id, extra + 1, balanced)
                return
        self._allocate_mx(truth, pool, "smtp", 10, listening=True)
        for i in range(extra):
            self._allocate_mx(
                truth, pool, f"smtp{i + 1}", 10 * (i + 2), listening=True
            )

    def _attach_provider_pool(
        self, truth: DomainTruth, pool_id: int, count: int, balanced: bool
    ) -> None:
        """Point ``truth`` at ``count`` exchangers of a shared provider pool.

        Fail-over pools advertise ascending preferences (10, 20, ...); load
        balanced pools advertise every exchanger at preference 10, relying
        on the scanner's ``(preference, exchange)`` tie-break — slot order,
        by construction of :func:`provider_pool_host` — for determinism.
        """
        self._ensure_provider_pool(pool_id)
        zone = self.zones.get_or_create(truth.name)
        for slot in range(count):
            hostname = provider_pool_host(pool_id, slot)
            preference = 10 if balanced else 10 * (slot + 1)
            zone.add_mx(preference, hostname)
            truth.mx_hosts.append(
                (hostname, preference, IPv4Address(provider_pool_address(pool_id, slot)))
            )
        truth.provider_pool = pool_id
        truth.pool_balanced = balanced

    def _ensure_provider_pool(self, pool_id: int) -> None:
        """Provision pool ``pool_id``'s zone, glue and listeners once."""
        if pool_id in self._provider_pools:
            return
        self._provider_pools.add(pool_id)
        zone = self.zones.get_or_create(provider_pool_apex(pool_id))
        for slot in range(POOL_HOSTS):
            address = IPv4Address(provider_pool_address(pool_id, slot))
            zone.add_a(provider_pool_host(pool_id, slot), address)
            self._listening[address] = True
            self._mail_addresses.append(address)

    def _build_nolisting(self, truth: DomainTruth, pool: AddressPool) -> None:
        # Primary resolves but refuses port 25; secondary works (Figure 1).
        self._allocate_mx(truth, pool, "smtp", 0, listening=False)
        self._allocate_mx(truth, pool, "smtp1", 15, listening=True)

    def _build_misconfigured(
        self, truth: DomainTruth, pool: AddressPool, rng: RandomStream
    ) -> None:
        zone = self.zones.get_or_create(truth.name)
        if rng.random() < self.config.dangling_mx_fraction:
            # MX points at a hostname with no A record anywhere.
            hostname = f"ghost.{truth.name}"
            zone.add_mx(10, hostname)
            truth.mx_hosts.append((hostname, 10, None))
        else:
            # Domain exists (has an A record for www) but no MX at all.
            zone.add_a(f"www.{truth.name}", pool.allocate())

    def _maybe_transient(self, truth: DomainTruth, rng: RandomStream) -> None:
        if rng.random() >= self.config.transient_outage_rate:
            return
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        scan_index = rng.randint(0, 1)
        truth.outage_scan = scan_index
        self._down_during_scan[primary[2]] = scan_index

    def _apply_persistent_outage(self, truth: DomainTruth) -> None:
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        truth.persistent_outage = True
        self._listening[primary[2]] = False

    # ------------------------------------------------------------------
    # Scan-time views
    # ------------------------------------------------------------------
    def is_listening(self, address: IPv4Address, scan_index: int) -> bool:
        """TCP/25 reachability of ``address`` as seen by scan ``scan_index``."""
        if not self._listening.get(address, False):
            return False
        return self._down_during_scan.get(address) != scan_index

    def all_mail_addresses(self) -> List[IPv4Address]:
        """Every address allocated to an MX host (the scan's address space).

        Answered from the index built during generation — allocation order,
        which matches the old population walk exactly.
        """
        return list(self._mail_addresses)

    # ------------------------------------------------------------------
    # Ground truth helpers (for validating the pipeline)
    # ------------------------------------------------------------------
    def truth_counts(self) -> Dict[DomainCategory, int]:
        """Category counts, maintained incrementally during generation."""
        return dict(self._truth_counts)

    def domains_in(self, category: DomainCategory) -> List[DomainTruth]:
        """Generated domains of one category, via the one-time index."""
        return list(self._by_category[category])

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(domains={self.num_domains}, seed={self.seed})"
        )
