"""Unit tests for the virtual clock and duration formatting."""

import pytest

from repro.sim.clock import Clock, ClockError, format_duration, parse_duration


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=12.5).now == 12.5

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(start=-1.0)

    def test_advance_to_moves_forward(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = Clock(start=5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_past_rejected(self):
        clock = Clock(start=5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)

    def test_advance_by(self):
        clock = Clock()
        clock.advance_by(3.0)
        clock.advance_by(0.0)
        assert clock.now == 3.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            Clock().advance_by(-0.1)

    def test_repr_contains_time(self):
        assert "7.000" in repr(Clock(start=7.0))


class TestDurationFormat:
    def test_format_simple(self):
        assert format_duration(362) == "6:02"

    def test_format_zero(self):
        assert format_duration(0) == "0:00"

    def test_format_large(self):
        # Table III's largest stamp: 434:46.
        assert format_duration(26086) == "434:46"

    def test_format_rounds(self):
        assert format_duration(59.6) == "1:00"

    def test_format_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)

    def test_parse_roundtrip(self):
        for seconds in (0, 61, 362, 21731, 26086):
            assert parse_duration(format_duration(seconds)) == float(seconds)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_duration("six minutes")
        with pytest.raises(ValueError):
            parse_duration("5:99")
        with pytest.raises(ValueError):
            parse_duration("1:2:3")
