"""Long-term greylisting effectiveness over the deployment window.

Related work the paper builds on (Sochor 2009/2010) tracked greylisting in
production for two years and found its effectiveness constant.  Our
four-month university deployment allows the same style of analysis: bin
the greylist decisions by week and track (a) the pass rate of benign mail
and (b) the delivery-delay profile over time.  On a stationary sender mix
the weekly rates should be flat — which is both a validation of the
deployment model and the Sochor result in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.timeseries import WEEK, TimeBin, bin_events, rate_stability
from ..maillog.university import DeploymentConfig, UniversityDeployment


@dataclass
class LongTermResult:
    """Weekly effectiveness series of one deployment run."""

    weekly_delivery: List[TimeBin]     # messages delivered per week
    weekly_loss: List[TimeBin]         # messages lost per week
    delivery_stability: Optional[float]

    @property
    def weeks_observed(self) -> int:
        return len([b for b in self.weekly_delivery if b.count > 0])


def run_longterm_analysis(
    num_messages: int = 2000,
    duration_days: float = 120.0,
    threshold: float = 300.0,
    seed: int = 5,
) -> LongTermResult:
    """Run the deployment and bin its outcomes by week."""
    config = DeploymentConfig(
        threshold=threshold,
        duration_days=duration_days,
        num_messages=num_messages,
    )
    result = UniversityDeployment(config, seed=seed).run()
    delivered_logs = [log for log in result.logs if log.attempt_times]

    weekly_delivery = bin_events(
        delivered_logs,
        timestamp=lambda log: log.attempt_times[0],
        predicate=lambda log: log.delivered,
        bin_width=WEEK,
        start=0.0,
        end=duration_days * 86400.0,
    )
    weekly_loss = bin_events(
        delivered_logs,
        timestamp=lambda log: log.attempt_times[0],
        predicate=lambda log: not log.delivered,
        bin_width=WEEK,
        start=0.0,
        end=duration_days * 86400.0,
    )
    return LongTermResult(
        weekly_delivery=weekly_delivery,
        weekly_loss=weekly_loss,
        delivery_stability=rate_stability(weekly_delivery),
    )
