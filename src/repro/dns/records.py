"""DNS resource records.

Only the record types the paper's measurement needs are modelled: ``A``
(address) and ``MX`` (mail exchanger), plus an opaque ``TXT`` used in tests.
Records are immutable value objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..net.address import IPv4Address


class RecordType(enum.Enum):
    """The DNS record types understood by the simulated resolver."""

    A = "A"
    MX = "MX"
    TXT = "TXT"
    ANY = "ANY"


class DNSRecordError(ValueError):
    """Raised for malformed records."""


def normalize_name(name: str) -> str:
    """Canonicalize a domain name: lowercase, no trailing dot.

    >>> normalize_name("Foo.NET.")
    'foo.net'
    """
    name = name.strip().lower().rstrip(".")
    if not name:
        raise DNSRecordError("empty domain name")
    for label in name.split("."):
        if not label or len(label) > 63:
            raise DNSRecordError(f"invalid label in domain name {name!r}")
    if len(name) > 253:
        raise DNSRecordError(f"domain name too long: {name!r}")
    return name


@dataclass(frozen=True)
class ARecord:
    """``name IN A address``"""

    name: str
    address: IPv4Address
    ttl: int = 3600

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0:
            raise DNSRecordError("TTL must be non-negative")

    @property
    def rtype(self) -> RecordType:
        return RecordType.A

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN A {self.address}"


@dataclass(frozen=True)
class MXRecord:
    """``name IN MX preference exchange``

    Lower ``preference`` means higher priority (RFC 5321 §5.1); the exchange
    is a domain name that must itself resolve via an A record.
    """

    name: str
    preference: int
    exchange: str
    ttl: int = 3600

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        object.__setattr__(self, "exchange", normalize_name(self.exchange))
        if not 0 <= self.preference <= 65535:
            raise DNSRecordError(
                f"MX preference out of range: {self.preference}"
            )
        if self.ttl < 0:
            raise DNSRecordError("TTL must be non-negative")

    @property
    def rtype(self) -> RecordType:
        return RecordType.MX

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN MX {self.preference} {self.exchange}"


@dataclass(frozen=True)
class TXTRecord:
    """``name IN TXT text`` — only used as an inert extra record in tests."""

    name: str
    text: str
    ttl: int = 3600

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))

    @property
    def rtype(self) -> RecordType:
        return RecordType.TXT

    def __str__(self) -> str:
        return f'{self.name} {self.ttl} IN TXT "{self.text}"'
