"""Ablation bench: single-scan vs two-scan nolisting detection.

Quantifies why the paper repeated its measurement two months apart: with a
realistic rate of transient primary-MX outages, a single scan produces
false nolisting candidates that the differential protocol removes.
"""

from repro.analysis.tables import render_table
from repro.core.adoption import (
    run_adoption_experiment,
    single_scan_false_positives,
)

from _util import emit

NUM_DOMAINS = 10000
OUTAGE_RATE = 0.02


def run_ablation():
    single = single_scan_false_positives(
        num_domains=NUM_DOMAINS, seed=42, transient_outage_rate=OUTAGE_RATE
    )
    two_scan = run_adoption_experiment(
        num_domains=NUM_DOMAINS,
        seed=42,
        transient_outage_rate=OUTAGE_RATE,
        glue_elision_rate=0.0,
    )
    return single, two_scan


def test_ablation_two_scan_protocol(benchmark):
    single, two_scan = benchmark.pedantic(run_ablation, rounds=2, iterations=1)

    table = render_table(
        headers=("Protocol", "Correctly classified", "Misclassified"),
        rows=[
            (
                "single scan (candidates)",
                single["true_positives"],
                single["false_positives"],
            ),
            (
                "two scans, 2 months apart",
                two_scan.confusion["correct"],
                two_scan.confusion["wrong"],
            ),
        ],
        title=f"Nolisting detection with {OUTAGE_RATE:.0%} transient outages",
    )
    emit("Ablation — two-scan differential protocol", table)

    # A single scan misclassifies flapping domains as nolisting candidates.
    assert single["false_positives"] > 0
    # The two-scan protocol removes every false positive.
    assert two_scan.confusion["wrong"] == 0
    # Without losing the true adopters.
    assert single["true_positives"] > 0
