"""The nolisting detection pipeline (paper §IV.A).

Classification of one domain from one scan is the paper's three-step
process:

1. retrieve the domain's MX records from the DNS capture and check their
   correctness;
2. resolve the address of each record, ordered by priority (using the
   parallel re-resolution where the capture lacked glue);
3. look the addresses up in the SMTP banner-grab capture.

A domain whose primary MX is absent from the listening set while a
secondary is present is a *nolisting candidate*.  Because a candidate may
just have a malfunctioning primary, the protocol repeats the measurement
two months later: a domain counts as nolisting only when it is a candidate
in **both** scans, and as not-nolisting as soon as its primary answered in
at least one scan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .datasets import DNSScanDataset, DomainObservation, SMTPScanDataset


class DomainClass(enum.Enum):
    """The Figure 2 pie-chart buckets."""

    ONE_MX = "one-mx"
    MULTI_MX_NO_NOLISTING = "multi-mx"
    NOLISTING = "nolisting"
    DNS_MISCONFIGURED = "misconfigured"


class SingleScanVerdict(enum.Enum):
    """What one scan alone can say about a domain."""

    ONE_MX = "one-mx"
    PRIMARY_UP = "primary-up"              # definitely not nolisting
    NOLISTING_CANDIDATE = "candidate"      # primary down, a secondary up
    ALL_DOWN = "all-down"                  # nothing answered
    MISCONFIGURED = "misconfigured"        # no usable MX records
    UNKNOWN = "unknown"                    # SERVFAIL/timeout: scan saw nothing


@dataclass
class DomainVerdict:
    """Final two-scan classification of one domain."""

    domain: str
    domain_class: DomainClass
    scan_verdicts: List[SingleScanVerdict] = field(default_factory=list)


def classify_single_scan(
    observation: Optional[DomainObservation],
    smtp: SMTPScanDataset,
) -> SingleScanVerdict:
    """Steps 1-3 for one domain in one scan."""
    if observation is None or observation.nxdomain:
        return SingleScanVerdict.MISCONFIGURED
    if observation.failed_transiently:
        # SERVFAIL / timeout: the scan learned nothing about this domain.
        return SingleScanVerdict.UNKNOWN
    resolved = [record for record in observation.sorted_mx() if record.resolved]
    if not resolved:
        return SingleScanVerdict.MISCONFIGURED
    if len(resolved) == 1:
        return SingleScanVerdict.ONE_MX
    primary, *secondaries = resolved
    assert primary.address is not None
    if primary.address in smtp:
        return SingleScanVerdict.PRIMARY_UP
    if any(s.address in smtp for s in secondaries if s.address is not None):
        return SingleScanVerdict.NOLISTING_CANDIDATE
    return SingleScanVerdict.ALL_DOWN


def classify_two_scans(
    domain: str,
    verdict_a: SingleScanVerdict,
    verdict_b: SingleScanVerdict,
) -> DomainVerdict:
    """Combine the two single-scan verdicts per the paper's protocol.

    * primary operational in at least one scan → not using nolisting;
    * candidate in both scans → nolisting (or a persistent primary failure,
      "which is in practice equivalent to nolisting");
    * candidate in only one scan → a transient outage, not nolisting —
      this includes candidate + unknown, because the protocol demands
      confirmation in *both* scans before counting a domain as nolisting;
    * no usable MX in both scans → DNS misconfigured (a scan that saw
      nothing at all — SERVFAIL/timeout — in *both* rounds lands here too:
      the pipeline could never resolve the domain);
    * single MX → one-MX bucket (nolisting needs >= 2 records).
    """
    verdicts = [verdict_a, verdict_b]
    if SingleScanVerdict.PRIMARY_UP in verdicts:
        domain_class = DomainClass.MULTI_MX_NO_NOLISTING
    elif verdicts == [
        SingleScanVerdict.NOLISTING_CANDIDATE,
        SingleScanVerdict.NOLISTING_CANDIDATE,
    ]:
        domain_class = DomainClass.NOLISTING
    elif SingleScanVerdict.NOLISTING_CANDIDATE in verdicts:
        # Candidate in exactly one scan: a transient outage, not nolisting.
        domain_class = DomainClass.MULTI_MX_NO_NOLISTING
    elif SingleScanVerdict.ONE_MX in verdicts:
        domain_class = DomainClass.ONE_MX
    elif SingleScanVerdict.ALL_DOWN in verdicts:
        # Multi-MX but nothing ever answered: a dead deployment; the paper's
        # pipeline cannot call it nolisting, and it is not a DNS problem.
        domain_class = DomainClass.MULTI_MX_NO_NOLISTING
    else:
        domain_class = DomainClass.DNS_MISCONFIGURED
    return DomainVerdict(
        domain=domain, domain_class=domain_class, scan_verdicts=verdicts
    )


#: What one scan alone would conclude — the no-repeat ablation.  A
#: candidate becomes "nolisting" outright (no second scan to confirm), and
#: a transient resolution failure is indistinguishable from a DNS problem.
_SINGLE_SCAN_CLASS: Dict[SingleScanVerdict, DomainClass] = {
    SingleScanVerdict.ONE_MX: DomainClass.ONE_MX,
    SingleScanVerdict.PRIMARY_UP: DomainClass.MULTI_MX_NO_NOLISTING,
    SingleScanVerdict.NOLISTING_CANDIDATE: DomainClass.NOLISTING,
    SingleScanVerdict.ALL_DOWN: DomainClass.MULTI_MX_NO_NOLISTING,
    SingleScanVerdict.MISCONFIGURED: DomainClass.DNS_MISCONFIGURED,
    SingleScanVerdict.UNKNOWN: DomainClass.DNS_MISCONFIGURED,
}


def summarize_single_scan(
    dns: "DNSScanDataset", smtp: "SMTPScanDataset"
) -> "AdoptionSummary":
    """Classify every domain from ONE scan pair — the transient-outage
    ablation.

    This is what the paper's measurement would have reported had it not
    repeated the scan two months later: every transiently-down primary
    counts as nolisting, every resolver hiccup as a misconfiguration.
    Comparing this against :meth:`NolistingDetector.summarize` quantifies
    the value of the repeat-scan filter.
    """
    counts = {c: 0 for c in DomainClass}
    total = 0
    for observation in dns:
        verdict = classify_single_scan(observation, smtp)
        counts[_SINGLE_SCAN_CLASS[verdict]] += 1
        total += 1
    return AdoptionSummary(total_domains=total, counts=counts)


@dataclass
class AdoptionSummary:
    """Aggregated Figure 2 result."""

    total_domains: int
    counts: Dict[DomainClass, int]
    #: domains that changed single-scan verdict between the two scans
    flapped: int = 0
    #: mail-server coverage figures reported alongside Figure 2
    servers_covered: int = 0
    addresses_covered: int = 0

    def fraction(self, domain_class: DomainClass) -> float:
        if self.total_domains == 0:
            return 0.0
        return self.counts.get(domain_class, 0) / self.total_domains

    def percentages(self) -> Dict[DomainClass, float]:
        return {c: 100.0 * self.fraction(c) for c in DomainClass}


class NolistingDetector:
    """Runs the full two-scan classification over a scan pair."""

    def __init__(
        self,
        dns_a: DNSScanDataset,
        smtp_a: SMTPScanDataset,
        dns_b: DNSScanDataset,
        smtp_b: SMTPScanDataset,
    ) -> None:
        self.dns_a = dns_a
        self.smtp_a = smtp_a
        self.dns_b = dns_b
        self.smtp_b = smtp_b

    def classify_domain(self, domain: str) -> DomainVerdict:
        verdict_a = classify_single_scan(self.dns_a.get(domain), self.smtp_a)
        verdict_b = classify_single_scan(self.dns_b.get(domain), self.smtp_b)
        return classify_two_scans(domain, verdict_a, verdict_b)

    def classify_all(self) -> List[DomainVerdict]:
        domains = sorted(
            set(self.dns_a.observations) | set(self.dns_b.observations)
        )
        return [self.classify_domain(domain) for domain in domains]

    def summarize(self) -> AdoptionSummary:
        verdicts = self.classify_all()
        counts = {c: 0 for c in DomainClass}
        flapped = 0
        for verdict in verdicts:
            counts[verdict.domain_class] += 1
            if verdict.scan_verdicts[0] != verdict.scan_verdicts[1]:
                flapped += 1
        servers = sum(
            len(obs.mx) for obs in self.dns_a
        )
        addresses = sum(
            sum(1 for record in obs.mx if record.resolved) for obs in self.dns_a
        )
        return AdoptionSummary(
            total_domains=len(verdicts),
            counts=counts,
            flapped=flapped,
            servers_covered=servers,
            addresses_covered=addresses,
        )
