"""Triplet-database growth under spam load (the §VI disk-space cost).

Every spam attempt from an unknown triplet inserts a database entry even
though the message is rejected — so the *spammers* control the size of the
greylisting database.  A sender that rotates envelope senders (trivial for
a bot) mints a fresh triplet per attempt and never benefits from its own
history; the server pays for each one until the retry window expires it.

This experiment drives a greylisted server with rotating-sender spam plus
a benign baseline and tracks database entries/bytes over time, with and
without periodic cleanup sweeps — quantifying the resource cost the paper
says must be weighed against the techniques' benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..greylist.persistence import snapshot_size_bytes
from ..greylist.policy import GreylistPolicy
from ..greylist.store import TripletStore
from ..net.address import AddressPool, IPv4Network
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream

DAY = 86400.0


@dataclass
class DBGrowthPoint:
    """Database size at one sample instant."""

    time: float
    entries: int
    size_bytes: int


@dataclass
class CostAttackResult:
    """Database growth trajectory of one run."""

    retry_window_days: float
    sweeping: bool
    samples: List[DBGrowthPoint] = field(default_factory=list)
    spam_attempts: int = 0
    benign_attempts: int = 0

    @property
    def peak_entries(self) -> int:
        return max(p.entries for p in self.samples) if self.samples else 0

    @property
    def final_entries(self) -> int:
        return self.samples[-1].entries if self.samples else 0

    @property
    def peak_bytes(self) -> int:
        return max(p.size_bytes for p in self.samples) if self.samples else 0


def run_cost_attack(
    spam_per_day: int = 500,
    benign_per_day: int = 50,
    duration_days: float = 14.0,
    retry_window_days: float = 2.0,
    sweep_interval_days: float = 1.0,
    sweeping: bool = True,
    seed: int = 41,
    store_backend: str = "memory",
    store_path: Optional[str] = None,
) -> CostAttackResult:
    """Rotating-sender spam vs a greylisted server; track DB growth.

    ``store_backend``/``store_path`` select the triplet-store backend
    (:mod:`repro.greylist.backends`); the growth trajectory is identical
    across backends.
    """
    if spam_per_day < 0 or benign_per_day < 0:
        raise ValueError("volumes must be non-negative")
    from ..greylist.backends import create_backend

    scheduler = EventScheduler(Clock())
    store = TripletStore(
        scheduler.clock,
        retry_window=retry_window_days * DAY,
        backend=create_backend(store_backend, store_path),
    )
    policy = GreylistPolicy(clock=scheduler.clock, delay=300.0, store=store)
    spam_pool = AddressPool(IPv4Network.parse("198.51.0.0/16"))
    rng = RandomStream(seed, "cost-attack")
    result = CostAttackResult(
        retry_window_days=retry_window_days, sweeping=sweeping
    )

    horizon = duration_days * DAY
    spam_rng = rng.split("spam-times")
    benign_rng = rng.split("benign-times")

    # Rotating-sender spam: fresh sender (and often a fresh bot IP) per
    # message, fire-and-forget — pure database pollution.
    total_spam = int(spam_per_day * duration_days)
    bot_addresses = spam_pool.allocate_many(max(1, total_spam // 50))
    for index in range(total_spam):
        when = spam_rng.uniform(0.0, horizon)
        client = bot_addresses[index % len(bot_addresses)]
        sender = f"x{index}@throwaway{index % 997}.example"

        def spam_attempt(client=client, sender=sender):
            policy.on_rcpt_to(client, sender, "victim@victim.example")
            result.spam_attempts += 1

        scheduler.schedule_at(when, spam_attempt)

    # Benign senders: stable triplets that retry once past the threshold.
    total_benign = int(benign_per_day * duration_days)
    benign_address = spam_pool.allocate()
    for index in range(total_benign):
        when = benign_rng.uniform(0.0, horizon - 700.0)
        sender = f"person{index % 200}@partner.example"
        recipient = f"staff{index % 40}@victim.example"

        def benign_attempt(client=benign_address, sender=sender,
                           recipient=recipient):
            decision = policy.on_rcpt_to(client, sender, recipient)
            result.benign_attempts += 1
            if not decision.accept:
                scheduler.schedule_in(
                    400.0,
                    lambda: policy.on_rcpt_to(client, sender, recipient),
                )

        scheduler.schedule_at(when, benign_attempt)

    # Daily sampling (and optional sweeping).
    def sample(day: int) -> None:
        if sweeping:
            store.sweep()
        result.samples.append(
            DBGrowthPoint(
                time=scheduler.now,
                entries=store.size,
                size_bytes=snapshot_size_bytes(store),
            )
        )
        if day < int(duration_days):
            scheduler.schedule_in(
                sweep_interval_days * DAY, lambda: sample(day + 1)
            )

    scheduler.schedule_at(0.0, lambda: sample(0))
    scheduler.run(until=horizon)
    return result


def compare_sweeping(
    duration_days: float = 14.0, seed: int = 41
) -> Tuple[CostAttackResult, CostAttackResult]:
    """Same load, with and without expiry sweeps."""
    unswept = run_cost_attack(
        duration_days=duration_days, sweeping=False, seed=seed
    )
    swept = run_cost_attack(
        duration_days=duration_days, sweeping=True, seed=seed
    )
    return unswept, swept
