"""Interprocedural rules run over the project call graph.

These are the whole-program successors of the per-file checkers: each
rule sees every module at once, so a nondeterministic source hidden two
calls deep behind an engine entry point — which CLK001/RNG001 cannot see
from inside one file — is caught here.

* **DET001** — determinism taint: functions transitively reachable from
  engine entry points (``run_adoption_experiment``, batch/columnar shard
  replay, the shard task functions, every ``TripletBackend``
  implementation) must not reach wall-clock reads, the global ``random``
  module, environment reads, or unordered-iteration sinks.
* **RNG002** — a ``RandomStream``/``rng`` value captured into a shard
  payload that crosses the ``run_tasks`` process boundary (RNG state
  must be re-derived from ``seed:label`` inside the worker, never
  pickled).
* **SHM001** — module-level mutable containers: shared state that breaks
  the moment the policy engine serves from multiple workers.
* **ASY001** — blocking calls (``time.sleep``, SQLite, file I/O,
  subprocesses) reachable from any ``async def``: they stall the event
  loop the asyncio policy daemon will run on.
* **CCH001** — shard-payload cache-key stability: optional payload keys
  (those the task function reads with ``payload.get(...)``) may only be
  added *off* their defaults, so pre-existing cache entries keep their
  identity when a new knob ships.

Suppression works exactly like the per-file rules: ``# repro: noqa
RULE-ID`` on the *flagged line* (for DET001/ASY001 that is the sink call
site, so one annotation covers every entry point that reaches it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, Severity
from ..framework import dotted_name
from .project import CallSite, Key, Project
from .symbols import FunctionSymbol, ModuleSymbols

# ----------------------------------------------------------------------
# Rule base
# ----------------------------------------------------------------------


class GraphRule:
    """One interprocedural rule: id, severity, ``check(project)``."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        **extra: object,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            extra=dict(extra) if extra else {},
        )


def _analyzable(ms: ModuleSymbols) -> bool:
    """Graph rules skip test trees, like most per-file checkers."""
    return not ms.is_tests


def _is_cli_module(ms: ModuleSymbols) -> bool:
    name = ms.path.rsplit("/", 1)[-1]
    return name in ("cli.py", "__main__.py")


def _path_text(project: Project, path: List[Key]) -> str:
    return " -> ".join(qualname for _, qualname in path)


# ----------------------------------------------------------------------
# DET001 — determinism taint from engine entry points
# ----------------------------------------------------------------------

#: ``(module_path, function_name)`` engine entry points.
ENTRY_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("core/adoption.py", "run_adoption_experiment"),
    ("scan/batch.py", "batched_adoption_shard"),
    ("scan/columnar.py", "columnar_adoption_shard"),
)

#: Modules whose every public top-level function is an entry point (the
#: shard tasks workers execute).
ENTRY_MODULES: Tuple[str, ...] = ("runner/shards.py",)

#: Classes whose every subclass method is an entry point (storage
#: backends run inside workers and, soon, serving processes).
ENTRY_BASE_CLASSES: Tuple[str, ...] = ("TripletBackend",)

#: The one module allowed to touch :mod:`random` (it wraps it).
RNG_MODULE = "sim/rng.py"

#: Wall-clock call patterns, matching the per-file CLK001 set.
WALL_CLOCK_CALLS = frozenset(
    [
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    ]
)

#: Environment / ambient-entropy reads.
ENVIRONMENT_CALLS = frozenset(
    [("os", "getenv"), ("os", "urandom"), ("uuid", "uuid4"), ("uuid", "uuid1")]
)

#: Unordered-iteration sinks: filesystem listings come back in inode
#: order, which differs across hosts and runs.
UNORDERED_CALLS = frozenset(
    [("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob")]
)
UNORDERED_METHODS = frozenset(["iterdir", "glob", "rglob"])


@dataclass(frozen=True)
class SinkHit:
    """One nondeterminism sink inside one function."""

    line: int
    col: int
    call: str
    kind: str


def _canonical_chain(
    project: Project, ms: ModuleSymbols, chain: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Rewrite a chain's head through import aliases when possible."""
    from .project import ExternalRef, ModuleRef

    head = project.resolve_name(ms, chain[0])
    if isinstance(head, ExternalRef):
        return head.chain + chain[1:]
    if isinstance(head, ModuleRef):
        dotted = project.modules[head.path].dotted
        if dotted is not None:
            return tuple(dotted.split(".")) + chain[1:]
    return chain


def _classify_chain(chain: Tuple[str, ...]) -> Optional[str]:
    if len(chain) >= 2 and chain[-2:] in WALL_CLOCK_CALLS:
        return "wall-clock"
    if chain[0] == "random":
        return "global-rng"
    if len(chain) >= 2 and chain[:2] == ("os", "environ"):
        return "environment"
    if len(chain) >= 2 and chain[-2:] in ENVIRONMENT_CALLS:
        return "environment"
    if len(chain) >= 2 and chain[-2:] in UNORDERED_CALLS:
        return "unordered-iteration"
    return None


def determinism_sinks(
    project: Project, ms: ModuleSymbols, fn: FunctionSymbol
) -> List[SinkHit]:
    """Nondeterminism sinks syntactically present in one function."""
    hits: Dict[Tuple[int, str], SinkHit] = {}

    def add(line: int, col: int, call: str, kind: str) -> None:
        hits.setdefault((line, kind), SinkHit(line, col, call, kind))

    node = project.nodes.get(fn.key)
    if node is not None:
        for site in node.calls:
            if site.chain is not None:
                kind = _classify_chain(site.chain)
                if kind is not None:
                    add(site.line, site.col, ".".join(site.chain), kind)
            if site.attr in UNORDERED_METHODS and not site.targets:
                add(site.line, site.col, f".{site.attr}()", "unordered-iteration")
    # Attribute reads that are not calls: ``os.environ["K"]``,
    # ``random.seed`` passed as a value, an aliased ``rnd.random``.
    for expr in ast.walk(fn.node):
        if not isinstance(expr, ast.Attribute):
            continue
        chain = dotted_name(expr)
        if chain is None:
            continue
        chain = _canonical_chain(project, ms, chain)
        kind = _classify_chain(chain)
        if kind is not None:
            add(expr.lineno, expr.col_offset + 1, ".".join(chain), kind)
    return [hits[key] for key in sorted(hits)]


#: Why each sink kind breaks the determinism contract.
_SINK_ADVICE = {
    "wall-clock": "read time from the shared virtual Clock (repro.sim.clock)",
    "global-rng": "thread a RandomStream split from the experiment seed",
    "environment": "results must not depend on host environment state",
    "unordered-iteration": "sort the listing before iterating",
}


def iter_entry_points(project: Project) -> List[FunctionSymbol]:
    """The engine entry points DET001 taints from, deterministically ordered."""
    entries: Dict[Key, FunctionSymbol] = {}
    for module_path, name in ENTRY_FUNCTIONS:
        ms = project.modules.get(module_path)
        if ms is not None and name in ms.functions:
            fn = ms.functions[name]
            entries[fn.key] = fn
    for module_path in ENTRY_MODULES:
        ms = project.modules.get(module_path)
        if ms is None:
            continue
        for fn in ms.functions.values():
            if not fn.name.startswith("_"):
                entries[fn.key] = fn
    for cls in project.classes.values():
        names = {cls.name} | {a.name for a in project.ancestors(cls)}
        if not names & set(ENTRY_BASE_CLASSES):
            continue
        for method in cls.methods.values():
            entries[method.key] = method
    return [entries[key] for key in sorted(entries)]


class TaintedEntryPoint(GraphRule):
    rule_id = "DET001"
    severity = Severity.ERROR
    description = (
        "nondeterministic sink (wall-clock, global random, environment, "
        "unordered iteration) transitively reachable from an engine "
        "entry point"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        entries = iter_entry_points(project)
        if not entries:
            return
        skip: Set[Key] = set()
        for ms in project.modules.values():
            if ms.is_tests or _is_cli_module(ms):
                for fn_key in project.nodes:
                    if fn_key[0] == ms.path:
                        skip.add(fn_key)
        parents = project.reachable_from(
            (fn.key for fn in entries), skip=skip
        )
        reported: Set[Tuple[str, int, str]] = set()
        for key in parents:
            module_path, _ = key
            ms = project.modules[module_path]
            if ms.path == RNG_MODULE or _is_cli_module(ms) or ms.is_tests:
                continue
            fn = project.functions[key]
            for hit in determinism_sinks(project, ms, fn):
                identity = (module_path, hit.line, hit.kind)
                if identity in reported:
                    continue
                reported.add(identity)
                path = project.call_path(parents, key)
                entry = path[0]
                yield self.finding(
                    module_path,
                    hit.line,
                    hit.col,
                    f"{hit.kind} sink `{hit.call}` is reachable from "
                    f"engine entry point `{entry[1]}` ({entry[0]}) via "
                    f"{_path_text(project, path)}; "
                    f"{_SINK_ADVICE[hit.kind]}",
                    kind=hit.kind,
                    entry=f"{entry[0]}::{entry[1]}",
                )


# ----------------------------------------------------------------------
# Shared helper: calls that cross the run_tasks process boundary
# ----------------------------------------------------------------------

#: Resolved identities of the process-boundary dispatchers.
DISPATCH_KEYS = frozenset(
    [("runner/pool.py", "run_tasks"), ("runner/pool.py", "ExperimentRunner.map")]
)
#: Fallback spellings when the pool module is outside the analyzed set.
DISPATCH_NAMES = frozenset(["run_tasks"])


def _dispatch_sites(
    project: Project, fn: FunctionSymbol
) -> List[CallSite]:
    """Call sites in ``fn`` that hand payloads to the process pool."""
    node = project.nodes.get(fn.key)
    if node is None:
        return []
    sites = []
    for site in node.calls:
        if any(target in DISPATCH_KEYS for target in site.targets):
            sites.append(site)
        elif site.chain is not None and (
            site.chain[-1] in DISPATCH_NAMES
            or (len(site.chain) == 2 and site.chain[-1] == "map")
        ):
            if not site.targets:
                sites.append(site)
    return sites


def _payloads_argument(site: CallSite) -> Optional[ast.expr]:
    call = site.node
    is_method = site.chain is not None and site.chain[-1] == "map"
    index = 1
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg == "payloads":
            return keyword.value
    if is_method and len(call.args) > index:
        return call.args[index]
    return None


def _payload_expressions(
    fn: FunctionSymbol, expr: Optional[ast.expr]
) -> List[ast.expr]:
    """The expressions that build the payload list (following one Name hop)."""
    if expr is None:
        return []
    if not isinstance(expr, ast.Name):
        return [expr]
    name = expr.id
    found: List[ast.expr] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and node.value is not None:
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    found.append(node.value)
    return found


# ----------------------------------------------------------------------
# RNG002 — RNG state captured into a shard payload
# ----------------------------------------------------------------------


def _is_rng_expression(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is not None and chain[-1] == "RandomStream":
                return True
        if isinstance(node, ast.Name) and node.id == "rng":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "rng":
            return True
    return False


class RngAcrossProcessBoundary(GraphRule):
    rule_id = "RNG002"
    severity = Severity.ERROR
    description = (
        "RandomStream/rng value captured into a shard payload crossing "
        "the run_tasks process boundary; pass a seed and re-derive"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for ms in project.modules.values():
            if not _analyzable(ms):
                continue
            for key, node in project.nodes.items():
                if key[0] != ms.path:
                    continue
                fn = node.symbol
                for site in _dispatch_sites(project, fn):
                    for expr in _payload_expressions(
                        fn, _payloads_argument(site)
                    ):
                        yield from self._check_payload(ms, expr)

    def _check_payload(
        self, ms: ModuleSymbols, expr: ast.expr
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            values: List[ast.expr] = []
            if isinstance(node, ast.Dict):
                values = [v for v in node.values if v is not None]
            elif isinstance(node, (ast.List, ast.Tuple)):
                values = [
                    v for v in node.elts if isinstance(v, (ast.Name, ast.Attribute))
                ]
            for value in values:
                if _is_rng_expression(value):
                    yield self.finding(
                        ms.path,
                        value.lineno,
                        value.col_offset + 1,
                        "RNG state captured into a shard payload: RandomStream "
                        "objects must not cross the run_tasks process "
                        "boundary — pass the integer seed (seed:label "
                        "scheme) and re-derive the stream in the worker",
                    )


# ----------------------------------------------------------------------
# SHM001 — module-level mutable shared state
# ----------------------------------------------------------------------


class SharedMutableModuleState(GraphRule):
    rule_id = "SHM001"
    severity = Severity.WARNING
    description = (
        "module-level mutable container: shared state that diverges "
        "across pool workers and breaks multi-worker serving"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for path in sorted(project.modules):
            ms = project.modules[path]
            if ms.dotted is None or not _analyzable(ms):
                continue
            for name in sorted(ms.globals):
                binding = ms.globals[name]
                if not binding.is_container:
                    continue
                if name.startswith("__"):
                    continue  # __all__ and friends: interpreter protocol
                if (
                    binding.constant_named or binding.is_final
                ) and not binding.mutated:
                    continue
                if binding.mutated:
                    message = (
                        f"module-level container `{name}` is mutated at "
                        "runtime; every pool worker and every serving "
                        "process gets its own divergent copy — move the "
                        "state into an object threaded through the call "
                        "path (or a TripletBackend)"
                    )
                else:
                    message = (
                        f"module-level mutable container `{name}` is "
                        "shared state once multiple workers serve the "
                        "policy engine; freeze it (tuple/frozenset), "
                        "rename it as a CONSTANT, or move it into an "
                        "object threaded through the call path"
                    )
                yield self.finding(
                    ms.path, binding.lineno, binding.col, message, name=name
                )


# ----------------------------------------------------------------------
# ASY001 — blocking calls reachable from async functions
# ----------------------------------------------------------------------

BLOCKING_CALLS = frozenset(
    [
        ("time", "sleep"),
        ("os", "system"),
        ("sqlite3", "connect"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("socket", "create_connection"),
    ]
)
BLOCKING_METHODS = frozenset(
    ["read_text", "write_text", "read_bytes", "write_bytes", "commit"]
)


def _blocking_sinks(project: Project, fn: FunctionSymbol) -> List[SinkHit]:
    node = project.nodes.get(fn.key)
    if node is None:
        return []
    hits: List[SinkHit] = []
    for site in node.calls:
        if site.chain is not None:
            if site.chain[-2:] in BLOCKING_CALLS:
                hits.append(
                    SinkHit(site.line, site.col, ".".join(site.chain), "blocking")
                )
                continue
            if site.chain == ("open",):
                hits.append(SinkHit(site.line, site.col, "open", "blocking"))
                continue
        if site.attr in BLOCKING_METHODS and not site.targets:
            hits.append(
                SinkHit(site.line, site.col, f".{site.attr}()", "blocking")
            )
    return hits


class BlockingCallInAsync(GraphRule):
    rule_id = "ASY001"
    severity = Severity.ERROR
    description = (
        "blocking call (sleep, SQLite, file I/O, subprocess) reachable "
        "from an async def; it stalls the event loop"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        async_fns = [
            fn
            for key, fn in sorted(project.functions.items())
            if fn.is_async and _analyzable(project.modules[fn.module_path])
        ]
        # Sync functions only: an async callee runs on the loop and is
        # audited as its own entry, so traversal stops at await points.
        async_keys = {fn.key for fn in async_fns}
        reported: Set[Tuple[str, int, str]] = set()
        for entry in async_fns:
            parents = project.reachable_from(
                [entry.key], skip=async_keys - {entry.key}
            )
            for key in parents:
                fn = project.functions[key]
                ms = project.modules[fn.module_path]
                if ms.is_tests:
                    continue
                for hit in _blocking_sinks(project, fn):
                    identity = (fn.module_path, hit.line, entry.qualname)
                    if identity in reported:
                        continue
                    reported.add(identity)
                    path = project.call_path(parents, key)
                    yield self.finding(
                        fn.module_path,
                        hit.line,
                        hit.col,
                        f"blocking call `{hit.call}` reachable from "
                        f"`async def {entry.qualname}` ({entry.module_path}) "
                        f"via {_path_text(project, path)}; await an async "
                        "equivalent or off-load to a worker thread",
                        entry=f"{entry.module_path}::{entry.qualname}",
                    )


# ----------------------------------------------------------------------
# CCH001 — shard-payload cache-key stability
# ----------------------------------------------------------------------


def optional_payload_keys(fn: FunctionSymbol) -> Set[str]:
    """Keys the task function reads with ``payload.get(...)``.

    Those are the *optional* payload keys: their absence must mean the
    default, so payload constructors may only add them off-default.
    """
    args = getattr(fn.node, "args", None)
    if args is None or not args.args:
        return set()
    first = args.args[0].arg
    if first in ("self", "cls") and len(args.args) > 1:
        first = args.args[1].arg
    keys: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id == first
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys


def _iter_with_ancestors(
    node: ast.AST, stack: Tuple[ast.AST, ...] = ()
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    yield node, stack
    for child in ast.iter_child_nodes(node):
        yield from _iter_with_ancestors(child, stack + (node,))


class CacheKeyInstability(GraphRule):
    rule_id = "CCH001"
    severity = Severity.ERROR
    description = (
        "optional shard-payload key set unconditionally; add it only "
        "off its default so cached results keep their identity"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for key in sorted(project.nodes):
            caller = project.nodes[key].symbol
            ms = project.modules[caller.module_path]
            if not _analyzable(ms):
                continue
            for site in _dispatch_sites(project, caller):
                task_fn = self._task_function(project, ms, site)
                if task_fn is None:
                    continue
                optional = optional_payload_keys(task_fn)
                if not optional:
                    continue
                payload_exprs = _payload_expressions(
                    caller, _payloads_argument(site)
                )
                yield from self._check_constructor(
                    ms, caller, task_fn, optional, payload_exprs
                )

    def _task_function(
        self, project: Project, ms: ModuleSymbols, site: CallSite
    ) -> Optional[FunctionSymbol]:
        call = site.node
        if not call.args:
            return None
        chain = dotted_name(call.args[0])
        if chain is None:
            return None
        if len(chain) == 1:
            resolved = project.resolve_name(ms, chain[0])
        else:
            resolved, _ = project.resolve_chain(ms, chain)
        return resolved if isinstance(resolved, FunctionSymbol) else None

    def _check_constructor(
        self,
        ms: ModuleSymbols,
        caller: FunctionSymbol,
        task_fn: FunctionSymbol,
        optional: Set[str],
        payload_exprs: Sequence[ast.expr],
    ) -> Iterator[Finding]:
        # Optional keys written as plain dict-literal keys are by
        # construction unconditional.  The blessed conditional idiom is
        # a ``**({...} if knob != default else {})`` unpack, whose inner
        # dict sits under an IfExp and is exempt.
        for expr in payload_exprs:
            for node, stack in _iter_with_ancestors(expr):
                if not isinstance(node, ast.Dict):
                    continue
                conditional = any(
                    isinstance(ancestor, (ast.IfExp, ast.If))
                    for ancestor in stack
                )
                if conditional:
                    continue
                for key_node in node.keys:
                    if (
                        isinstance(key_node, ast.Constant)
                        and isinstance(key_node.value, str)
                        and key_node.value in optional
                    ):
                        yield self._unconditional(
                            ms, task_fn, key_node, key_node.value
                        )
        # ``payload["engine"] = engine`` outside any ``if`` is equally
        # unconditional.  Names assigned from the payload expressions
        # (and the dispatch argument name itself) are the candidates.
        names = self._payload_names(caller, payload_exprs)
        for node, stack in _iter_with_ancestors(caller.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                    and target.slice.value in optional
                    and not any(
                        isinstance(ancestor, (ast.If, ast.IfExp))
                        for ancestor in stack
                    )
                ):
                    yield self._unconditional(
                        ms, task_fn, target, target.slice.value
                    )

    def _payload_names(
        self, caller: FunctionSymbol, payload_exprs: Sequence[ast.expr]
    ) -> Set[str]:
        names: Set[str] = set()
        expr_ids = {id(expr) for expr in payload_exprs}
        for node in ast.walk(caller.node):
            if isinstance(node, ast.Assign) and id(node.value) in expr_ids:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            if isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _unconditional(
        self,
        ms: ModuleSymbols,
        task_fn: FunctionSymbol,
        node: ast.AST,
        key: str,
    ) -> Finding:
        return self.finding(
            ms.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", -1) + 1,
            f"optional payload key `{key}` (read via payload.get in "
            f"`{task_fn.qualname}`, {task_fn.module_path}) is set "
            "unconditionally; add it only off its default — "
            '`**({"' + key + '": v} if v != DEFAULT else {})` — so '
            "existing cache entries keep their identity",
            key=key,
            task=f"{task_fn.module_path}::{task_fn.qualname}",
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

GRAPH_RULE_CLASSES = [
    TaintedEntryPoint,  # DET001
    RngAcrossProcessBoundary,  # RNG002
    SharedMutableModuleState,  # SHM001
    BlockingCallInAsync,  # ASY001
    CacheKeyInstability,  # CCH001
]


def default_graph_rules() -> List[GraphRule]:
    """A fresh instance of every registered interprocedural rule."""
    return [cls() for cls in GRAPH_RULE_CLASSES]
