"""Extension bench: greylisting x blacklisting synergy (§II rebuttal).

The paper's greylisting supporters argue that even against retrying
malware "the delay introduced in the delivery of spam messages can be
enough for the sender ... to be added into popular spammer blacklists".
This bench measures that claim end to end with the reactive-DNSBL
substrate.
"""

from repro.analysis.tables import format_seconds, render_table
from repro.core.synergy import (
    run_synergy_comparison,
    sweep_greylist_delay,
    sweep_listing_speed,
)

from _util import emit


def run_all():
    comparison = run_synergy_comparison(num_messages=10)
    rate_sweep = sweep_listing_speed(
        rates_per_hour=(2.0, 60.0, 600.0), num_messages=10
    )
    delay_sweep = sweep_greylist_delay(
        delays=(300.0, 3600.0, 21600.0), num_messages=10
    )
    return comparison, rate_sweep, delay_sweep


def test_blacklist_synergy(benchmark):
    comparison, rate_sweep, delay_sweep = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    table = render_table(
        headers=("Configuration", "Kelihos delivered", "DNSBL rejections"),
        rows=[
            (r.configuration, f"{r.delivered}/{r.num_messages}", r.dnsbl_rejections)
            for r in comparison
        ],
        title="Each defence alone vs stacked (fast telemetry, 300 s threshold)",
    )
    emit("Synergy — three-way comparison", table)
    table = render_table(
        headers=("Greylist delay", "Delivery rate"),
        rows=[
            (format_seconds(r.greylist_delay), f"{r.delivery_rate:.2f}")
            for r in delay_sweep
        ],
        title="Threshold sweep at a 60 reports/hour ecosystem",
    )
    emit("Synergy — how long a delay buys the blacklist time", table)

    greylist, dnsbl, both = comparison
    # Greylisting alone: Kelihos retries through it (Figure 3 result).
    assert not greylist.blocked
    # DNSBL alone: the first burst lands before the listing.
    assert not dnsbl.blocked
    # Stacked: the greylist delay outlives the listing time -> blocked.
    assert both.blocked
    assert both.dnsbl_rejections > 0

    # Delivery is monotone in ecosystem speed.
    rates = [r.delivery_rate for r in rate_sweep]
    assert rates[0] >= rates[-1]
    assert rates[-1] == 0.0

    # And a 6 h threshold converts even a slow blacklist into a win.
    assert not delay_sweep[0].blocked
    assert delay_sweep[-1].blocked
