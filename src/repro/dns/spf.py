"""SPF (Sender Policy Framework) records and evaluation.

SPF is the canonical sender-based pre-acceptance test the paper's
introduction groups greylisting and nolisting with (it cites openspf.org
among the sender-authentication approaches): the receiving server fetches
the sender domain's SPF policy from DNS (a TXT record) and checks whether
the connecting client address is authorized to send for that domain.

We implement the useful subset of RFC 7208: ``ip4`` mechanisms (with CIDR
lengths), ``a``/``mx`` mechanisms resolved through the simulated DNS, the
``all`` terminal, and the ``+ - ~ ?`` qualifiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.address import AddressError, IPv4Address, IPv4Network
from .records import normalize_name
from .resolver import DNSError, StubResolver


class SPFResult(enum.Enum):
    """RFC 7208 evaluation results (the subset that matters here)."""

    PASS = "pass"
    FAIL = "fail"
    SOFTFAIL = "softfail"
    NEUTRAL = "neutral"
    NONE = "none"          # no SPF record published
    PERMERROR = "permerror"  # unparseable record


_QUALIFIERS = {
    "+": SPFResult.PASS,
    "-": SPFResult.FAIL,
    "~": SPFResult.SOFTFAIL,
    "?": SPFResult.NEUTRAL,
}


@dataclass(frozen=True)
class SPFMechanism:
    """One mechanism of an SPF record."""

    qualifier: SPFResult
    kind: str                      # "ip4", "a", "mx", "all"
    value: Optional[str] = None    # the ip4 network, or None

    def __str__(self) -> str:
        prefix = {v: k for k, v in _QUALIFIERS.items()}[self.qualifier]
        prefix = "" if prefix == "+" else prefix
        if self.kind == "ip4":
            return f"{prefix}ip4:{self.value}"
        return f"{prefix}{self.kind}"


@dataclass(frozen=True)
class SPFRecord:
    """A parsed ``v=spf1`` policy."""

    domain: str
    mechanisms: Tuple[SPFMechanism, ...]

    def __str__(self) -> str:
        terms = " ".join(str(m) for m in self.mechanisms)
        return f"v=spf1 {terms}".strip()


class SPFSyntaxError(ValueError):
    """Raised for records we cannot parse."""


def parse_spf(domain: str, text: str) -> SPFRecord:
    """Parse a ``v=spf1 ...`` TXT payload.

    >>> record = parse_spf("x.net", "v=spf1 ip4:10.0.0.0/24 mx -all")
    >>> [m.kind for m in record.mechanisms]
    ['ip4', 'mx', 'all']
    """
    tokens = text.strip().split()
    if not tokens or tokens[0].lower() != "v=spf1":
        raise SPFSyntaxError(f"not an SPF record: {text!r}")
    mechanisms: List[SPFMechanism] = []
    for token in tokens[1:]:
        qualifier = SPFResult.PASS
        if token and token[0] in _QUALIFIERS:
            qualifier = _QUALIFIERS[token[0]]
            token = token[1:]
        token = token.lower()
        if token == "all":
            mechanisms.append(SPFMechanism(qualifier, "all"))
        elif token in ("a", "mx"):
            mechanisms.append(SPFMechanism(qualifier, token))
        elif token.startswith("ip4:"):
            value = token[4:]
            if "/" not in value:
                value += "/32"
            try:
                IPv4Network.parse(value)
            except AddressError as exc:
                raise SPFSyntaxError(f"bad ip4 network in {token!r}") from exc
            mechanisms.append(SPFMechanism(qualifier, "ip4", value))
        else:
            raise SPFSyntaxError(f"unsupported SPF term {token!r}")
    return SPFRecord(domain=normalize_name(domain), mechanisms=tuple(mechanisms))


def publish_spf(zone, domain: str, policy: str) -> None:
    """Add an SPF TXT record to a zone (validating it first)."""
    parse_spf(domain, policy)
    zone.add_txt(domain, policy)


class SPFEvaluator:
    """Evaluates the SPF policy of sender domains against client IPs."""

    def __init__(self, resolver: StubResolver) -> None:
        self.resolver = resolver
        self.evaluations = 0

    def lookup_record(self, domain: str) -> Optional[SPFRecord]:
        """Fetch and parse a domain's SPF record (None when absent)."""
        zone = self.resolver.zones.zone_for(domain)
        if zone is None:
            return None
        for record in zone.txt_records(domain):
            if record.text.lower().startswith("v=spf1"):
                return parse_spf(domain, record.text)
        return None

    def check(self, client: IPv4Address, sender_domain: str) -> SPFResult:
        """RFC 7208 check_host() for our mechanism subset."""
        self.evaluations += 1
        try:
            record = self.lookup_record(sender_domain)
        except SPFSyntaxError:
            return SPFResult.PERMERROR
        if record is None:
            return SPFResult.NONE
        for mechanism in record.mechanisms:
            if self._matches(mechanism, client, sender_domain):
                return mechanism.qualifier
        return SPFResult.NEUTRAL

    def _matches(
        self, mechanism: SPFMechanism, client: IPv4Address, domain: str
    ) -> bool:
        if mechanism.kind == "all":
            return True
        if mechanism.kind == "ip4":
            return client in IPv4Network.parse(mechanism.value)
        if mechanism.kind == "a":
            try:
                return any(
                    record.address == client
                    for record in self.resolver.resolve_a(domain)
                )
            except DNSError:
                return False
        if mechanism.kind == "mx":
            try:
                answer = self.resolver.resolve_mx(domain)
            except DNSError:
                return False
            for mx in answer.records:
                address = answer.additional.get(mx.exchange)
                if address is None:
                    try:
                        address = self.resolver.resolve_address(mx.exchange)
                    except DNSError:
                        continue
                if address == client:
                    return True
            return False
        return False
