"""Tests for the pre- vs post-acceptance filtering comparison."""

import pytest

from repro.core.filter_comparison import compare_filtering, run_filter_comparison


@pytest.fixture(scope="module")
def results():
    return {r.configuration: r for r in compare_filtering()}


class TestFilterComparison:
    def test_greylist_blocks_only_fire_and_forget(self, results):
        greylist = results["greylist"]
        assert greylist.spam_block_rate == pytest.approx(0.5)

    def test_content_filter_blocks_template_spam(self, results):
        content = results["content"]
        assert content.spam_block_rate == 1.0
        assert content.benign_false_positives == 0

    def test_stack_blocks_everything(self, results):
        both = results["both"]
        assert both.spam_block_rate == 1.0

    def test_no_benign_mail_lost_anywhere(self, results):
        for result in results.values():
            assert result.benign_delivered == result.benign_sent

    def test_bandwidth_asymmetry(self, results):
        # Content filtering pays full body bytes for every spam; the stack
        # saves the fire-and-forget half by rejecting pre-DATA.
        assert (
            results["both"].spam_bytes_received
            < results["content"].spam_bytes_received
        )

    def test_delay_asymmetry(self, results):
        # Greylisting delays benign mail; pure content filtering does not.
        assert results["content"].benign_mean_delay == 0.0
        assert results["greylist"].benign_mean_delay >= 300.0

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            run_filter_comparison("bogus")
