"""Process-pool task execution with deterministic, ordered merge.

The experiments this repository reproduces are embarrassingly parallel at
two granularities: *across* runs (seed sweeps, parameter grids) and
*within* the Figure 2 scan (chunks of the domain population).  Both reduce
to the same shape — a pure, module-level function applied to a list of
JSON-able payloads — which :func:`run_tasks` executes either inline or on
a :class:`concurrent.futures.ProcessPoolExecutor`.

Two invariants make parallel runs safe to substitute for serial ones:

* **ordered merge** — results always come back in payload order, no matter
  which worker finished first, so any fold over them is deterministic;
* **pure tasks** — task functions derive all randomness from the payload
  (the ``seed:label`` RNG-splitting scheme), so a payload's result is
  identical in any process.

A :class:`~repro.runner.cache.ResultCache` can be threaded through: cached
payloads are skipped, fresh results are written back (from the coordinator
process only — workers never touch the cache, so there are no concurrent
writers).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cache import ResultCache

logger = logging.getLogger(__name__)

TaskFn = Callable[[Dict[str, Any]], Any]

_SENTINEL = object()


class TaskFailure(RuntimeError):
    """A payload failed even after its inline retry.

    Carries the payload ``index`` so a long sweep's error points at the
    exact grid point that died, not just at :func:`run_tasks`.  The
    exception chains from the *first* attempt's error (``__cause__``), so
    the traceback that reaches the user shows where the failure
    originally happened; the retry's error stays reachable as
    :attr:`retry_error`.
    """

    def __init__(
        self,
        index: int,
        cause: BaseException,
        retry_error: Optional[BaseException] = None,
    ) -> None:
        message = f"payload {index} failed twice (original error: {cause!r})"
        if retry_error is not None and repr(retry_error) != repr(cause):
            message += f"; retry raised {retry_error!r}"
        super().__init__(message)
        self.index = index
        self.retry_error = retry_error


#: What a *worker crash* — as opposed to the task's own logic — surfaces
#: at ``Future.result()``: the pool marks itself broken, or the IPC pipe
#: to the dead process fails mid-transfer.  These are environmental, so
#: the payload deserves a clean inline re-run (retry included); anything
#: else is the task's own exception and gets exactly one more attempt.
WORKER_CRASH_ERRORS = (BrokenProcessPool, OSError, EOFError)


def effective_workers(workers: Optional[int]) -> int:
    """Normalize a worker count: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return int(workers)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap start, inherits imports); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_tasks(
    fn: TaskFn,
    payloads: Sequence[Dict[str, Any]],
    *,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    experiment: Optional[str] = None,
) -> List[Any]:
    """Apply ``fn`` to every payload; results in payload order.

    Parameters
    ----------
    fn:
        A *module-level* function of one JSON-able dict payload (it must
        pickle to cross the process boundary).
    workers:
        ``1`` runs inline (the serial path — same code, same results);
        ``N > 1`` fans uncached payloads over N processes; ``0``/``None``
        uses one worker per CPU.
    cache, experiment:
        When both are given, each payload is looked up under
        ``(experiment, payload)`` first and fresh results are stored back.
        Cached values must therefore be JSON-able.
    """
    payloads = list(payloads)
    if cache is not None and experiment is None:
        raise ValueError("caching requires an experiment name")
    results: List[Any] = [_SENTINEL] * len(payloads)

    pending: List[int] = []
    if cache is not None:
        for index, payload in enumerate(payloads):
            value = cache.get(experiment, payload, default=_SENTINEL)
            if value is _SENTINEL:
                pending.append(index)
            else:
                results[index] = value
    else:
        pending = list(range(len(payloads)))

    count = effective_workers(workers)
    if pending:
        if count <= 1 or len(pending) == 1:
            for index in pending:
                results[index] = _run_one(fn, payloads, index)
        else:
            failed: List[int] = []
            with ProcessPoolExecutor(
                max_workers=min(count, len(pending)),
                mp_context=_pool_context(),
            ) as executor:
                futures = {
                    index: executor.submit(fn, payloads[index])
                    for index in pending
                }
                for index, future in futures.items():
                    try:
                        results[index] = future.result()
                    except WORKER_CRASH_ERRORS as error:
                        # The worker died outright (os._exit, OOM kill):
                        # the pool breaks and every in-flight future fails.
                        # The sweep survives — the payload is re-run
                        # inline below.
                        logger.warning(
                            "worker crashed on payload %d (%r); retrying "
                            "inline",
                            index,
                            error,
                        )
                        failed.append(index)
                    except Exception as error:
                        # The task itself raised.  It may still be flaky
                        # (first-touch initialization races, transient
                        # I/O), so the inline path gives it its retry.
                        logger.warning(
                            "task failed on payload %d (%r); retrying "
                            "inline",
                            index,
                            error,
                        )
                        failed.append(index)
            for index in failed:
                results[index] = _run_one(fn, payloads, index)
        if cache is not None:
            for index in pending:
                cache.put(experiment, payloads[index], results[index])
    return results


def _run_one(fn: TaskFn, payloads: Sequence[Dict[str, Any]], index: int) -> Any:
    """Run one payload inline, retrying once; raise TaskFailure after that.

    The single retry covers transient causes (a crashed worker, an OS-level
    hiccup); a payload that fails twice in this process is deterministic
    breakage and aborts the sweep with its index attached.
    """
    try:
        return fn(payloads[index])
    except Exception as first:
        logger.warning(
            "payload %d raised %r; retrying once", index, first
        )
        try:
            return fn(payloads[index])
        except Exception as second:
            raise TaskFailure(index, first, retry_error=second) from first


@dataclass
class ExperimentRunner:
    """Reusable workers + cache bundle for a batch of experiment calls.

    The CLI builds one of these from ``--workers`` and hands it to every
    experiment entry point it invokes::

        runner = ExperimentRunner(workers=4, cache=ResultCache())
        rows = runner.map(adoption_seed_task, payloads,
                          experiment="adoption-sensitivity")
    """

    workers: Optional[int] = 1
    cache: Optional[ResultCache] = None
    #: Total payloads dispatched and cache hits observed through this runner.
    dispatched: int = field(default=0, init=False)

    def map(
        self,
        fn: TaskFn,
        payloads: Sequence[Dict[str, Any]],
        experiment: Optional[str] = None,
    ) -> List[Any]:
        payloads = list(payloads)
        self.dispatched += len(payloads)
        return run_tasks(
            fn,
            payloads,
            workers=self.workers,
            cache=self.cache if experiment is not None else None,
            experiment=experiment,
        )
