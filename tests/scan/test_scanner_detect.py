"""Unit tests for the scanners and the nolisting detection pipeline."""

import pytest

from repro.net.address import IPv4Address
from repro.scan.datasets import (
    DNSScanDataset,
    DomainObservation,
    MXObservation,
    ScanPair,
    SMTPScanDataset,
)
from repro.scan.detect import (
    DomainClass,
    NolistingDetector,
    SingleScanVerdict,
    classify_single_scan,
    classify_two_scans,
)
from repro.scan.population import (
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)
from repro.scan.scanner import DNSScanner, SMTPScanner
from repro.sim.rng import RandomStream


def addr(text):
    return IPv4Address.parse(text)


def observation(domain="d.example", mx=None, nxdomain=False):
    return DomainObservation(domain=domain, mx=mx or [], nxdomain=nxdomain)


def smtp_with(*addresses):
    dataset = SMTPScanDataset(scan_index=0)
    for a in addresses:
        dataset.add(addr(a))
    return dataset


class TestClassifySingleScan:
    def test_one_mx(self):
        obs = observation(
            mx=[MXObservation(10, "smtp.d.example", addr("1.1.1.1"))]
        )
        verdict = classify_single_scan(obs, smtp_with("1.1.1.1"))
        assert verdict is SingleScanVerdict.ONE_MX

    def test_primary_up(self):
        obs = observation(
            mx=[
                MXObservation(0, "smtp.d.example", addr("1.1.1.1")),
                MXObservation(15, "smtp1.d.example", addr("1.1.1.2")),
            ]
        )
        verdict = classify_single_scan(obs, smtp_with("1.1.1.1", "1.1.1.2"))
        assert verdict is SingleScanVerdict.PRIMARY_UP

    def test_nolisting_candidate(self):
        obs = observation(
            mx=[
                MXObservation(0, "smtp.d.example", addr("1.1.1.1")),
                MXObservation(15, "smtp1.d.example", addr("1.1.1.2")),
            ]
        )
        verdict = classify_single_scan(obs, smtp_with("1.1.1.2"))
        assert verdict is SingleScanVerdict.NOLISTING_CANDIDATE

    def test_all_down(self):
        obs = observation(
            mx=[
                MXObservation(0, "smtp.d.example", addr("1.1.1.1")),
                MXObservation(15, "smtp1.d.example", addr("1.1.1.2")),
            ]
        )
        assert classify_single_scan(obs, smtp_with()) is SingleScanVerdict.ALL_DOWN

    def test_priority_order_decides_primary(self):
        # Records arrive unsorted; preference must decide who is primary.
        obs = observation(
            mx=[
                MXObservation(15, "smtp1.d.example", addr("1.1.1.2")),
                MXObservation(0, "smtp.d.example", addr("1.1.1.1")),
            ]
        )
        verdict = classify_single_scan(obs, smtp_with("1.1.1.2"))
        assert verdict is SingleScanVerdict.NOLISTING_CANDIDATE

    def test_unresolved_records_ignored(self):
        obs = observation(
            mx=[
                MXObservation(0, "ghost.d.example", None),
                MXObservation(15, "smtp1.d.example", addr("1.1.1.2")),
            ]
        )
        # Only one usable record left -> one-MX, not candidate.
        verdict = classify_single_scan(obs, smtp_with("1.1.1.2"))
        assert verdict is SingleScanVerdict.ONE_MX

    def test_missing_or_broken_observation_misconfigured(self):
        assert (
            classify_single_scan(None, smtp_with())
            is SingleScanVerdict.MISCONFIGURED
        )
        assert (
            classify_single_scan(observation(nxdomain=True), smtp_with())
            is SingleScanVerdict.MISCONFIGURED
        )
        assert (
            classify_single_scan(observation(mx=[]), smtp_with())
            is SingleScanVerdict.MISCONFIGURED
        )


class TestClassifyTwoScans:
    def test_candidate_in_both_is_nolisting(self):
        verdict = classify_two_scans(
            "d",
            SingleScanVerdict.NOLISTING_CANDIDATE,
            SingleScanVerdict.NOLISTING_CANDIDATE,
        )
        assert verdict.domain_class is DomainClass.NOLISTING

    def test_candidate_in_one_is_transient(self):
        verdict = classify_two_scans(
            "d",
            SingleScanVerdict.NOLISTING_CANDIDATE,
            SingleScanVerdict.PRIMARY_UP,
        )
        assert verdict.domain_class is DomainClass.MULTI_MX_NO_NOLISTING

    def test_primary_up_once_is_definitive(self):
        verdict = classify_two_scans(
            "d", SingleScanVerdict.PRIMARY_UP, SingleScanVerdict.ALL_DOWN
        )
        assert verdict.domain_class is DomainClass.MULTI_MX_NO_NOLISTING

    def test_one_mx(self):
        verdict = classify_two_scans(
            "d", SingleScanVerdict.ONE_MX, SingleScanVerdict.ONE_MX
        )
        assert verdict.domain_class is DomainClass.ONE_MX

    def test_misconfigured(self):
        verdict = classify_two_scans(
            "d", SingleScanVerdict.MISCONFIGURED, SingleScanVerdict.MISCONFIGURED
        )
        assert verdict.domain_class is DomainClass.DNS_MISCONFIGURED


class TestScannersEndToEnd:
    @pytest.fixture(scope="class")
    def world(self):
        config = PopulationConfig(
            num_domains=1500, transient_outage_rate=0.01
        )
        internet = SyntheticInternet(config, seed=11)
        rng = RandomStream(11, "scan-test")
        dns_scanner = DNSScanner(internet, glue_elision_rate=0.2, rng=rng)
        dns_a = dns_scanner.scan(0)
        dns_b = dns_scanner.scan(1)
        dns_scanner.parallel_resolve(dns_a)
        dns_scanner.parallel_resolve(dns_b)
        smtp_scanner = SMTPScanner(internet)
        smtp_a = smtp_scanner.scan(0)
        smtp_b = smtp_scanner.scan(1)
        return internet, dns_a, dns_b, smtp_a, smtp_b

    def test_dns_scan_covers_population(self, world):
        internet, dns_a, *_ = world
        assert dns_a.num_domains == internet.num_domains

    def test_glue_elision_produces_unresolved_records(self):
        internet = SyntheticInternet(
            PopulationConfig(num_domains=300), seed=11
        )
        scanner = DNSScanner(
            internet, glue_elision_rate=0.5, rng=RandomStream(1)
        )
        dataset = scanner.scan(0)
        assert dataset.num_unresolved_mx > 0

    def test_parallel_resolve_repairs_elided_glue(self, world):
        _, dns_a, dns_b, *_ = world
        # After repair, the only unresolved MX records are genuine danglers.
        for dataset in (dns_a, dns_b):
            for obs in dataset:
                for record in obs.mx:
                    if not record.resolved:
                        assert record.exchange.startswith("ghost.")

    def test_smtp_scan_counts(self, world):
        internet, _, _, smtp_a, _ = world
        assert smtp_a.probed == len(internet.all_mail_addresses())
        assert 0 < smtp_a.num_listening <= smtp_a.probed

    def test_detector_recovers_ground_truth(self, world):
        internet, dns_a, dns_b, smtp_a, smtp_b = world
        detector = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b)
        truth = {t.name: t.category for t in internet.domains}
        expected_class = {
            DomainCategory.SINGLE_MX: DomainClass.ONE_MX,
            DomainCategory.MULTI_MX: DomainClass.MULTI_MX_NO_NOLISTING,
            DomainCategory.NOLISTING: DomainClass.NOLISTING,
            DomainCategory.MISCONFIGURED: DomainClass.DNS_MISCONFIGURED,
        }
        for verdict in detector.classify_all():
            assert verdict.domain_class is expected_class[truth[verdict.domain]]

    def test_summary_counts_sum_to_total(self, world):
        _, dns_a, dns_b, smtp_a, smtp_b = world
        summary = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b).summarize()
        assert sum(summary.counts.values()) == summary.total_domains
        assert abs(sum(summary.percentages().values()) - 100.0) < 1e-9


class TestScanPair:
    def test_requires_distinct_scans(self):
        dns = DNSScanDataset(scan_index=0)
        smtp = SMTPScanDataset(scan_index=0)
        with pytest.raises(ValueError):
            ScanPair(dns=(dns, DNSScanDataset(scan_index=0)), smtp=(smtp, smtp))
