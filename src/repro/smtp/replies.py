"""SMTP reply codes and reply objects (RFC 5321 §4.2).

Only the codes the simulation actually emits are enumerated, but arbitrary
codes can be wrapped in :class:`Reply` for testing odd servers.
"""

from __future__ import annotations

from dataclasses import dataclass


# Positive completion
CODE_READY = 220
CODE_CLOSING = 221
CODE_OK = 250
# Intermediate
CODE_START_MAIL_INPUT = 354
# Transient negative completion (4yz) — the class greylisting lives in
CODE_SERVICE_UNAVAILABLE = 421
CODE_MAILBOX_BUSY = 450
CODE_LOCAL_ERROR = 451
CODE_INSUFFICIENT_STORAGE = 452
# Permanent negative completion (5yz)
CODE_SYNTAX_ERROR = 500
CODE_PARAM_SYNTAX_ERROR = 501
CODE_NOT_IMPLEMENTED = 502
CODE_BAD_SEQUENCE = 503
CODE_MAILBOX_UNAVAILABLE = 550
CODE_USER_NOT_LOCAL = 551
CODE_TRANSACTION_FAILED = 554


@dataclass(frozen=True)
class Reply:
    """A single SMTP reply line."""

    code: int
    text: str = ""

    def __post_init__(self) -> None:
        if not 200 <= self.code <= 599:
            raise ValueError(f"implausible SMTP reply code {self.code}")

    @property
    def is_positive(self) -> bool:
        """2yz or 3yz — the command was accepted."""
        return self.code < 400

    @property
    def is_transient_failure(self) -> bool:
        """4yz — try again later (greylisting uses 450)."""
        return 400 <= self.code < 500

    @property
    def is_permanent_failure(self) -> bool:
        """5yz — do not retry."""
        return self.code >= 500

    def __str__(self) -> str:
        return f"{self.code} {self.text}".rstrip()


def ready(hostname: str) -> Reply:
    return Reply(CODE_READY, f"{hostname} ESMTP service ready")


def ok(text: str = "OK") -> Reply:
    return Reply(CODE_OK, text)


def closing(hostname: str) -> Reply:
    return Reply(CODE_CLOSING, f"{hostname} closing connection")


def start_mail_input() -> Reply:
    return Reply(CODE_START_MAIL_INPUT, "End data with <CR><LF>.<CR><LF>")


def greylisted(retry_after: float) -> Reply:
    """The canonical Postgrey deferral reply."""
    return Reply(
        CODE_MAILBOX_BUSY,
        f"4.2.0 Greylisted, see http://postgrey.schweikert.ch/help ; "
        f"retry in {int(retry_after)}s",
    )


def bad_sequence(expected: str) -> Reply:
    return Reply(CODE_BAD_SEQUENCE, f"Bad sequence of commands; expected {expected}")


def mailbox_unavailable(address: str) -> Reply:
    return Reply(CODE_MAILBOX_UNAVAILABLE, f"5.1.1 <{address}>: user unknown")
