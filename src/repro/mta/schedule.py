"""Retry schedules for outbound mail queues.

A :class:`RetrySchedule` answers one question: given that attempt *n* has
just failed at queue age *t*, how long until attempt *n+1*?  It also carries
the *maximum queue lifetime* after which the MTA gives up and bounces
(RFC 5321 recommends at least 4–5 days; Table IV shows the defaults of the
popular MTAs ranging from 2 to 7 days).

Concrete shapes cover everything Table III/IV exhibit: fixed intervals,
linearly growing intervals, geometric (doubling) backoff, and fully explicit
attempt tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

DAY = 86400.0
MINUTE = 60.0


class RetrySchedule:
    """Interface for retry timing."""

    #: Give-up horizon in seconds (None = never give up).
    max_queue_time: Optional[float] = None

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        """Seconds to wait before the next attempt.

        Parameters
        ----------
        attempt_number:
            The 1-based index of the attempt that just failed.
        queue_age:
            Seconds since the message entered the queue.

        Returns ``None`` when the sender gives up instead of retrying.
        """
        raise NotImplementedError

    def _expired(self, queue_age: float, delay: float) -> bool:
        return (
            self.max_queue_time is not None
            and queue_age + delay > self.max_queue_time
        )

    def attempt_times(self, horizon: float) -> List[float]:
        """Materialize the schedule: queue ages of every attempt <= horizon.

        The first attempt happens at age 0; subsequent ones follow
        :meth:`next_delay`.  Useful for tests and for regenerating Table IV.
        """
        times = [0.0]
        attempt = 1
        while True:
            delay = self.next_delay(attempt, times[-1])
            if delay is None:
                break
            nxt = times[-1] + delay
            if nxt > horizon:
                break
            times.append(nxt)
            attempt += 1
            if len(times) > 100000:  # pragma: no cover - runaway guard
                raise RuntimeError("schedule produced implausibly many attempts")
        return times


@dataclass
class FixedIntervalSchedule(RetrySchedule):
    """Retry every ``interval`` seconds (e.g. hotmail's 4-minute cadence)."""

    interval: float
    max_queue_time: Optional[float] = 5 * DAY

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        if self._expired(queue_age, self.interval):
            return None
        return self.interval


@dataclass
class LinearBackoffSchedule(RetrySchedule):
    """Delays grow linearly: base, 2*base, 3*base, ... capped at ``cap``.

    Sendmail's default queue timing is approximately this shape (10, 20,
    30 ... minutes, Table IV).
    """

    base: float
    cap: Optional[float] = None
    max_queue_time: Optional[float] = 5 * DAY

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.cap is not None and self.cap < self.base:
            raise ValueError("cap must be >= base")

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        delay = self.base * attempt_number
        if self.cap is not None:
            delay = min(delay, self.cap)
        if self._expired(queue_age, delay):
            return None
        return delay


@dataclass
class GeometricBackoffSchedule(RetrySchedule):
    """Delays grow geometrically: base, base*f, base*f^2, ... capped.

    Several webmail providers in Table III show roughly doubling gaps.
    """

    base: float
    factor: float = 2.0
    cap: Optional[float] = None
    max_queue_time: Optional[float] = 5 * DAY

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        delay = self.base * (self.factor ** (attempt_number - 1))
        if self.cap is not None:
            delay = min(delay, self.cap)
        if self._expired(queue_age, delay):
            return None
        return delay


class TableSchedule(RetrySchedule):
    """A fully explicit schedule given as attempt queue-ages.

    ``ages`` lists the queue age (seconds) of attempts 2, 3, ... (attempt 1
    is always at age 0).  After the table runs out, either repeat the final
    gap (``repeat_last=True``, how qmail/exim-style schedules behave until
    the queue lifetime expires) or give up.
    """

    def __init__(
        self,
        ages: Sequence[float],
        max_queue_time: Optional[float] = 5 * DAY,
        repeat_last: bool = True,
    ) -> None:
        ages = [float(a) for a in ages]
        if any(a <= 0 for a in ages):
            raise ValueError("attempt ages must be positive")
        if sorted(ages) != ages or len(set(ages)) != len(ages):
            raise ValueError("attempt ages must be strictly increasing")
        self.ages = ages
        self.max_queue_time = max_queue_time
        self.repeat_last = repeat_last

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        # attempt_number failed at queue_age; attempt_number+1 is next.
        # Table index: attempt k (k >= 2) happens at ages[k - 2].
        next_index = attempt_number - 1
        if next_index < len(self.ages):
            delay = self.ages[next_index] - queue_age
            if delay <= 0:
                # Caller drifted from nominal ages (e.g. greylist-imposed
                # jitter); fall back to the nominal gap.
                prev = self.ages[next_index - 1] if next_index > 0 else 0.0
                delay = max(self.ages[next_index] - prev, 1.0)
        elif self.repeat_last:
            if len(self.ages) >= 2:
                delay = self.ages[-1] - self.ages[-2]
            elif self.ages:
                delay = self.ages[0]
            else:
                return None
        else:
            return None
        if self._expired(queue_age, delay):
            return None
        return delay


class GiveUpAfterSchedule(RetrySchedule):
    """Wrap a schedule but stop after ``max_attempts`` total attempts.

    Models aol.com's behaviour in Table III: a sane cadence, but the task is
    abandoned after ~30 minutes / 5 attempts — well short of the RFC's 4–5
    day guidance.
    """

    def __init__(self, inner: RetrySchedule, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.inner = inner
        self.max_attempts = max_attempts
        self.max_queue_time = inner.max_queue_time

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        if attempt_number >= self.max_attempts:
            return None
        return self.inner.next_delay(attempt_number, queue_age)


class NoRetrySchedule(RetrySchedule):
    """Fire-and-forget: never retry.  The spam-bot default."""

    max_queue_time: Optional[float] = None

    def next_delay(self, attempt_number: int, queue_age: float) -> Optional[float]:
        return None
