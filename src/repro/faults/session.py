"""Session proxy that injects mid-dialogue connection resets.

A reset is abrupt: the client has an established connection, has possibly
sent several commands, and the next write dies.  :class:`ResettingSession`
wraps any application session (SMTP server session, bot-facing session —
anything driven by method calls) and raises
:class:`~repro.net.host.ConnectionReset` once its command budget is spent,
after notifying the inner session so server-side state and stats stay
consistent.
"""

from __future__ import annotations

from typing import Any

from ..net.host import ConnectionReset


class ResettingSession:
    """Wraps a session; the Nth method call raises :class:`ConnectionReset`.

    Non-callable attributes (``banner``, ``state``, ...) pass through
    untouched and consume no budget — reading them models the client
    inspecting data it already received, not a write on the wire.
    """

    def __init__(self, inner: Any, commands_before_reset: int) -> None:
        if commands_before_reset < 1:
            raise ValueError("commands_before_reset must be >= 1")
        self._inner = inner
        self._budget = commands_before_reset

    @property
    def wrapped(self) -> Any:
        return self._inner

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def faulted(*args: Any, **kwargs: Any) -> Any:
            if self._budget <= 0:
                abort = getattr(self._inner, "abort", None)
                if callable(abort):
                    abort()
                raise ConnectionReset(
                    f"connection reset during {name!r}"
                )
            self._budget -= 1
            return attr(*args, **kwargs)

        return faulted

    def __repr__(self) -> str:
        return f"ResettingSession(budget={self._budget}, inner={self._inner!r})"
