"""Bench: regenerate Table I (malware families, spam shares, sample counts)."""

import pytest

from repro.botnet.families import (
    FAMILIES,
    TOTAL_BOTNET_SPAM_SHARE,
    TOTAL_GLOBAL_SPAM_SHARE,
)
from repro.botnet.samples import collect_samples
from repro.core.reports import table1_text

from _util import emit


def build_table1():
    samples = collect_samples()
    return table1_text(), samples


def test_table1_samples(benchmark):
    text, samples = benchmark(build_table1)
    emit("Table I — Malware samples used in our experiments", text)

    # Paper: 11 samples, 4 families, 93.02% of botnet spam, 70.69% global.
    assert len(samples) == 11
    assert len(FAMILIES) == 4
    assert TOTAL_BOTNET_SPAM_SHARE == pytest.approx(0.9302)
    assert TOTAL_GLOBAL_SPAM_SHARE == pytest.approx(0.7069)
    assert "46.90%" in text and "36.33%" in text
    assert "7.21%" in text and "2.58%" in text
