"""Live serving layer: asyncio Postfix policy daemon over the engine.

The simulator measures greylisting; this package *serves* it.  A single
asyncio event loop speaks the Postfix policy-delegation protocol
(:mod:`repro.serve.protocol`), walks an iRedAPD-style plugin chain
(:mod:`repro.serve.plugins`) whose greylisting link is the exact
:class:`~repro.greylist.policy.GreylistPolicy` the experiments run, and
answers ``action=DUNNO`` / ``DEFER_IF_PERMIT`` / ... at 10k+ concurrent
connections (:mod:`repro.serve.server`).  The load generator
(:mod:`repro.serve.loadgen`) replays the synthetic internet's bot
traffic through the daemon so the served and simulated paths are
provably one policy core.
"""

from .client import PolicyClient, make_request_attrs
from .loadgen import (
    LoadStats,
    ReplayReport,
    TracedRequest,
    TrafficTrace,
    capture_bot_trace,
    expected_verb,
    replay_trace,
    run_load,
    tile_requests,
)
from .plugins import (
    DECISION_CACHE_SIZE,
    CachedWhitelist,
    DecisionCache,
    GreylistingPlugin,
    PluginChain,
    PolicyPlugin,
    ThrottlePlugin,
    WBListPlugin,
)
from .protocol import (
    ACTION_DEFER_IF_PERMIT,
    ACTION_DUNNO,
    ACTION_OK,
    ACTION_REJECT,
    MAX_REQUEST_BYTES,
    SMTPD_ACCESS_POLICY,
    PolicyRequest,
    ProtocolError,
    StanzaParser,
    format_request,
    format_response,
    parse_response,
)
from .server import (
    DRAIN_GRACE,
    FLUSH_INTERVAL,
    PolicyServer,
    ReplayClock,
    ServerStats,
    WallClock,
)

__all__ = [
    "ACTION_DEFER_IF_PERMIT",
    "ACTION_DUNNO",
    "ACTION_OK",
    "ACTION_REJECT",
    "DECISION_CACHE_SIZE",
    "DRAIN_GRACE",
    "FLUSH_INTERVAL",
    "MAX_REQUEST_BYTES",
    "SMTPD_ACCESS_POLICY",
    "CachedWhitelist",
    "DecisionCache",
    "GreylistingPlugin",
    "LoadStats",
    "PluginChain",
    "PolicyClient",
    "PolicyPlugin",
    "PolicyRequest",
    "PolicyServer",
    "ProtocolError",
    "ReplayClock",
    "ReplayReport",
    "ServerStats",
    "StanzaParser",
    "ThrottlePlugin",
    "TracedRequest",
    "TrafficTrace",
    "WallClock",
    "capture_bot_trace",
    "expected_verb",
    "format_request",
    "format_response",
    "make_request_attrs",
    "parse_response",
    "replay_trace",
    "run_load",
    "tile_requests",
]
