"""Tests for nolisting benign impact, multi-MX greylisting and DB growth."""

import pytest

from repro.core.cost_attack import compare_sweeping, run_cost_attack
from repro.core.multimx_greylist import compare_store_sharing
from repro.core.nolisting_impact import run_nolisting_impact
from repro.core.testbed import Defense
from repro.dns.mxutil import MailExchanger, shuffle_equal_preferences
from repro.net.address import IPv4Address
from repro.sim.rng import RandomStream


class TestNolistingImpact:
    @pytest.fixture(scope="class")
    def nolisted(self):
        return run_nolisting_impact()

    def test_compliant_senders_unaffected(self, nolisted):
        # §II: "it should not affect the delivery of benign emails, and it
        # should not introduce any delay".
        assert nolisted.compliant_loss == 0
        for name, outcome in nolisted.outcomes.items():
            if name == "notifier":
                continue
            assert outcome.delivery_rate == 1.0, name
            assert outcome.max_delay == 0.0, name

    def test_primary_only_notifiers_lose_mail(self, nolisted):
        # §II: "can prevent some legitimate email client ... from
        # delivering legitimate messages".
        notifier = nolisted.notifier_outcome
        assert notifier.delivered == 0
        assert notifier.lost == notifier.messages

    def test_plain_domain_delivers_everything(self):
        plain = run_nolisting_impact(defense=Defense.NONE)
        assert plain.notifier_outcome.delivery_rate == 1.0
        assert plain.compliant_loss == 0


class TestEqualPreferenceShuffle:
    def _exchangers(self):
        return [
            MailExchanger(10, f"mx{i}.d", IPv4Address.parse(f"10.0.0.{i}"))
            for i in range(4)
        ] + [MailExchanger(20, "backup.d", IPv4Address.parse("10.0.1.1"))]

    def test_groups_stay_in_preference_order(self):
        shuffled = shuffle_equal_preferences(
            self._exchangers(), RandomStream(1)
        )
        assert shuffled[-1].hostname == "backup.d"
        assert {e.hostname for e in shuffled[:4]} == {
            "mx0.d", "mx1.d", "mx2.d", "mx3.d",
        }

    def test_shuffling_varies_by_seed(self):
        orders = {
            tuple(
                e.hostname
                for e in shuffle_equal_preferences(
                    self._exchangers(), RandomStream(seed)
                )
            )
            for seed in range(10)
        }
        assert len(orders) > 1

    def test_empty_list(self):
        assert shuffle_equal_preferences([], RandomStream(1)) == []


class TestMultiMXGreylisting:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_store_sharing(num_messages=30)

    def test_everything_still_delivered(self, results):
        # postfix retries patiently; no loss either way.
        for result in results:
            assert result.delivered == result.messages

    def test_per_host_stores_cost_extra_deferrals(self, results):
        per_host, shared = results
        assert not per_host.shared_store and shared.shared_store
        assert per_host.total_deferrals > shared.total_deferrals

    def test_per_host_stores_increase_delay(self, results):
        per_host, shared = results
        assert per_host.mean_delay > shared.mean_delay
        assert per_host.max_delay >= shared.max_delay

    def test_shared_store_gives_exact_threshold_delay(self, results):
        _, shared = results
        # With a shared store, every postfix sender passes on its first
        # retry at exactly the 300 s threshold.
        assert shared.mean_delay == pytest.approx(300.0)


class TestCostAttack:
    @pytest.fixture(scope="class")
    def pair(self):
        return compare_sweeping(duration_days=10.0)

    def test_unswept_db_grows_with_spam_volume(self, pair):
        unswept, _ = pair
        assert unswept.final_entries >= unswept.spam_attempts * 0.9

    def test_sweeping_bounds_db(self, pair):
        unswept, swept = pair
        assert swept.peak_entries < unswept.peak_entries / 2
        # Steady state ~ spam_per_day * retry_window_days.
        expected = 500 * swept.retry_window_days
        assert swept.final_entries < expected * 2

    def test_bytes_track_entries(self, pair):
        _, swept = pair
        assert swept.peak_bytes > 0
        for sample in swept.samples:
            if sample.entries:
                assert sample.size_bytes > sample.entries * 40

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            run_cost_attack(spam_per_day=-1)
