"""Bot retry behaviour models.

Fire-and-forget bots (Cutwail, Darkmailer) never retry a deferred message —
they privilege volume over reliable delivery, which is exactly what
greylisting exploits.  Retrying bots (Kelihos) come back, but on their own
idiosyncratic timetable rather than an MTA-style queue schedule.

The Kelihos model reproduces the empirical retry-delay structure the paper
measured (Figures 3 and 4): a hard minimum delay of ~300 seconds between
attempts on the same message, with the bulk of retries clustered in three
modes — 300-600 s, around 5 000 s, and 80 000-90 000 s — and enough
persistence to outlast even a six-hour greylisting threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..sim.rng import RandomStream


class BotRetryModel:
    """Interface: delay before the next retry of one message, or ``None``."""

    def next_delay(self, attempt_number: int, rng: RandomStream) -> Optional[float]:
        """Seconds until retry ``attempt_number + 1``; ``None`` = give up."""
        raise NotImplementedError


class FireAndForget(BotRetryModel):
    """Never retries.  One attempt per (message, recipient), then move on."""

    def next_delay(self, attempt_number: int, rng: RandomStream) -> Optional[float]:
        return None


@dataclass(frozen=True)
class RetryMode:
    """One cluster of the empirical retry-delay mixture."""

    low: float
    high: float
    weight: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low or self.weight < 0:
            raise ValueError(f"invalid retry mode {self!r}")


#: The Kelihos retry-delay mixture observed in Figure 4: most retries come
#: back 300-600 s after the previous attempt, a second cluster near 5 000 s,
#: and a long-haul cluster at 80 000-90 000 s.
KELIHOS_MODES: Tuple[RetryMode, ...] = (
    RetryMode(low=300.0, high=600.0, weight=0.60),
    RetryMode(low=4000.0, high=6000.0, weight=0.25),
    RetryMode(low=80000.0, high=90000.0, weight=0.15),
)


class EmpiricalRetryModel(BotRetryModel):
    """Retry delays drawn from a mixture of uniform clusters.

    Parameters
    ----------
    modes:
        The delay clusters with their mixture weights.
    min_delay:
        Hard floor applied to every draw (Kelihos never retries sooner than
        ~300 s, which is why Figure 3a and 3b look identical: a 5 s
        threshold buys nothing over 300 s against this bot).
    max_attempts:
        Total attempts per message before the bot abandons it.  Figure 4
        shows Kelihos persisting through many attempts over >24 h, so the
        default is generous.
    escalate:
        When ``True``, successive retries are drawn from progressively later
        clusters (attempts start in the first mode and drift toward the
        long-haul mode), reproducing Figure 4's time structure: early peaks
        first, the 80-90 ks cloud only after several failures.
    """

    def __init__(
        self,
        modes: Sequence[RetryMode] = KELIHOS_MODES,
        min_delay: float = 300.0,
        max_attempts: int = 30,
        escalate: bool = True,
    ) -> None:
        if not modes:
            raise ValueError("need at least one retry mode")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.modes = tuple(modes)
        self.min_delay = float(min_delay)
        self.max_attempts = int(max_attempts)
        self.escalate = escalate

    def _pick_mode(self, attempt_number: int, rng: RandomStream) -> RetryMode:
        if self.escalate:
            # Early attempts: almost surely the first cluster.  As failures
            # accumulate the later clusters dominate.
            if attempt_number <= 2:
                weights = [m.weight * boost for m, boost in zip(self.modes, (10.0, 0.5, 0.1))]
            elif attempt_number <= 5:
                weights = [m.weight * boost for m, boost in zip(self.modes, (2.0, 3.0, 0.5))]
            else:
                weights = [m.weight * boost for m, boost in zip(self.modes, (0.5, 1.0, 6.0))]
            # Pad in case of more than three modes.
            weights += [m.weight for m in self.modes[len(weights):]]
        else:
            weights = [m.weight for m in self.modes]
        return self.modes[rng.weighted_index(weights)]

    def next_delay(self, attempt_number: int, rng: RandomStream) -> Optional[float]:
        if attempt_number >= self.max_attempts:
            return None
        mode = self._pick_mode(attempt_number, rng)
        delay = rng.uniform(mode.low, mode.high)
        return max(delay, self.min_delay)


def kelihos_retry_model() -> EmpiricalRetryModel:
    """The calibrated Kelihos retry model used by the experiments."""
    return EmpiricalRetryModel(
        modes=KELIHOS_MODES, min_delay=300.0, max_attempts=30, escalate=True
    )
