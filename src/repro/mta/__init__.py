"""Benign MTA models: retry schedules, Table IV profiles, outbound queue."""

from .profiles import (
    PROFILE_ORDER,
    PROFILES,
    RFC_MIN_GIVEUP_DAYS,
    MTAProfile,
    build_profiles,
    rfc_compliant_lifetime,
)
from .queue import (
    QueueAttempt,
    QueueEntry,
    QueueEntryState,
    QueueManager,
)
from .schedule import (
    DAY,
    MINUTE,
    FixedIntervalSchedule,
    GeometricBackoffSchedule,
    GiveUpAfterSchedule,
    LinearBackoffSchedule,
    NoRetrySchedule,
    RetrySchedule,
    TableSchedule,
)

__all__ = [
    "DAY",
    "MINUTE",
    "FixedIntervalSchedule",
    "GeometricBackoffSchedule",
    "GiveUpAfterSchedule",
    "LinearBackoffSchedule",
    "MTAProfile",
    "NoRetrySchedule",
    "PROFILES",
    "PROFILE_ORDER",
    "QueueAttempt",
    "QueueEntry",
    "QueueEntryState",
    "QueueManager",
    "RetrySchedule",
    "RFC_MIN_GIVEUP_DAYS",
    "TableSchedule",
    "build_profiles",
    "rfc_compliant_lifetime",
]
