"""Webmail provider models (Table III) and their delivery driver."""

from .provider import DeliveryOutcome, ProviderSpec, WebmailDelivery
from .providers import (
    AOL,
    GMAIL,
    GMX,
    HOTMAIL,
    INDIA,
    MAILCOM,
    MAILRU,
    PROVIDER_BY_NAME,
    PROVIDERS,
    QQ,
    YAHOO,
    YANDEX,
)

__all__ = [
    "AOL",
    "DeliveryOutcome",
    "GMAIL",
    "GMX",
    "HOTMAIL",
    "INDIA",
    "MAILCOM",
    "MAILRU",
    "PROVIDER_BY_NAME",
    "PROVIDERS",
    "ProviderSpec",
    "QQ",
    "WebmailDelivery",
    "YAHOO",
    "YANDEX",
]
