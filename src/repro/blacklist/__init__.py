"""Reactive DNSBL substrate: blacklist, telemetry feed and SMTP policy."""

from .dnsbl import ListingState, ReactiveBlacklist
from .feed import TelemetryFeed
from .policy import DNSBL_REJECT_CODE, DNSBLEvent, DNSBLPolicy

__all__ = [
    "DNSBL_REJECT_CODE",
    "DNSBLEvent",
    "DNSBLPolicy",
    "ListingState",
    "ReactiveBlacklist",
    "TelemetryFeed",
]
