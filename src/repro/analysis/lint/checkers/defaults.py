"""``DEF001`` — mutable default arguments.

A mutable default is evaluated once at function definition and shared by
every call; state then leaks between calls (and, in this repository,
between *experiments* sharing a process in the parallel runner), which is
both a classic bug and a determinism hazard.  Use ``None`` plus an inside
check, or ``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext

#: Constructor calls whose result is mutable.
_MUTABLE_CALLS = frozenset(
    ["list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"]
)


def _mutable_default(node: ast.AST) -> Optional[str]:
    """Describe why a default expression is mutable, or ``None``."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _MUTABLE_CALLS:
            return f"{name}() call"
    return None


class MutableDefaultArgument(Checker):
    rule_id = "DEF001"
    severity = Severity.WARNING
    description = (
        "mutable default argument; evaluated once and shared across "
        "calls — default to None or use field(default_factory=...)"
    )
    #: Shared-state bugs bite test helpers too; check everything.
    skip_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                reason = _mutable_default(default)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument ({reason}) in "
                        f"`{node.name}()`; it is shared across every call — "
                        "use None and construct inside, or "
                        "field(default_factory=...)",
                        function=node.name,
                    )
