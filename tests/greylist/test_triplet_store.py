"""Unit tests for greylist triplets and the triplet store."""

import pytest

from repro.greylist.store import DAY, TripletStore
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address
from repro.sim.clock import Clock


def addr(text):
    return IPv4Address.parse(text)


def triplet(ip="198.51.100.7", sender="a@x.net", recipient="b@y.net"):
    return Triplet(addr(ip), sender, recipient)


class TestTriplet:
    def test_equality_is_structural(self):
        assert triplet() == triplet()
        assert triplet(ip="198.51.100.8") != triplet()
        assert triplet(sender="c@x.net") != triplet()

    def test_addresses_canonicalized(self):
        t = Triplet(addr("1.2.3.4"), "A@X.NET", "B@Y.NET")
        assert t.sender == "A@x.net"
        assert t.recipient == "B@y.net"

    def test_network_key_coarsens_client(self):
        a = triplet(ip="198.51.100.7").network_key(24)
        b = triplet(ip="198.51.100.200").network_key(24)
        assert a == b
        assert str(a.client) == "198.51.100.0"

    def test_network_key_distinguishes_networks(self):
        a = triplet(ip="198.51.100.7").network_key(24)
        b = triplet(ip="198.51.101.7").network_key(24)
        assert a != b

    def test_network_key_validates_prefix(self):
        with pytest.raises(ValueError):
            triplet().network_key(33)

    def test_hashable(self):
        assert len({triplet(), triplet()}) == 1


class TestTripletStore:
    def test_observe_creates_entry(self):
        store = TripletStore(Clock())
        entry = store.observe(triplet())
        assert entry.attempts == 1
        assert not entry.passed
        assert store.size == 1

    def test_observe_increments_attempts(self):
        clock = Clock()
        store = TripletStore(clock)
        store.observe(triplet())
        clock.advance_by(100)
        entry = store.observe(triplet())
        assert entry.attempts == 2
        assert entry.first_seen == 0.0
        assert entry.last_seen == 100.0
        assert entry.age_at_last_seen == 100.0

    def test_mark_passed(self):
        clock = Clock()
        store = TripletStore(clock)
        store.observe(triplet())
        clock.advance_by(400)
        store.mark_passed(triplet())
        entry = store.lookup(triplet())
        assert entry.passed
        assert entry.passed_at == 400.0
        assert store.confirmed == 1

    def test_mark_passed_unknown_raises(self):
        store = TripletStore(Clock())
        with pytest.raises(KeyError):
            store.mark_passed(triplet())

    def test_unconfirmed_expiry(self):
        clock = Clock()
        store = TripletStore(clock, retry_window=2 * DAY)
        store.observe(triplet())
        clock.advance_by(2 * DAY + 1)
        assert store.lookup(triplet()) is None
        assert store.expired_unconfirmed == 1
        # A new observation starts from scratch.
        entry = store.observe(triplet())
        assert entry.attempts == 1

    def test_confirmed_entries_live_longer(self):
        clock = Clock()
        store = TripletStore(clock, retry_window=2 * DAY, whitelist_lifetime=35 * DAY)
        store.observe(triplet())
        store.mark_passed(triplet())
        clock.advance_by(10 * DAY)
        assert store.lookup(triplet()) is not None
        clock.advance_by(26 * DAY)
        assert store.lookup(triplet()) is None
        assert store.expired_confirmed == 1

    def test_activity_refreshes_confirmed_lifetime(self):
        clock = Clock()
        store = TripletStore(clock, whitelist_lifetime=35 * DAY)
        store.observe(triplet())
        store.mark_passed(triplet())
        clock.advance_by(30 * DAY)
        store.observe(triplet())  # reuse refreshes last_seen
        clock.advance_by(30 * DAY)
        assert store.lookup(triplet()) is not None

    def test_sweep_drops_stale(self):
        clock = Clock()
        store = TripletStore(clock, retry_window=DAY)
        store.observe(triplet())
        store.observe(triplet(sender="other@x.net"))
        clock.advance_by(DAY + 1)
        removed = store.sweep()
        assert removed == 2
        assert store.size == 0

    def test_contains(self):
        store = TripletStore(Clock())
        assert triplet() not in store
        store.observe(triplet())
        assert triplet() in store

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            TripletStore(Clock(), retry_window=0)
        with pytest.raises(ValueError):
            TripletStore(Clock(), whitelist_lifetime=-1)

    def test_mark_passed_does_not_resurrect_expired_triplet(self):
        # Regression: mark_passed used to read the raw entry dict, so an
        # expired-but-unswept triplet could be confirmed past its retry
        # window.  It must expire (and count) like any other lookup.
        clock = Clock()
        store = TripletStore(clock, retry_window=2 * DAY)
        store.observe(triplet())
        clock.advance_by(2 * DAY + 1)
        with pytest.raises(KeyError):
            store.mark_passed(triplet())
        assert store.expired_unconfirmed == 1
        assert store.confirmed == 0
        assert store.size == 0

    def test_works_on_every_backend(self):
        from repro.greylist.backends import create_backend

        for name in ("memory", "sqlite", "journal"):
            clock = Clock()
            store = TripletStore(clock, backend=create_backend(name))
            store.observe(triplet())
            clock.advance_by(400)
            store.observe(triplet())
            store.mark_passed(triplet())
            assert store.confirmed == 1, name
            assert name in repr(store)
