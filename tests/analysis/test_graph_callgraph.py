"""Call-graph construction: edges, method resolution, reachability."""

import textwrap

from repro.analysis.lint.graph import Project


def project(sources):
    """Build a project from a ``{module_path: source}`` fixture dict."""
    return Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )


def edges(proj, module_path, qualname):
    node = proj.nodes[(module_path, qualname)]
    return sorted({target for call in node.calls for target in call.targets})


class TestSameModuleEdges:
    def test_function_to_function(self):
        proj = project(
            {
                "core/a.py": """\
                def helper():
                    pass

                def entry():
                    helper()
                """
            }
        )
        assert edges(proj, "core/a.py", "entry") == [("core/a.py", "helper")]

    def test_class_init_edge(self):
        proj = project(
            {
                "core/a.py": """\
                class Store:
                    def __init__(self):
                        pass

                def build():
                    return Store()
                """
            }
        )
        assert edges(proj, "core/a.py", "build") == [
            ("core/a.py", "Store.__init__")
        ]


class TestCrossModuleEdges:
    def test_from_import_edge(self):
        proj = project(
            {
                "core/a.py": """\
                from repro.core.b import helper

                def entry():
                    helper()
                """,
                "core/b.py": """\
                def helper():
                    pass
                """,
            }
        )
        assert edges(proj, "core/a.py", "entry") == [("core/b.py", "helper")]

    def test_module_attribute_edge(self):
        proj = project(
            {
                "core/a.py": """\
                from repro.core import b

                def entry():
                    b.helper()
                """,
                "core/b.py": """\
                def helper():
                    pass
                """,
            }
        )
        assert edges(proj, "core/a.py", "entry") == [("core/b.py", "helper")]

    def test_lazy_import_edge(self):
        proj = project(
            {
                "core/a.py": """\
                def entry():
                    from repro.core.b import helper
                    helper()
                """,
                "core/b.py": """\
                def helper():
                    pass
                """,
            }
        )
        assert edges(proj, "core/a.py", "entry") == [("core/b.py", "helper")]

    def test_import_cycle_terminates(self):
        # Mutually importing modules must not hang resolution.
        proj = project(
            {
                "core/a.py": """\
                from repro.core.b import b_fn

                def a_fn():
                    b_fn()
                """,
                "core/b.py": """\
                from repro.core.a import a_fn

                def b_fn():
                    a_fn()
                """,
            }
        )
        assert edges(proj, "core/a.py", "a_fn") == [("core/b.py", "b_fn")]
        assert edges(proj, "core/b.py", "b_fn") == [("core/a.py", "a_fn")]

    def test_star_reexport_resolution(self):
        # ``scan/__init__.py`` re-exports batch's public names; importing
        # the re-export must resolve to the defining module.
        proj = project(
            {
                "scan/__init__.py": """\
                from repro.scan.batch import *
                """,
                "scan/batch.py": """\
                def batched_shard():
                    pass
                """,
                "core/a.py": """\
                from repro.scan import batched_shard

                def entry():
                    batched_shard()
                """,
            }
        )
        assert edges(proj, "core/a.py", "entry") == [
            ("scan/batch.py", "batched_shard")
        ]

    def test_unknown_receiver_produces_no_edge(self):
        # Conservative resolution: an unknown object's method call must
        # not be attributed to anything.
        proj = project(
            {
                "core/a.py": """\
                def entry(thing):
                    thing.run()
                """
            }
        )
        assert edges(proj, "core/a.py", "entry") == []


class TestMethodResolution:
    def test_self_call_resolves_within_class(self):
        proj = project(
            {
                "core/a.py": """\
                class Engine:
                    def step(self):
                        self.tick()

                    def tick(self):
                        pass
                """
            }
        )
        assert ("core/a.py", "Engine.tick") in edges(
            proj, "core/a.py", "Engine.step"
        )

    def test_template_method_sees_subclass_overrides(self):
        # The TripletBackend pattern: a base-class driver calling
        # ``self.lookup()`` dispatches to every subclass implementation.
        proj = project(
            {
                "core/base.py": """\
                class Backend:
                    def serve(self):
                        return self.lookup()

                    def lookup(self):
                        raise NotImplementedError
                """,
                "core/impl.py": """\
                from repro.core.base import Backend

                class SqliteBackend(Backend):
                    def lookup(self):
                        return 1
                """,
            }
        )
        targets = edges(proj, "core/base.py", "Backend.serve")
        assert ("core/base.py", "Backend.lookup") in targets
        assert ("core/impl.py", "SqliteBackend.lookup") in targets

    def test_inherited_method_resolves_to_ancestor(self):
        proj = project(
            {
                "core/a.py": """\
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def entry(self):
                        self.shared()
                """
            }
        )
        assert ("core/a.py", "Base.shared") in edges(
            proj, "core/a.py", "Child.entry"
        )

    def test_local_instance_method_edge(self):
        proj = project(
            {
                "core/a.py": """\
                class Store:
                    def get(self):
                        pass

                def entry():
                    store = Store()
                    return store.get()
                """
            }
        )
        assert ("core/a.py", "Store.get") in edges(proj, "core/a.py", "entry")


class TestExternalChains:
    def test_alias_canonicalized(self):
        proj = project(
            {
                "core/a.py": """\
                import random as rnd

                def entry():
                    return rnd.random()
                """
            }
        )
        node = proj.nodes[("core/a.py", "entry")]
        chains = [call.chain for call in node.calls]
        assert ("random", "random") in chains

    def test_from_import_external_canonicalized(self):
        proj = project(
            {
                "core/a.py": """\
                from time import monotonic

                def entry():
                    return monotonic()
                """
            }
        )
        node = proj.nodes[("core/a.py", "entry")]
        assert [call.chain for call in node.calls] == [("time", "monotonic")]


class TestReachability:
    def test_bfs_with_parent_pointers(self):
        proj = project(
            {
                "core/a.py": """\
                def entry():
                    middle()

                def middle():
                    sink()

                def sink():
                    pass

                def unrelated():
                    pass
                """
            }
        )
        parents = proj.reachable_from([("core/a.py", "entry")])
        assert ("core/a.py", "sink") in parents
        assert ("core/a.py", "unrelated") not in parents
        path = proj.call_path(parents, ("core/a.py", "sink"))
        assert [qualname for _, qualname in path] == ["entry", "middle", "sink"]

    def test_skip_set_prunes_traversal(self):
        proj = project(
            {
                "core/a.py": """\
                def entry():
                    middle()

                def middle():
                    sink()

                def sink():
                    pass
                """
            }
        )
        parents = proj.reachable_from(
            [("core/a.py", "entry")], skip={("core/a.py", "middle")}
        )
        assert ("core/a.py", "sink") not in parents


class TestDumps:
    def test_call_graph_json_counts(self):
        proj = project(
            {
                "core/a.py": """\
                def helper():
                    pass

                def entry():
                    helper()
                """
            }
        )
        doc = proj.call_graph_json()
        assert doc["modules"] == 1
        assert doc["functions"] == 2
        assert doc["edges"] == 1
        entry = next(n for n in doc["nodes"] if n["function"] == "entry")
        assert entry["calls"] == [{"line": 5, "target": "core/a.py::helper"}]

    def test_api_report_finds_dead_symbol(self):
        proj = project(
            {
                "core/a.py": """\
                def used():
                    pass

                def never_called():
                    pass

                def entry():
                    used()
                """,
                "core/b.py": """\
                from repro.core.a import entry

                def main():
                    entry()
                """,
            }
        )
        report = proj.api_report()
        dead = {(d["module"], d["symbol"]) for d in report["dead_symbols"]}
        assert ("core/a.py", "never_called") in dead
        assert ("core/a.py", "used") not in dead
        assert ("core/a.py", "entry") not in dead
        # main is itself unreferenced, by design of the fixture.
        assert ("core/b.py", "main") in dead

    def test_api_surface_uses_exports(self):
        proj = project(
            {
                "core/a.py": """\
                __all__ = ["entry"]

                def entry():
                    pass

                def _private():
                    pass
                """
            }
        )
        report = proj.api_report()
        assert list(report["surface"]["core/a.py"]) == ["entry"]
