"""Textual reproduction of every table and figure.

Each function renders a reproduced artefact in the paper's row/column (or
series) structure, ready for the benchmark harness to print next to the
published values.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.cdf import EmpiricalCDF, ascii_cdf
from ..analysis.stats import histogram
from ..analysis.tables import format_percent, mark, render_table
from ..botnet.families import (
    FAMILIES,
    TOTAL_BOTNET_SPAM_SHARE,
    TOTAL_GLOBAL_SPAM_SHARE,
)
from ..botnet.samples import collect_samples
from ..sim.clock import format_duration
from .adoption import AdoptionExperimentResult
from .defense_matrix import DefenseMatrix
from .greylist_experiment import GreylistExperimentResult
from .mta_survey import MTARow
from .testbed import Defense
from .webmail_experiment import WebmailRow


def table1_text() -> str:
    """Table I: malware families, botnet-spam shares, sample counts."""
    rows = [
        (
            family.name,
            format_percent(family.botnet_spam_share),
            family.sample_count,
        )
        for family in FAMILIES
    ]
    rows.append(
        ("Total Botnet Spam", format_percent(TOTAL_BOTNET_SPAM_SHARE), sum(
            f.sample_count for f in FAMILIES
        ))
    )
    rows.append(("Total Global Spam", format_percent(TOTAL_GLOBAL_SPAM_SHARE), ""))
    return render_table(
        headers=("Malware Family", "% of Botnet Spam 2014", "Samples"),
        rows=rows,
        title="Table I: Malware samples used in our experiments",
    )


def table2_text(matrix: DefenseMatrix) -> str:
    """Table II: per-sample effect of greylisting and nolisting."""
    rows = []
    for sample in collect_samples():
        grey = matrix.verdict(sample.label, Defense.GREYLISTING)
        nolist = matrix.verdict(sample.label, Defense.NOLISTING)
        rows.append(
            (
                sample.label,
                mark(grey.effective if grey else False),
                mark(nolist.effective if nolist else False),
            )
        )
    return render_table(
        headers=("Sample", "Greylisting", "Nolisting"),
        rows=rows,
        title=(
            "Table II: Effect of nolisting and greylisting "
            "(YES = technique blocked all spam)"
        ),
    )


def table3_text(rows: Sequence[WebmailRow]) -> str:
    """Table III: webmail delivery attempts at a 6 h threshold."""
    def same_ip_cell(row: WebmailRow) -> str:
        if row.same_ip:
            return "yes"
        return f"no ({row.ip_pool_size})"

    def delays_cell(row: WebmailRow, limit: int = 8) -> str:
        stamps = row.delays_mmss()
        if len(stamps) > limit:
            head = ", ".join(stamps[: limit - 1])
            return f"{head}, ..., {stamps[-1]}"
        return ", ".join(stamps)

    return render_table(
        headers=("Provider", "Same IP", "Attempts", "Deliver", "Delays (min:sec)"),
        rows=[
            (
                row.provider,
                same_ip_cell(row),
                row.attempts,
                mark(row.delivered),
                delays_cell(row),
            )
            for row in rows
        ],
        title="Table III: Webmail delivery attempts with a 6h greylisting threshold",
    )


def table4_text(rows: Sequence[MTARow]) -> str:
    """Table IV: retransmission times of popular MTAs."""
    def schedule_cell(row: MTARow, limit: int = 10) -> str:
        minutes = row.retransmission_minutes
        shown = ", ".join(f"{m:g}" for m in minutes[:limit])
        if len(minutes) > limit:
            shown += f", ..., {minutes[-1]:g}"
        return shown

    return render_table(
        headers=("MTA", "Retransmission time (min)", "Max queue (days)"),
        rows=[
            (row.mta, schedule_cell(row), f"{row.max_queue_days:g}")
            for row in rows
        ],
        title="Table IV: Retransmission time of popular MTA servers",
    )


def figure2_text(result: AdoptionExperimentResult) -> str:
    """Figure 2: the nolisting adoption pie, as a table."""
    from ..scan.detect import DomainClass

    percentages = result.measured_percentages()
    rows = [
        ("One MX record", f"{percentages[DomainClass.ONE_MX]:.2f}%"),
        (
            "Not using nolisting",
            f"{percentages[DomainClass.MULTI_MX_NO_NOLISTING]:.2f}%",
        ),
        ("DNS misconfigured", f"{percentages[DomainClass.DNS_MISCONFIGURED]:.2f}%"),
        ("Using nolisting", f"{percentages[DomainClass.NOLISTING]:.2f}%"),
    ]
    table = render_table(
        headers=("Configuration", "Share of domains"),
        rows=rows,
        title="Figure 2: Nolisting mail server statistics",
    )
    extra = (
        f"\nPopularity cross-check: {result.crosscheck.top15} adopter(s) in the "
        f"top-15, {result.crosscheck.top500} in the top-500, "
        f"{result.crosscheck.top1000} in the top-1000."
    )
    return table + extra


def figure3_text(result: GreylistExperimentResult) -> str:
    """Figure 3: CDF of Kelihos spam delivery delay at one threshold."""
    cdf = result.delay_cdf()
    plot = ascii_cdf(cdf, x_label="delivery delay (s)")
    header = (
        f"Figure 3 (threshold={result.threshold:g}s): CDF of spam delivery "
        f"delay, {result.family}, n={len(result.delivery_delays)}"
    )
    marks = ", ".join(
        f"F({x:g}s)={cdf.at(x):.2f}" for x in (300, 600, 1000, 6000, 90000)
    )
    return f"{header}\n{plot}\n{marks}"


def figure4_text(result: GreylistExperimentResult) -> str:
    """Figure 4: Kelihos retransmission delays at a 21600 s threshold."""
    failed = [p.age for p in result.failed_points()]
    delivered = [p.age for p in result.delivered_points()]
    edges = [0, 300, 600, 1000, 4000, 6000, 20000, 80000, 90000, 200000]
    bins = histogram(failed, edges)
    lines = [
        f"Figure 4 (threshold={result.threshold:g}s): Kelihos retransmission "
        f"delays — {len(failed)} failed (blue), {len(delivered)} delivered (red)"
    ]
    for (low, high), count in bins:
        bar = "#" * min(count, 60)
        lines.append(f"  failed {low:>7g}-{high:<7g}s | {count:>4} {bar}")
    if delivered:
        lines.append(
            f"  delivered at ages {format_duration(min(delivered))} .. "
            f"{format_duration(max(delivered))} (all above the threshold)"
        )
    # The paper's three peaks live in the retransmission-*gap* histogram.
    gaps = result.retransmission_gaps()
    gap_edges = [0, 300, 600, 4000, 6000, 20000, 80000, 90000, 200000]
    lines.append("  retransmission-gap peaks:")
    for (low, high), count in histogram(gaps, gap_edges):
        bar = "#" * min(count, 60)
        lines.append(f"    gap {low:>7g}-{high:<7g}s | {count:>4} {bar}")
    return "\n".join(lines)


def figure5_text(cdf: EmpiricalCDF, threshold: float) -> str:
    """Figure 5: CDF of benign delivery delay on the real deployment."""
    plot = ascii_cdf(cdf, x_label="delivery delay (s)")
    header = (
        f"Figure 5 (threshold={threshold:g}s): CDF of benign email delivery "
        f"delay, n={cdf.n}"
    )
    marks = ", ".join(
        f"F({label})={cdf.at(x):.2f}"
        for label, x in (
            ("5min", 300),
            ("10min", 600),
            ("30min", 1800),
            ("50min", 3000),
            ("2h", 7200),
        )
    )
    return f"{header}\n{plot}\n{marks}"
