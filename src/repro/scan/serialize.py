"""Scan-dataset serialization.

The paper consumed its scans as downloadable files from scans.io; this
module gives our captures the same shape: plain-text dump/load for the
DNS-ANY and SMTP banner-grab datasets, so the detection pipeline can run
offline from files — and so captures can be archived, diffed and replayed
(the two-months-apart protocol is literally a diff of two files).
"""

from __future__ import annotations

from typing import List

from ..net.address import IPv4Address
from .datasets import (
    DNSScanDataset,
    DomainObservation,
    MXObservation,
    SMTPScanDataset,
)

DNS_HEADER = "# repro-dns-scan v1"
SMTP_HEADER = "# repro-smtp-scan v1"


class ScanFormatError(ValueError):
    """Raised for malformed scan files."""


# ----------------------------------------------------------------------
# DNS captures
# ----------------------------------------------------------------------

def dump_dns_scan(dataset: DNSScanDataset) -> str:
    """One line per domain::

        <domain> ok <pref>:<exchange>:<ip|-> ...
        <domain> nxdomain
        <domain> servfail
        <domain> nomx
    """
    lines: List[str] = [DNS_HEADER, f"# scan-index {dataset.scan_index}"]
    for domain in sorted(dataset.observations):
        observation = dataset.observations[domain]
        if observation.nxdomain:
            lines.append(f"{domain} nxdomain")
        elif observation.servfail:
            lines.append(f"{domain} servfail")
        elif not observation.mx:
            lines.append(f"{domain} nomx")
        else:
            records = " ".join(
                f"{record.preference}:{record.exchange}:"
                f"{record.address if record.address is not None else '-'}"
                for record in observation.mx
            )
            lines.append(f"{domain} ok {records}")
    return "\n".join(lines) + "\n"


def load_dns_scan(text: str) -> DNSScanDataset:
    """Parse the :func:`dump_dns_scan` format."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != DNS_HEADER:
        raise ScanFormatError("missing or unknown DNS scan header")
    scan_index = 0
    dataset = None
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if line.startswith("# scan-index"):
            scan_index = int(line.split()[-1])
            continue
        if not line or line.startswith("#"):
            continue
        if dataset is None:
            dataset = DNSScanDataset(scan_index=scan_index)
        parts = line.split()
        if len(parts) < 2:
            raise ScanFormatError(f"malformed DNS scan line {line_number}")
        domain, status, *records = parts
        observation = DomainObservation(domain=domain)
        if status == "nxdomain":
            observation.nxdomain = True
        elif status == "servfail":
            observation.servfail = True
        elif status == "nomx":
            pass
        elif status == "ok":
            for token in records:
                pref, _, rest = token.partition(":")
                exchange, _, address = rest.rpartition(":")
                if not exchange:
                    raise ScanFormatError(
                        f"malformed MX token {token!r} on line {line_number}"
                    )
                observation.mx.append(
                    MXObservation(
                        preference=int(pref),
                        exchange=exchange,
                        address=(
                            None
                            if address == "-"
                            else IPv4Address.parse(address)
                        ),
                    )
                )
        else:
            raise ScanFormatError(
                f"unknown status {status!r} on line {line_number}"
            )
        dataset.add(observation)
    if dataset is None:
        dataset = DNSScanDataset(scan_index=scan_index)
    return dataset


# ----------------------------------------------------------------------
# SMTP captures
# ----------------------------------------------------------------------

def dump_smtp_scan(dataset: SMTPScanDataset) -> str:
    """One listening address per line."""
    lines = [
        SMTP_HEADER,
        f"# scan-index {dataset.scan_index}",
        f"# probed {dataset.probed}",
    ]
    lines.extend(str(address) for address in sorted(dataset.listening))
    return "\n".join(lines) + "\n"


def load_smtp_scan(text: str) -> SMTPScanDataset:
    """Parse the :func:`dump_smtp_scan` format."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != SMTP_HEADER:
        raise ScanFormatError("missing or unknown SMTP scan header")
    dataset = SMTPScanDataset(scan_index=0)
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if line.startswith("# scan-index"):
            dataset.scan_index = int(line.split()[-1])
            continue
        if line.startswith("# probed"):
            dataset.probed = int(line.split()[-1])
            continue
        if not line or line.startswith("#"):
            continue
        dataset.add(IPv4Address.parse(line))
    return dataset
