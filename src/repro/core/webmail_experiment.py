"""The webmail retry experiment (paper §V.B, Table III).

For each of the ten providers: create an account, send one message to a
test mailbox on a server greylisted at six hours (with Postgrey's default
provider whitelist removed), and record every delivery attempt.  Here the
provider models play their measured schedules against the real greylisting
implementation, regenerating the SAME IP / ATTEMPTS / DELIVER / DELAYS
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.address import AddressPool, IPv4Network
from ..sim.clock import format_duration
from ..smtp.client import SMTPClient
from ..smtp.message import Message
from ..webmail.provider import DeliveryOutcome, ProviderSpec, WebmailDelivery
from ..webmail.providers import PROVIDERS
from .testbed import Defense, Testbed, TestbedConfig

#: The experiment's "excessively large" threshold: six hours.
SIX_HOURS = 21600.0


@dataclass
class WebmailRow:
    """One reproduced row of Table III."""

    provider: str
    same_ip: bool
    ip_pool_size: int
    attempts: int
    delivered: bool
    retry_delays: List[float]        # seconds, re-transmissions only
    delivery_age: Optional[float]

    def delays_mmss(self) -> List[str]:
        return [format_duration(delay) for delay in self.retry_delays]


def run_provider(
    spec: ProviderSpec,
    threshold: float = SIX_HOURS,
    seed_domain: str = "victim.example",
    horizon: float = 60 * 86400.0,
) -> WebmailRow:
    """Play one provider's schedule against a greylisted server."""
    testbed = Testbed(
        TestbedConfig(
            defense=Defense.GREYLISTING,
            victim_domain=seed_domain,
            greylist_delay=threshold,
            greylist_whitelist=None,  # stock whitelist removed, as in §V.B
        )
    )
    provider_pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    client = SMTPClient(
        internet=testbed.internet,
        resolver=testbed.resolver,
        source_address=provider_pool.allocate(),
        helo_name=f"out1.{spec.name}",
    )
    delivery = WebmailDelivery(
        spec=spec,
        scheduler=testbed.scheduler,
        client=client,
        address_pool=provider_pool,
    )
    message = Message(
        sender=f"tester@{spec.name}",
        recipients=[f"testaccount@{seed_domain}"],
        subject="greylisting probe",
        body="one message per provider, as in the paper",
    )
    outcome: DeliveryOutcome = delivery.deliver(
        message, f"testaccount@{seed_domain}"
    )
    testbed.run(horizon=horizon)
    return WebmailRow(
        provider=spec.name,
        same_ip=spec.uses_single_ip,
        ip_pool_size=spec.ip_pool_size,
        attempts=outcome.attempts,
        delivered=outcome.delivered,
        retry_delays=outcome.retry_ages,
        delivery_age=outcome.delivery_age,
    )


def run_webmail_experiment(
    providers: Sequence[ProviderSpec] = PROVIDERS,
    threshold: float = SIX_HOURS,
) -> List[WebmailRow]:
    """Reproduce all of Table III."""
    return [run_provider(spec, threshold=threshold) for spec in providers]
