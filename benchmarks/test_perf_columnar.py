"""Microbenchmarks of the streaming columnar engine.

Two hard gates ride the smoke-bench set:

* **Throughput floor** — the columnar internet-scale path must sustain at
  least 1,000,000 domains/sec at a 1,000,000-domain internet.  That floor
  is what makes the 10,000,000-domain sweep in
  ``test_extra_internet_scale.py`` a seconds-scale run.
* **Memory budget** — peak Python-heap allocation of the same run must
  stay under a fixed cap.  The deployment column is streamed in
  fixed-size chunks and only targeted cells are retained, so the peak is
  set by the chunk size and the spam wave, not by the domain count;
  measured ~7 MiB at both 1M and 4M domains, gated at 24 MiB.

Both gates run on the pure-Python fallback too (``REPRO_NO_NUMPY=1``):
the streaming shape, not NumPy, is what bounds the memory.
"""

from repro.core.adoption import run_adoption_experiment
from repro.core.internet_scale import run_internet_scale

from _util import emit, traced_peak_mb

NUM_DOMAINS = 1_000_000
#: Hard floor on columnar internet-scale throughput (domains/sec).
THROUGHPUT_FLOOR = 1_000_000
#: Hard cap on peak heap allocation for the 1M-domain run (MiB).
MEMORY_CAP_MB = 24.0


def _run_wave():
    return run_internet_scale(
        num_domains=NUM_DOMAINS,
        greylisting_rate=0.5,
        nolisting_rate=0.1,
        messages=400,
        seed=61,
        engine="columnar",
    )


def test_perf_columnar_internet_scale(benchmark):
    """1M-domain spam wave: >=1M domains/sec, peak heap under 24 MiB."""
    result = benchmark.pedantic(_run_wave, rounds=3, iterations=1)
    assert result.spam_sent == 400

    domains_per_sec = NUM_DOMAINS / benchmark.stats.stats.min
    # Memory is probed outside the timed rounds: tracing costs ~5x the
    # untraced run and would corrupt the throughput measurement.
    _, peak_mb = traced_peak_mb(_run_wave)
    benchmark.extra_info["domains_per_sec"] = round(domains_per_sec)
    benchmark.extra_info["peak_rss_mb"] = round(peak_mb, 2)
    emit(
        "Columnar engine gates",
        f"throughput: {domains_per_sec:,.0f} domains/sec "
        f"(floor {THROUGHPUT_FLOOR:,})\n"
        f"peak heap : {peak_mb:.2f} MiB (cap {MEMORY_CAP_MB:.0f} MiB) "
        f"at {NUM_DOMAINS:,} domains",
    )
    assert domains_per_sec >= THROUGHPUT_FLOOR
    assert peak_mb < MEMORY_CAP_MB


def test_perf_columnar_adoption(benchmark):
    """Columnar adoption scan: classify 2,000 domains from columns."""

    def run():
        result = run_adoption_experiment(
            num_domains=2000, seed=7, engine="columnar"
        )
        return result.summary.total_domains

    assert benchmark(run) == 2000
