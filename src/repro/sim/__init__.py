"""Deterministic discrete-event simulation kernel.

Everything time- or randomness-dependent in the reproduction runs on top of
this package: a virtual :class:`Clock`, a FIFO-stable :class:`EventScheduler`
and splittable :class:`RandomStream` seeds.
"""

from .clock import Clock, ClockError, format_duration, parse_duration
from .events import EventHandle, EventScheduler, SchedulerError
from .rng import RandomStream, spread

__all__ = [
    "Clock",
    "ClockError",
    "EventHandle",
    "EventScheduler",
    "RandomStream",
    "SchedulerError",
    "format_duration",
    "parse_duration",
    "spread",
]
