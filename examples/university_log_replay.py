#!/usr/bin/env python3
"""University deployment log replay: the Figure 5 analysis end to end.

Simulates four months of benign traffic through a 300 s greylisting policy
(the paper's university deployment), dumps the anonymized attempt log to a
file in the paper's "timestamps only" spirit, parses it back, and renders
the delivery-delay CDF — demonstrating that the whole Figure 5 analysis
runs off the log artefact alone.

Run:  python examples/university_log_replay.py [logfile]
"""

import sys
import tempfile

from repro.analysis.cdf import EmpiricalCDF
from repro.core.reports import figure5_text
from repro.maillog.records import delivery_delays, dump_logs, parse_logs
from repro.maillog.university import DeploymentConfig, UniversityDeployment


def main() -> None:
    log_path = sys.argv[1] if len(sys.argv) > 1 else None

    config = DeploymentConfig(
        threshold=300.0, duration_days=120.0, num_messages=2000
    )
    print("simulating 4 months of benign traffic through greylisting "
          f"(threshold {config.threshold:g}s, {config.num_messages} "
          "messages) ...")
    result = UniversityDeployment(config, seed=5).run()

    # Dump the anonymized log (timestamps only, hashed keys).
    if log_path is None:
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".greylist.log", delete=False
        )
        log_path = handle.name
        handle.write(dump_logs(result.logs))
        handle.close()
    else:
        with open(log_path, "w") as handle:
            handle.write(dump_logs(result.logs))
    print(f"anonymized log written to {log_path}")

    # The analysis below uses ONLY the log file.
    with open(log_path) as handle:
        logs = parse_logs(handle.read())
    delays = delivery_delays(logs)
    delivered = sum(1 for log in logs if log.delivered)
    lost = len(logs) - delivered

    print(f"\nparsed {len(logs)} greylisted messages: "
          f"{delivered} delivered, {lost} never retried (lost)")

    cdf = EmpiricalCDF.from_samples(delays)
    print()
    print(figure5_text(cdf, config.threshold))

    print("\nsender-kind mix of the simulation (ground truth, not in the log):")
    for kind, count in sorted(result.kind_counts.items()):
        print(f"  {kind:<22} {count}")

    print(
        "\npaper's reading of this curve: 'only half of the messages get\n"
        "delivered in less than 10 minutes ... some are delivered with over\n"
        "50 minutes of delay, and some even beyond that.'"
    )


if __name__ == "__main__":
    main()
