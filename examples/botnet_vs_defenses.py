#!/usr/bin/env python3
"""The malware-vs-defences study: Tables I-II and the §VI coverage headline.

Runs all 11 malware samples (four families) against servers protected by
greylisting and by nolisting, classifies each family's MX behaviour, and
computes how much of the world's spam each defence — and the combination —
stops.

Run:  python examples/botnet_vs_defenses.py
"""

from repro.botnet.samples import collect_samples
from repro.core.coverage import build_coverage_report
from repro.core.defense_matrix import build_defense_matrix
from repro.core.mx_classifier import classify_sample
from repro.core.reports import table1_text, table2_text


def main() -> None:
    print(table1_text())

    print("\nclassifying each sample's MX-selection behaviour "
          "(dead-MX observation domain) ...")
    for sample in collect_samples():
        result = classify_sample(sample)
        trace = " -> ".join(dict.fromkeys(result.contacted)) or "(nothing)"
        print(f"  {result.sample_label:<24} {result.inferred.value:<16} "
              f"contacted: {trace}")

    print("\nrunning all samples against greylisting (300s) and nolisting ...")
    matrix = build_defense_matrix(recipients=3)
    print()
    print(table2_text(matrix))

    report = build_coverage_report(matrix)
    print("\nglobal spam prevented (share of 2014 world spam):")
    print(f"  greylisting alone : {100 * report.greylisting_share:.2f}%")
    print(f"  nolisting alone   : {100 * report.nolisting_share:.2f}%")
    print(f"  both combined     : {100 * report.combined_share:.2f}%")
    print("\npaper: 'over 70% of the world spam is prevented by using "
          "either one or the other technique'")


if __name__ == "__main__":
    main()
