"""Naive-Bayes content classification (the post-acceptance baseline).

The paper's taxonomy splits anti-spam into sender-based pre-acceptance
tests (greylisting, nolisting, DNSBL, SPF — all built elsewhere in this
package) and content-based post-acceptance tests, of which the Bayesian
filter is the canonical representative.  This is a clean, standard
implementation: bag-of-words features, Laplace smoothing, log-space
scoring — enough to serve as the comparison point the intro sets up.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9$!]+")


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens; currency/urgency glyphs kept (spam signals).

    >>> tokenize("WIN $$$ now!!!")
    ['win', '$$$', 'now!!!']
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass
class ClassifierStats:
    trained_spam: int = 0
    trained_ham: int = 0
    classified: int = 0


class NaiveBayesFilter:
    """Binary spam/ham classifier over token counts.

    Parameters
    ----------
    threshold:
        Posterior spam probability above which a message is called spam.
    smoothing:
        Laplace pseudo-count.
    """

    def __init__(self, threshold: float = 0.9, smoothing: float = 1.0) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must lie in (0, 1)")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.threshold = threshold
        self.smoothing = smoothing
        self._spam_counts: Dict[str, int] = {}
        self._ham_counts: Dict[str, int] = {}
        self._spam_total = 0
        self._ham_total = 0
        self.stats = ClassifierStats()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, text: str, is_spam: bool) -> None:
        counts = self._spam_counts if is_spam else self._ham_counts
        for token in tokenize(text):
            counts[token] = counts.get(token, 0) + 1
        if is_spam:
            self._spam_total += 1
            self.stats.trained_spam += 1
        else:
            self._ham_total += 1
            self.stats.trained_ham += 1

    def train_many(self, texts: Iterable[str], is_spam: bool) -> None:
        for text in texts:
            self.train(text, is_spam)

    @property
    def is_trained(self) -> bool:
        return self._spam_total > 0 and self._ham_total > 0

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def spam_probability(self, text: str) -> float:
        """P(spam | tokens) under the naive-Bayes model."""
        if not self.is_trained:
            raise RuntimeError("classifier needs both spam and ham training")
        self.stats.classified += 1
        vocabulary = set(self._spam_counts) | set(self._ham_counts)
        v = len(vocabulary) or 1
        spam_tokens = sum(self._spam_counts.values())
        ham_tokens = sum(self._ham_counts.values())
        log_spam = math.log(self._spam_total / (self._spam_total + self._ham_total))
        log_ham = math.log(self._ham_total / (self._spam_total + self._ham_total))
        for token in tokenize(text):
            log_spam += math.log(
                (self._spam_counts.get(token, 0) + self.smoothing)
                / (spam_tokens + self.smoothing * v)
            )
            log_ham += math.log(
                (self._ham_counts.get(token, 0) + self.smoothing)
                / (ham_tokens + self.smoothing * v)
            )
        # Normalize in log space.
        m = max(log_spam, log_ham)
        spam = math.exp(log_spam - m)
        ham = math.exp(log_ham - m)
        return spam / (spam + ham)

    def is_spam(self, text: str) -> bool:
        return self.spam_probability(text) >= self.threshold

    def top_spam_tokens(self, k: int = 10) -> List[Tuple[str, float]]:
        """Tokens with the highest spam/ham likelihood ratio (diagnostics)."""
        vocabulary = set(self._spam_counts) | set(self._ham_counts)
        v = len(vocabulary) or 1
        spam_tokens = sum(self._spam_counts.values())
        ham_tokens = sum(self._ham_counts.values())
        scored = []
        for token in vocabulary:  # repro: noqa ORD001 - scored is fully sorted below
            p_spam = (self._spam_counts.get(token, 0) + self.smoothing) / (
                spam_tokens + self.smoothing * v
            )
            p_ham = (self._ham_counts.get(token, 0) + self.smoothing) / (
                ham_tokens + self.smoothing * v
            )
            scored.append((token, p_spam / p_ham))
        # Tie-break on the token so the cut at k does not depend on set
        # iteration order (i.e. on hash randomization).
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]
