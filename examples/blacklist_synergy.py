#!/usr/bin/env python3
"""Greylisting x blacklisting synergy: the §II rebuttal, measured.

Kelihos retries through greylisting (Figure 3) and outruns a reactive
blacklist's listing latency when it delivers on the first attempt.  The
pro-greylisting argument is that *stacked*, the greylist's forced delay
gives the blacklist time to list the sender.  This example measures the
three configurations and then asks the operational questions: how fast
must the ecosystem notice a spammer, and how long a threshold buys enough
time?

Run:  python examples/blacklist_synergy.py
"""

from repro.analysis.tables import format_seconds, render_table
from repro.core.synergy import (
    run_synergy_comparison,
    sweep_greylist_delay,
    sweep_listing_speed,
)


def main() -> None:
    print("running Kelihos against greylisting / DNSBL / both ...\n")
    results = run_synergy_comparison()
    print(
        render_table(
            headers=("Configuration", "Spam delivered", "DNSBL rejections",
                     "Bot listed after"),
            rows=[
                (
                    r.configuration,
                    f"{r.delivered}/{r.num_messages}",
                    r.dnsbl_rejections,
                    format_seconds(r.listed_after) if r.listed_after else "-",
                )
                for r in results
            ],
            title="Each defence alone fails; the stack blocks everything",
        )
    )

    print("\nhow fast must the ecosystem report the spammer? "
          "(stacked, 300s threshold)")
    for r in sweep_listing_speed(rates_per_hour=(2.0, 20.0, 60.0, 200.0)):
        verdict = "BLOCKED" if r.blocked else f"{r.delivery_rate:.0%} delivered"
        print(f"  {r.reports_per_hour:>6.0f} reports/hour -> {verdict} "
              f"(listed after {format_seconds(r.listed_after)})")

    print("\nor: how long a greylisting delay buys a slow blacklist time? "
          "(60 reports/hour)")
    for r in sweep_greylist_delay(delays=(5.0, 300.0, 3600.0, 21600.0)):
        verdict = "BLOCKED" if r.blocked else f"{r.delivery_rate:.0%} delivered"
        print(f"  threshold {format_seconds(r.greylist_delay):>7} -> {verdict}")

    print(
        "\nreading: against fast-retrying malware, greylisting's delay only\n"
        "pays off in combination with reputation systems — and the required\n"
        "threshold is exactly the blacklist's reaction time."
    )


if __name__ == "__main__":
    main()
