"""Parallel runs must be bit-for-bit identical to serial runs.

The contract that makes ``--workers N`` safe to use anywhere: chunked
generation, per-payload RNG derivation and ordered merge together mean the
worker count can never change a result — only how fast it arrives.
"""

import pytest

from repro.core.adoption import run_adoption_experiment
from repro.core.sensitivity import adoption_sensitivity
from repro.runner.cache import ResultCache
from repro.scan.population import (
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def serial_adoption():
    return run_adoption_experiment(num_domains=1200, seed=17)


class TestAdoptionDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_workers_do_not_change_result(self, serial_adoption, workers):
        run = run_adoption_experiment(num_domains=1200, seed=17, workers=workers)
        assert run == serial_adoption

    def test_cached_rerun_identical(self, serial_adoption, tmp_path):
        cache = ResultCache(root=tmp_path)
        cold = run_adoption_experiment(
            num_domains=1200, seed=17, workers=2, cache=cache
        )
        assert cache.stores > 0
        warm = run_adoption_experiment(
            num_domains=1200, seed=17, workers=2, cache=cache
        )
        assert cache.hits >= cache.stores
        assert cold == serial_adoption
        assert warm == serial_adoption


class TestSensitivityDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_adoption_sensitivity_identical(self, workers):
        serial = adoption_sensitivity(seeds=(1, 2), num_domains=600)
        fanned = adoption_sensitivity(
            seeds=(1, 2), num_domains=600, workers=workers
        )
        assert fanned == serial


class TestShardedGeneration:
    def test_shards_union_equals_full_population(self):
        config = PopulationConfig(num_domains=1100, chunk_size=256)
        full = SyntheticInternet(config, seed=23)
        pieces = [
            SyntheticInternet.shard(config, 23, [k])
            for k in range(config.num_chunks)
        ]
        stitched = [truth for piece in pieces for truth in piece.domains]
        assert len(stitched) == len(full.domains)
        for mine, theirs in zip(stitched, full.domains):
            assert mine.name == theirs.name
            assert mine.category is theirs.category
            assert mine.mx_hosts == theirs.mx_hosts
            assert mine.outage_scan == theirs.outage_scan
            assert mine.persistent_outage == theirs.persistent_outage
            assert mine.alexa_rank == theirs.alexa_rank

    def test_shard_content_independent_of_sibling_chunks(self):
        config = PopulationConfig(num_domains=1024, chunk_size=256)
        alone = SyntheticInternet.shard(config, 5, [2])
        with_siblings = SyntheticInternet.shard(config, 5, [0, 2, 3])
        by_name = {t.name: t for t in with_siblings.domains}
        for truth in alone.domains:
            sibling = by_name[truth.name]
            assert truth.mx_hosts == sibling.mx_hosts
            assert truth.outage_scan == sibling.outage_scan

    def test_chunk_size_is_part_of_population_identity(self):
        # Different chunk sizes are different populations (documented, so
        # cache keys and shard merges can rely on it) — but the category
        # totals still follow the configured mix exactly.
        a = SyntheticInternet(PopulationConfig(num_domains=600, chunk_size=100), seed=3)
        b = SyntheticInternet(PopulationConfig(num_domains=600, chunk_size=300), seed=3)
        assert a.truth_counts() == b.truth_counts()

    def test_plan_category_totals_exact(self):
        config = PopulationConfig(num_domains=5000)
        internet = SyntheticInternet(config, seed=11)
        counts = internet.truth_counts()
        assert counts[DomainCategory.NOLISTING] == 26
        assert sum(counts.values()) == 5000
