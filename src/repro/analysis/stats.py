"""Small summary-statistics helpers shared by experiments and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float


def summarize(samples: Iterable[float]) -> Summary:
    values = sorted(float(s) for s in samples)
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)

    def pct(q: float) -> float:
        index = max(0, min(n - 1, int(-(-q * n // 1)) - 1))
        return values[index]

    return Summary(
        n=n,
        mean=sum(values) / n,
        minimum=values[0],
        p25=pct(0.25),
        median=pct(0.5),
        p75=pct(0.75),
        p90=pct(0.9),
        maximum=values[-1],
    )


def histogram(
    samples: Sequence[float], edges: Sequence[float]
) -> List[Tuple[Tuple[float, float], int]]:
    """Bin samples into [edges[i], edges[i+1]) intervals.

    Used to locate the retry-delay peaks of Figure 4.
    """
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    if sorted(edges) != list(edges):
        raise ValueError("bin edges must be ascending")
    counts = [0] * (len(edges) - 1)
    for sample in samples:
        for i in range(len(edges) - 1):
            if edges[i] <= sample < edges[i + 1]:
                counts[i] += 1
                break
    return [
        ((edges[i], edges[i + 1]), counts[i]) for i in range(len(edges) - 1)
    ]


def fraction_within(samples: Sequence[float], bound: float) -> float:
    """Fraction of samples <= bound."""
    if not samples:
        raise ValueError("empty sample")
    return sum(1 for s in samples if s <= bound) / len(samples)
