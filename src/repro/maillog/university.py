"""The university mail-server deployment (paper §V.B, Figure 5).

The paper's dataset is four months of anonymized greylist logs from the
mail server of the CS department of Università degli Studi di Milano,
greylisting threshold 300 s.  We substitute a synthetic deployment: benign
mail arrives over the same window from a realistic *mixture of sender
behaviours* — the documented MTA retry schedules of Table IV, the webmail
farms of Table III (multi-IP pools included), sparse automated notifiers,
and a few non-retrying clients — and every attempt flows through the real
:class:`~repro.greylist.policy.GreylistPolicy` on the event scheduler.

The Figure 5 CDF shape is an *output* of this simulation, not an input:
slow-rising because half the senders' first useful retry lands past ten
minutes, with a long tail driven by multi-IP farms whose pool rotation
keeps resetting the greylist triplet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..greylist.policy import GreylistPolicy
from ..greylist.whitelist import Whitelist
from ..mta.profiles import PROFILES
from ..net.address import AddressPool, IPv4Network
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..webmail.provider import ProviderSpec
from ..webmail.providers import PROVIDER_BY_NAME
from .records import GreylistedMessageLog, anonymize

DAY = 86400.0
TEN_HOURS = 36000.0


def _mta_spec(name: str) -> ProviderSpec:
    """Turn a Table IV MTA profile into an attempt-schedule spec."""
    profile = PROFILES[name]
    ages = profile.schedule.attempt_times(TEN_HOURS)[1:]
    return ProviderSpec(
        name=f"mta:{name}",
        retry_ages=ages,
        ip_pool_size=1,
        continuation_interval=(ages[-1] - ages[-2]) if len(ages) >= 2 else 3600.0,
        max_attempts=100,
    )


SpecFactory = Callable[[RandomStream], ProviderSpec]


def _fixed(spec: ProviderSpec) -> SpecFactory:
    return lambda rng: spec


def _sparse_notifier(rng: RandomStream) -> ProviderSpec:
    """Automated senders (cron jobs, ticketing systems) with sparse retries."""
    first = rng.uniform(1800.0, 5400.0)
    return ProviderSpec(
        name="sparse-notifier",
        retry_ages=(first, first * 2.2, first * 4.8),
        ip_pool_size=1,
        continuation_interval=first * 4.0,
        max_attempts=12,
    )


def _impatient_mta(rng: RandomStream) -> ProviderSpec:
    """Small MTAs with custom, quickish retry timers."""
    first = rng.uniform(350.0, 900.0)
    return ProviderSpec(
        name="impatient-mta",
        retry_ages=(first, first * 2, first * 4),
        ip_pool_size=1,
        continuation_interval=first * 3,
        max_attempts=30,
    )


def _no_retry(rng: RandomStream) -> ProviderSpec:
    """Broken notification scripts that never retry (and lose their mail)."""
    return ProviderSpec(
        name="no-retry",
        retry_ages=(),
        ip_pool_size=1,
        continuation_interval=None,
        max_attempts=1,
    )


#: Default benign-traffic mixture: (kind label, weight, spec factory).
DEFAULT_SENDER_MIX: Tuple[Tuple[str, float, SpecFactory], ...] = (
    ("mta:postfix", 0.20, _fixed(_mta_spec("postfix"))),
    ("mta:sendmail", 0.12, _fixed(_mta_spec("sendmail"))),
    ("mta:exim", 0.09, _fixed(_mta_spec("exim"))),
    ("mta:qmail", 0.07, _fixed(_mta_spec("qmail"))),
    ("mta:courier", 0.07, _fixed(_mta_spec("courier"))),
    ("mta:exchange", 0.09, _fixed(_mta_spec("exchange"))),
    ("webmail:gmail.com", 0.04, _fixed(PROVIDER_BY_NAME["gmail.com"])),
    ("webmail:yahoo.co.uk", 0.04, _fixed(PROVIDER_BY_NAME["yahoo.co.uk"])),
    ("webmail:mail.ru", 0.03, _fixed(PROVIDER_BY_NAME["mail.ru"])),
    ("webmail:gmx.com", 0.03, _fixed(PROVIDER_BY_NAME["gmx.com"])),
    ("webmail:mail.com", 0.03, _fixed(PROVIDER_BY_NAME["mail.com"])),
    ("webmail:qq.com", 0.02, _fixed(PROVIDER_BY_NAME["qq.com"])),
    ("sparse-notifier", 0.09, _sparse_notifier),
    ("impatient-mta", 0.05, _impatient_mta),
    ("no-retry", 0.03, _no_retry),
)


@dataclass
class DeploymentConfig:
    """Knobs of the synthetic deployment."""

    threshold: float = 300.0
    duration_days: float = 120.0           # January-April 2015
    num_messages: int = 2000
    sender_mix: Sequence[Tuple[str, float, SpecFactory]] = DEFAULT_SENDER_MIX
    whitelist: Optional[Whitelist] = None
    address_space: str = "172.16.0.0/12"

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.num_messages < 1:
            raise ValueError("need at least one message")
        if not self.sender_mix:
            raise ValueError("sender mix cannot be empty")


@dataclass
class DeploymentResult:
    """Output of one deployment run."""

    logs: List[GreylistedMessageLog]
    policy: GreylistPolicy
    kind_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def delivered(self) -> List[GreylistedMessageLog]:
        return [log for log in self.logs if log.delivered]

    @property
    def lost(self) -> List[GreylistedMessageLog]:
        return [log for log in self.logs if not log.delivered]

    def delivery_delays(self) -> List[float]:
        return [
            log.delivery_delay
            for log in self.delivered
            if log.delivery_delay is not None
        ]

    @property
    def loss_rate(self) -> float:
        if not self.logs:
            return 0.0
        return len(self.lost) / len(self.logs)


class UniversityDeployment:
    """Runs the synthetic four-month greylisted deployment."""

    def __init__(self, config: DeploymentConfig, seed: int) -> None:
        self.config = config
        self.seed = seed

    def run(self) -> DeploymentResult:
        rng = RandomStream(self.seed, "university")
        scheduler = EventScheduler(Clock())
        policy = GreylistPolicy(
            clock=scheduler.clock,
            delay=self.config.threshold,
            whitelist=self.config.whitelist,
        )
        pool = AddressPool(IPv4Network.parse(self.config.address_space))
        logs: List[GreylistedMessageLog] = []
        kind_counts: Dict[str, int] = {}

        arrival_rng = rng.split("arrivals")
        mix_rng = rng.split("mix")
        spec_rng = rng.split("specs")
        weights = [w for (_, w, _) in self.config.sender_mix]

        horizon = self.config.duration_days * DAY
        arrivals = sorted(
            arrival_rng.uniform(0.0, horizon)
            for _ in range(self.config.num_messages)
        )

        for index, arrival in enumerate(arrivals):
            kind, _, factory = self.config.sender_mix[
                mix_rng.weighted_index(weights)
            ]
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
            spec = factory(spec_rng.split(f"msg{index}"))
            addresses = pool.allocate_many(spec.ip_pool_size)
            if kind.startswith("webmail:"):
                # Real provider domain, so provider whitelists can match.
                sender_domain = kind.split(":", 1)[1]
            else:
                sender_domain = f"{kind.split(':')[-1].replace('_', '')}.example"
            sender = f"user{index}@{sender_domain}"
            recipient = f"staff{index % 97}@cs.unimi.example"
            log = GreylistedMessageLog(
                message_key=anonymize(sender, recipient, str(addresses[0])),
                sender_kind=kind,
            )
            logs.append(log)
            self._schedule_message(
                scheduler, policy, spec, addresses, sender, recipient,
                arrival, log,
            )

        scheduler.run()
        return DeploymentResult(
            logs=logs, policy=policy, kind_counts=kind_counts
        )

    @staticmethod
    def _schedule_message(
        scheduler: EventScheduler,
        policy: GreylistPolicy,
        spec: ProviderSpec,
        addresses: List,
        sender: str,
        recipient: str,
        arrival: float,
        log: GreylistedMessageLog,
    ) -> None:
        def attempt(number: int) -> None:
            if log.delivered:
                return
            client = addresses[spec.pool_index(number)]
            log.attempt_times.append(scheduler.now)
            decision = policy.on_rcpt_to(client, sender, recipient)
            if decision.accept:
                log.delivered = True
                return
            next_age = spec.attempt_age(number + 1)
            if next_age is None:
                return
            fire_at = arrival + next_age
            scheduler.schedule_at(
                max(fire_at, scheduler.now),
                lambda: attempt(number + 1),
                label=f"deploy:{log.message_key}:{number + 1}",
            )

        scheduler.schedule_at(
            arrival, lambda: attempt(1), label=f"deploy:{log.message_key}:1"
        )
