"""Nolisting zone construction.

Nolisting registers a *non-functional* primary MX (an address with port 25
closed) ahead of the real mail server.  RFC-compliant senders fall through to
the secondary; primary-only bots fail.  This module builds the DNS + host
configuration for a nolisted domain in one call, and also offers the plain
(single-MX and multi-MX) configurations used as controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.address import AddressPool, IPv4Address
from ..net.host import SMTP_PORT, VirtualHost
from ..net.network import VirtualInternet
from .zone import Zone, ZoneStore

# A factory producing the SMTP listener session for a working mail host.
SMTPFactory = Callable[[IPv4Address], object]


@dataclass
class MailDomainSetup:
    """Everything created for one mail domain."""

    domain: str
    zone: Zone
    hosts: List[VirtualHost]
    mx_hostnames: List[str]

    @property
    def primary_host(self) -> VirtualHost:
        return self.hosts[0]


def _register_mail_host(
    internet: VirtualInternet,
    hostname: str,
    address: IPv4Address,
    listening: bool,
    factory: Optional[SMTPFactory],
) -> VirtualHost:
    host = VirtualHost(hostname, [address])
    if listening:
        if factory is None:
            raise ValueError(f"host {hostname} should listen but has no factory")
        host.listen(SMTP_PORT, factory)
    internet.register(host)
    return host


def setup_single_mx(
    internet: VirtualInternet,
    zones: ZoneStore,
    pool: AddressPool,
    domain: str,
    factory: SMTPFactory,
    preference: int = 10,
) -> MailDomainSetup:
    """A plain domain with one working MX (the 47.7 % majority in Figure 2)."""
    zone = zones.get_or_create(domain)
    mx_name = f"smtp.{domain}"
    address = pool.allocate()
    zone.add_a(mx_name, address)
    zone.add_mx(preference, mx_name)
    host = _register_mail_host(internet, mx_name, address, True, factory)
    return MailDomainSetup(domain, zone, [host], [mx_name])


def setup_multi_mx(
    internet: VirtualInternet,
    zones: ZoneStore,
    pool: AddressPool,
    domain: str,
    factory: SMTPFactory,
    count: int = 2,
) -> MailDomainSetup:
    """A domain with ``count`` working MX hosts at increasing preference."""
    if count < 2:
        raise ValueError("multi-MX setup needs at least two exchangers")
    zone = zones.get_or_create(domain)
    hosts: List[VirtualHost] = []
    names: List[str] = []
    for index in range(count):
        mx_name = f"smtp{index}.{domain}" if index else f"smtp.{domain}"
        address = pool.allocate()
        zone.add_a(mx_name, address)
        zone.add_mx((index + 1) * 10, mx_name)
        hosts.append(
            _register_mail_host(internet, mx_name, address, True, factory)
        )
        names.append(mx_name)
    return MailDomainSetup(domain, zone, hosts, names)


def setup_nolisting(
    internet: VirtualInternet,
    zones: ZoneStore,
    pool: AddressPool,
    domain: str,
    factory: SMTPFactory,
    primary_preference: int = 0,
    secondary_preference: int = 15,
) -> MailDomainSetup:
    """A nolisted domain, mirroring Figure 1 of the paper.

    The primary MX (``smtp.domain``, preference 0) resolves to a real host
    whose port 25 is **closed** — connections are actively refused, exactly
    as the technique's authors recommend (a proper A record pointing at a
    machine that RSTs, indistinguishable from a malfunctioning server).  The
    secondary MX (``smtp1.domain``) runs the actual mail service.
    """
    zone = zones.get_or_create(domain)
    primary_name = f"smtp.{domain}"
    secondary_name = f"smtp1.{domain}"
    primary_address = pool.allocate()
    secondary_address = pool.allocate()
    zone.add_a(primary_name, primary_address)
    zone.add_a(secondary_name, secondary_address)
    zone.add_mx(primary_preference, primary_name)
    zone.add_mx(secondary_preference, secondary_name)
    primary = _register_mail_host(
        internet, primary_name, primary_address, False, None
    )
    secondary = _register_mail_host(
        internet, secondary_name, secondary_address, True, factory
    )
    return MailDomainSetup(
        domain, zone, [primary, secondary], [primary_name, secondary_name]
    )


def setup_misconfigured(
    zones: ZoneStore,
    domain: str,
    mode: str = "no-mx",
) -> Zone:
    """A broken domain of the kind the DNS-ANY dataset contains.

    Modes
    -----
    ``no-mx``:
        The zone exists but has no MX records at all.
    ``dangling-mx``:
        The MX points at an exchange with no A record anywhere.
    """
    zone = zones.get_or_create(domain)
    if mode == "no-mx":
        zone.add_txt(domain, "v=misconfigured")
    elif mode == "dangling-mx":
        zone.add_mx(10, f"ghost.{domain}")
    else:
        raise ValueError(f"unknown misconfiguration mode {mode!r}")
    return zone
