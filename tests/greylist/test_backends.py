"""Unit tests for the pluggable triplet-store backends."""

import sqlite3

import pytest

from repro.greylist.backends import (
    BACKEND_NAMES,
    JOURNAL_HEADER,
    JournalBackend,
    MemoryBackend,
    SQLiteBackend,
    TripletBackend,
    create_backend,
    entry_is_expired,
)
from repro.greylist.persistence import FORMAT_HEADER, PersistenceError
from repro.greylist.store import TripletEntry
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address


def triplet(i=0, sender=None):
    return Triplet(
        IPv4Address.parse(f"198.51.100.{i % 250 + 1}"),
        sender or f"s{i}@x.example",
        "r@y.example",
    )


def entry(i=0, first=0.0, last=None, attempts=1, passed=False,
          passed_at=None, sender=None):
    return TripletEntry(
        triplet=triplet(i, sender=sender),
        first_seen=first,
        last_seen=last if last is not None else first,
        attempts=attempts,
        passed=passed,
        passed_at=passed_at,
    )


@pytest.fixture(params=BACKEND_NAMES)
def backend(request, tmp_path):
    """One instance of each backend, file-backed where that is possible."""
    path = None
    if request.param != "memory":
        path = tmp_path / f"store.{request.param}"
    built = create_backend(request.param, path)
    yield built
    built.close()


class TestBackendConformance:
    """The interface contract, identically for all three backends."""

    def test_get_missing_returns_none(self, backend):
        assert backend.get(triplet()) is None
        assert len(backend) == 0

    def test_put_get_roundtrip(self, backend):
        original = entry(0, first=10.0, last=250.5, attempts=3)
        backend.put(original)
        fetched = backend.get(triplet(0))
        assert fetched == original
        assert len(backend) == 1

    def test_floats_roundtrip_exactly(self, backend):
        # Awkward, non-representable decimals must survive bit-for-bit.
        original = entry(
            0, first=0.1 + 0.2, last=86400.000000001, passed=True,
            passed_at=1e-9,
        )
        backend.put(original)
        fetched = backend.get(triplet(0))
        assert fetched.first_seen == original.first_seen
        assert fetched.last_seen == original.last_seen
        assert fetched.passed_at == original.passed_at

    def test_put_updates_in_place(self, backend):
        backend.put(entry(0))
        backend.put(entry(0, first=0.0, last=500.0, attempts=2))
        fetched = backend.get(triplet(0))
        assert fetched.attempts == 2
        assert fetched.last_seen == 500.0
        assert len(backend) == 1

    def test_delete(self, backend):
        backend.put(entry(0))
        assert backend.delete(triplet(0)) is True
        assert backend.get(triplet(0)) is None
        assert backend.delete(triplet(0)) is False
        assert len(backend) == 0

    def test_scan_is_insertion_order(self, backend):
        for i in range(5):
            backend.put(entry(i, first=float(100 - i)))
        seen = [e.triplet for e in backend.scan()]
        assert seen == [triplet(i) for i in range(5)]

    def test_update_keeps_scan_position(self, backend):
        for i in range(3):
            backend.put(entry(i))
        backend.put(entry(1, last=999.0, attempts=7))
        seen = [e.triplet for e in backend.scan()]
        assert seen == [triplet(0), triplet(1), triplet(2)]

    def test_delete_reinsert_moves_to_end(self, backend):
        for i in range(3):
            backend.put(entry(i))
        backend.delete(triplet(0))
        backend.put(entry(0))
        seen = [e.triplet for e in backend.scan()]
        assert seen == [triplet(1), triplet(2), triplet(0)]

    def test_expire_counts_by_class(self, backend):
        backend.put(entry(0, last=0.0))                       # stale grey
        backend.put(entry(1, last=0.0, passed=True, passed_at=0.0))
        backend.put(entry(2, last=90.0))                      # live grey
        unconfirmed, confirmed = backend.expire(
            100.0, retry_window=50.0, whitelist_lifetime=99.0
        )
        assert (unconfirmed, confirmed) == (1, 1)
        assert backend.get(triplet(0)) is None
        assert backend.get(triplet(1)) is None
        assert backend.get(triplet(2)) is not None

    def test_expire_boundary_is_exclusive(self, backend):
        # entry_is_expired uses strict >, so "exactly at the window" lives.
        backend.put(entry(0, last=50.0))
        assert backend.expire(100.0, 50.0, 99.0) == (0, 0)
        assert backend.expire(100.0000001, 50.0, 99.0) == (1, 0)

    def test_mark_passed(self, backend):
        backend.put(entry(0, first=0.0, last=400.0, attempts=2))
        assert backend.mark_passed(triplet(0), 400.0) is True
        fetched = backend.get(triplet(0))
        assert fetched.passed
        assert fetched.passed_at == 400.0

    def test_mark_passed_is_conditional(self, backend):
        assert backend.mark_passed(triplet(0), 1.0) is False
        backend.put(entry(0, passed=True, passed_at=5.0))
        # Already passed: no change, passed_at keeps its original value.
        assert backend.mark_passed(triplet(0), 99.0) is False
        assert backend.get(triplet(0)).passed_at == 5.0

    def test_confirmed_count(self, backend):
        backend.put(entry(0))
        backend.put(entry(1, passed=True, passed_at=1.0))
        backend.put(entry(2, passed=True, passed_at=2.0))
        assert backend.confirmed_count() == 2

    def test_bulk_load(self, backend):
        backend.bulk_load([entry(i) for i in range(10)])
        assert len(backend) == 10
        assert backend.get(triplet(7)) is not None


class TestFactory:
    def test_names_registry(self):
        from repro.greylist.shm import SharedMemoryBackend

        assert BACKEND_NAMES == ("memory", "sqlite", "journal", "shm")
        assert isinstance(create_backend("memory"), MemoryBackend)
        assert isinstance(create_backend("sqlite"), SQLiteBackend)
        assert isinstance(create_backend("journal"), JournalBackend)
        assert isinstance(create_backend("shm"), SharedMemoryBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown triplet-store"):
            create_backend("berkeleydb")

    def test_all_are_backends(self):
        for name in BACKEND_NAMES:
            assert isinstance(create_backend(name), TripletBackend)


class TestSQLiteBackend:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "grey.db"
        first = SQLiteBackend(path)
        first.put(entry(0, first=1.5, last=321.25, attempts=2))
        first.mark_passed(triplet(0), 321.25)
        first.close()
        second = SQLiteBackend(path)
        fetched = second.get(triplet(0))
        assert fetched.passed
        assert fetched.passed_at == 321.25
        assert fetched.attempts == 2
        second.close()

    def test_wal_mode_when_file_backed(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "grey.db")
        backend.put(entry(0))
        backend.flush()
        mode = backend._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        backend.close()

    def test_batched_writes_visible_before_flush(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "grey.db", commit_every=10_000)
        backend.put(entry(0))
        assert backend.get(triplet(0)) is not None
        assert len(backend) == 1
        backend.close()

    def test_unflushed_batch_is_committed_on_close(self, tmp_path):
        path = tmp_path / "grey.db"
        backend = SQLiteBackend(path, commit_every=10_000)
        backend.put(entry(0))
        backend.close()
        conn = sqlite3.connect(str(path))
        count = conn.execute(
            "SELECT COUNT(*) FROM greylisting_tracking"
        ).fetchone()[0]
        conn.close()
        assert count == 1

    def test_commit_every_validated(self):
        with pytest.raises(ValueError):
            SQLiteBackend(commit_every=0)

    def test_close_is_idempotent(self):
        backend = SQLiteBackend()
        backend.close()
        backend.close()


class TestJournalBackend:
    def test_survives_reopen_via_replay(self, tmp_path):
        path = tmp_path / "grey.snap"
        first = JournalBackend(path)
        first.put(entry(0, first=1.0, last=400.0, attempts=2))
        first.mark_passed(triplet(0), 400.0)
        first.put(entry(1))
        first.delete(triplet(1))
        first.close()
        second = JournalBackend(path)
        assert len(second) == 1
        fetched = second.get(triplet(0))
        assert fetched.passed and fetched.passed_at == 400.0
        assert second.get(triplet(1)) is None
        second.close()

    def test_checkpoint_compacts_and_survives(self, tmp_path):
        path = tmp_path / "grey.snap"
        backend = JournalBackend(path)
        for i in range(5):
            backend.put(entry(i))
        backend.delete(triplet(4))
        assert backend.checkpoint() == 4
        assert backend.journal_ops == 0
        # Snapshot holds the state; the journal is only a header again.
        assert path.read_text().startswith(FORMAT_HEADER)
        journal_text = (tmp_path / "grey.snap.journal").read_text()
        assert journal_text == JOURNAL_HEADER + "\n"
        backend.close()
        reopened = JournalBackend(path)
        assert len(reopened) == 4
        reopened.close()

    def test_checkpoint_every_auto_compacts(self, tmp_path):
        backend = JournalBackend(tmp_path / "grey.snap", checkpoint_every=3)
        for i in range(3):
            backend.put(entry(i))
        assert backend.journal_ops == 0  # the third append checkpointed
        backend.close()

    def test_torn_tail_quarantined_and_dropped(self, tmp_path):
        path = tmp_path / "grey.snap"
        first = JournalBackend(path)
        first.put(entry(0))
        first.close()
        journal_path = tmp_path / "grey.snap.journal"
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write("198.51.100.2 torn@x.example r@y.exa")  # no \n
        second = JournalBackend(path)
        assert second.recovered_torn_tail is True
        assert len(second) == 1  # the durable entry survived
        quarantine = tmp_path / "grey.snap.journal.corrupt"
        assert quarantine.read_text().startswith("198.51.100.2 torn")
        # The rewritten journal is clean: a third open sees no tear.
        second.close()
        third = JournalBackend(path)
        assert third.recovered_torn_tail is False
        assert len(third) == 1
        third.close()

    def test_malformed_complete_line_raises_with_number(self, tmp_path):
        path = tmp_path / "grey.snap"
        first = JournalBackend(path)
        first.put(entry(0))
        first.close()
        journal_path = tmp_path / "grey.snap.journal"
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write("garbage that is not an op\n")
        with pytest.raises(PersistenceError, match="journal line 3"):
            JournalBackend(path)
        # The corrupt journal was quarantined, not destroyed.
        assert not journal_path.exists()
        assert (tmp_path / "grey.snap.journal.corrupt").exists()

    def test_malformed_tombstone_raises(self, tmp_path):
        path = tmp_path / "grey.snap"
        JournalBackend(path).close()
        journal_path = tmp_path / "grey.snap.journal"
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write("- only two parts\n")
        with pytest.raises(PersistenceError, match="tombstone line 2"):
            JournalBackend(path)

    def test_missing_journal_header_rejected(self, tmp_path):
        path = tmp_path / "grey.snap"
        journal_path = tmp_path / "grey.snap.journal"
        journal_path.write_text("no header here\n", encoding="utf-8")
        with pytest.raises(PersistenceError, match="journal header"):
            JournalBackend(path)

    def test_missing_snapshot_header_rejected(self, tmp_path):
        path = tmp_path / "grey.snap"
        path.write_text("bogus\n", encoding="utf-8")
        with pytest.raises(PersistenceError, match="snapshot header"):
            JournalBackend(path)

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError):
            JournalBackend(checkpoint_every=0)


class TestExpiryPredicate:
    def test_unconfirmed_uses_retry_window(self):
        e = entry(0, last=0.0)
        assert not entry_is_expired(e, 100.0, 100.0, 1000.0)
        assert entry_is_expired(e, 100.5, 100.0, 1000.0)

    def test_confirmed_uses_whitelist_lifetime(self):
        e = entry(0, last=0.0, passed=True, passed_at=0.0)
        assert not entry_is_expired(e, 500.0, 100.0, 1000.0)
        assert entry_is_expired(e, 1000.5, 100.0, 1000.0)
