"""Microbenchmarks of the hot substrate paths.

Unlike the experiment benches (which regenerate paper artefacts), these
measure the simulator's own throughput: event-loop churn, triplet-store
operations, CDF evaluation and population generation.  Useful for keeping
the full reproduction fast as it grows.
"""

from repro.analysis.cdf import EmpiricalCDF
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import TripletStore
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address
from repro.scan.population import PopulationConfig, SyntheticInternet
from repro.sim.clock import Clock
from repro.sim.events import EventScheduler


def test_perf_event_scheduler(benchmark):
    """Throughput of schedule + fire for a self-rescheduling chain."""

    def run():
        scheduler = EventScheduler(Clock())
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10000:
                scheduler.schedule_in(1.0, tick)

        scheduler.schedule_at(0.0, tick)
        scheduler.run()
        return count[0]

    assert benchmark(run) == 10000


def test_perf_scheduler_cancel_churn(benchmark):
    """Schedule/cancel storms (the MTA retry-timer pattern).

    Also asserts the compaction bound: the heap must stay proportional to
    the live event count plus the compaction threshold, not to the total
    number of cancellations (20k per run here).
    """
    threshold = 64

    def run():
        scheduler = EventScheduler(Clock(), compact_min_tombstones=threshold)
        live = [scheduler.schedule_at(1e9, lambda: None) for _ in range(10)]
        peak = 0
        for round_ in range(50):
            handles = [
                scheduler.schedule_at(100.0 + round_, lambda: None)
                for _ in range(400)
            ]
            for handle in handles:
                scheduler.cancel(handle)
            peak = max(peak, scheduler.heap_size)
        assert scheduler.pending == len(live)
        return peak

    # Compaction fires once tombstones reach the threshold and outnumber
    # half the live entries, so the heap never holds a full round's churn.
    assert benchmark(run) < 600


def test_perf_triplet_store(benchmark):
    """observe/lookup mix over a 5k-triplet database."""
    clock = Clock()
    triplets = [
        Triplet(IPv4Address(i), f"s{i % 97}@x.example", "r@y.example")
        for i in range(5000)
    ]

    def run():
        store = TripletStore(clock)
        for triplet in triplets:
            store.observe(triplet)
        hits = sum(1 for triplet in triplets if store.lookup(triplet))
        return hits

    assert benchmark(run) == 5000


def test_perf_greylist_policy(benchmark):
    """Full policy decisions (the per-RCPT hot path)."""
    clients = [IPv4Address(i) for i in range(1000)]

    def run():
        clock = Clock()
        policy = GreylistPolicy(clock=clock, delay=300.0)
        accepted = 0
        for client in clients:
            policy.on_rcpt_to(client, "s@x.example", "r@y.example")
        clock.advance_by(301.0)
        for client in clients:
            if policy.on_rcpt_to(client, "s@x.example", "r@y.example").accept:
                accepted += 1
        return accepted

    assert benchmark(run) == 1000


def test_perf_cdf_evaluation(benchmark):
    """CDF queries over a 10k sample (binary search per point)."""
    cdf = EmpiricalCDF.from_samples([float(i % 997) for i in range(10000)])
    xs = [float(x) for x in range(0, 1000, 7)]

    def run():
        return sum(cdf.at(x) for x in xs)

    result = benchmark(run)
    assert result > 0


def test_perf_population_generation(benchmark):
    """Synthetic-internet construction (the Figure 2 setup cost)."""

    def run():
        internet = SyntheticInternet(
            PopulationConfig(num_domains=2000), seed=7
        )
        return internet.num_domains

    assert benchmark(run) == 2000
