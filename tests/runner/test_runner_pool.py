"""Unit tests for the process-pool task runner."""

import os
from pathlib import Path

import pytest

from repro.runner.cache import ResultCache
from repro.runner.pool import (
    ExperimentRunner,
    TaskFailure,
    effective_workers,
    run_tasks,
)


def square_task(payload):
    return payload["x"] * payload["x"]


def name_task(payload):
    return {"name": payload["name"].upper()}


def flaky_task(payload):
    """Fails the first time it sees its flag file missing, then succeeds.

    The flag lives on disk so the failure is visible across the process
    boundary: a pool worker's failed attempt primes the coordinator's
    inline retry.
    """
    flag = Path(payload["flag"])
    if not flag.exists():
        flag.write_text("tripped", encoding="utf-8")
        raise ValueError("transient task failure")
    return payload["x"] * 10


def always_failing_task(payload):
    raise RuntimeError("deterministically broken")


def crashing_task(payload):
    """Hard-kills its worker process once (no exception, no cleanup)."""
    flag = Path(payload["flag"])
    if payload.get("crash") and not flag.exists():
        flag.write_text("crashed", encoding="utf-8")
        os._exit(1)
    return payload["x"] + 100


class TestEffectiveWorkers:
    def test_explicit_count_passes_through(self):
        assert effective_workers(3) == 3

    def test_none_and_zero_mean_cpu_count(self):
        assert effective_workers(None) >= 1
        assert effective_workers(0) == effective_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_workers(-1)


class TestRunTasks:
    def test_results_in_payload_order(self):
        payloads = [{"x": x} for x in (5, 3, 1, 4)]
        assert run_tasks(square_task, payloads, workers=1) == [25, 9, 1, 16]

    def test_pool_matches_inline(self):
        payloads = [{"x": x} for x in range(7)]
        serial = run_tasks(square_task, payloads, workers=1)
        parallel = run_tasks(square_task, payloads, workers=3)
        assert parallel == serial

    def test_empty_payloads(self):
        assert run_tasks(square_task, [], workers=4) == []

    def test_cache_requires_experiment_name(self):
        with pytest.raises(ValueError):
            run_tasks(
                square_task, [{"x": 1}], cache=ResultCache(root="/tmp/x")
            )

    def test_cached_payloads_skipped(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        payloads = [{"x": x} for x in range(4)]
        first = run_tasks(
            square_task, payloads, workers=1, cache=cache, experiment="sq"
        )
        assert cache.stores == 4
        second = run_tasks(
            square_task, payloads, workers=1, cache=cache, experiment="sq"
        )
        assert second == first
        assert cache.hits == 4
        assert cache.stores == 4  # nothing recomputed, nothing re-stored

    def test_partial_cache_fills_gaps(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_tasks(
            square_task, [{"x": 2}], workers=1, cache=cache, experiment="sq"
        )
        results = run_tasks(
            square_task,
            [{"x": x} for x in (1, 2, 3)],
            workers=1,
            cache=cache,
            experiment="sq",
        )
        assert results == [1, 4, 9]


class TestFailureHandling:
    def test_flaky_payload_retried_inline(self, tmp_path):
        payloads = [{"x": 1, "flag": str(tmp_path / "f1")}]
        assert run_tasks(flaky_task, payloads, workers=1) == [10]
        assert (tmp_path / "f1").exists()

    def test_flaky_payload_retried_after_pool_failure(self, tmp_path):
        payloads = [
            {"x": x, "flag": str(tmp_path / f"f{x}")} for x in range(4)
        ]
        (tmp_path / "f0").write_text("ok", encoding="utf-8")
        (tmp_path / "f2").write_text("ok", encoding="utf-8")
        results = run_tasks(flaky_task, payloads, workers=2)
        assert results == [0, 10, 20, 30]

    def test_persistent_failure_names_payload_index(self):
        payloads = [{"x": 0}, {"x": 1}, {"x": 2}]
        with pytest.raises(TaskFailure) as excinfo:
            run_tasks(always_failing_task, payloads, workers=1)
        assert excinfo.value.index == 0
        assert "payload 0" in str(excinfo.value)

    def test_persistent_failure_in_pool_names_payload_index(self, tmp_path):
        payloads = [{"x": 0}, {"x": 1}, {"x": 2}]
        with pytest.raises(TaskFailure) as excinfo:
            run_tasks(always_failing_task, payloads, workers=2)
        assert "payload" in str(excinfo.value)

    def test_worker_crash_does_not_abort_the_sweep(self, tmp_path):
        # One payload hard-kills its worker (os._exit): the pool breaks,
        # every in-flight future fails, and the coordinator must still
        # return a result for every payload by re-running inline.
        payloads = [
            {"x": x, "flag": str(tmp_path / "crash"), "crash": x == 1}
            for x in range(5)
        ]
        results = run_tasks(crashing_task, payloads, workers=2)
        assert results == [100, 101, 102, 103, 104]

    def test_results_cached_after_recovery(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        payloads = [{"x": 7, "flag": str(tmp_path / "f7")}]
        results = run_tasks(
            flaky_task, payloads, workers=1, cache=cache, experiment="flaky"
        )
        assert results == [70]
        assert cache.stores == 1


class TestExperimentRunner:
    def test_map_counts_dispatches(self):
        runner = ExperimentRunner(workers=1)
        rows = runner.map(name_task, [{"name": "a"}, {"name": "b"}])
        assert rows == [{"name": "A"}, {"name": "B"}]
        assert runner.dispatched == 2

    def test_map_without_experiment_bypasses_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = ExperimentRunner(workers=1, cache=cache)
        runner.map(name_task, [{"name": "a"}])
        assert cache.stores == 0
        runner.map(name_task, [{"name": "a"}], experiment="names")
        assert cache.stores == 1
