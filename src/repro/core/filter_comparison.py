"""Pre-acceptance vs post-acceptance filtering (the paper's intro taxonomy).

Greylisting decides *before* the message body crosses the wire; a content
filter decides *after*.  Both stop spam, but the costs differ: the
pre-acceptance test spends a deferral round-trip on every new sender
(including benign ones), while the post-acceptance test pays the full
message bandwidth for every spam it rejects and risks misclassifying
benign content.

This experiment runs the same mixed traffic — bot spam plus benign mail —
through three servers (greylisting only, content filter only, stacked) and
tabulates: spam delivered, benign mail delayed/lost, and wasted bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..botnet.behavior import MXBehavior
from ..botnet.bot import SpamBot
from ..botnet.retry import kelihos_retry_model
from ..filter.bayes import NaiveBayesFilter
from ..filter.corpus import build_corpus, generate_spam
from ..filter.policy import ContentFilterPolicy
from ..mta.profiles import PROFILES
from ..mta.queue import QueueEntryState, QueueManager
from ..net.address import AddressPool, IPv4Network
from ..sim.rng import RandomStream
from ..smtp.client import SMTPClient
from ..smtp.message import Message
from ..smtp.server import CompositePolicy, ConnectionPolicy
from .testbed import Defense, Testbed, TestbedConfig


@dataclass
class FilterComparisonResult:
    """Outcome of one configuration."""

    configuration: str           # "greylist", "content", "both"
    spam_sent: int
    spam_delivered: int
    benign_sent: int
    benign_delivered: int
    benign_false_positives: int
    spam_bytes_received: int     # bandwidth spent on (eventually) spam
    benign_mean_delay: float

    @property
    def spam_block_rate(self) -> float:
        return 1.0 - (self.spam_delivered / self.spam_sent) if self.spam_sent else 0.0


def run_filter_comparison(
    configuration: str,
    spam_messages: int = 30,
    benign_messages: int = 30,
    threshold: float = 300.0,
    seed: int = 53,
    horizon: float = 200000.0,
) -> FilterComparisonResult:
    """Run mixed traffic through one filtering configuration."""
    if configuration not in ("greylist", "content", "both"):
        raise ValueError(f"unknown configuration {configuration!r}")
    rng = RandomStream(seed, f"filtercmp:{configuration}")

    # Train the content filter on a corpus disjoint from the test traffic.
    classifier = NaiveBayesFilter(threshold=0.9)
    corpus = build_corpus(seed=seed + 1)
    classifier.train_many(corpus.train_spam, is_spam=True)
    classifier.train_many(corpus.train_ham, is_spam=False)

    policies: List[ConnectionPolicy] = []
    content_policy: Optional[ContentFilterPolicy] = None
    if configuration in ("greylist", "both"):
        pass  # installed via the testbed below
    testbed = Testbed(
        TestbedConfig(
            defense=(
                Defense.GREYLISTING
                if configuration in ("greylist", "both")
                else Defense.NONE
            ),
            greylist_delay=threshold,
        )
    )
    if configuration in ("content", "both"):
        content_policy = ContentFilterPolicy(classifier)
        existing = testbed.server.policy
        testbed.server.policy = CompositePolicy([existing, content_policy])

    # --- spam: half from a retrying bot (beats greylisting alone), half
    # from a fire-and-forget bot (which greylisting rejects *before* the
    # body crosses the wire — the pre-acceptance bandwidth win).
    from ..botnet.retry import FireAndForget

    retrier = SpamBot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        mx_behavior=MXBehavior.PRIMARY_ONLY,
        retry_model=kelihos_retry_model(),
        rng=rng.split("retrier"),
        walks_mx_on_failure=False,
    )
    fire_and_forget = SpamBot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        mx_behavior=MXBehavior.PRIMARY_ONLY,
        retry_model=FireAndForget(),
        rng=rng.split("fnf"),
        walks_mx_on_failure=False,
    )
    spam_bodies = generate_spam(rng.split("spam-bodies"), spam_messages)
    bots = [retrier, fire_and_forget]
    for index, body in enumerate(spam_bodies):
        bots[index % 2].assign(
            Message(
                sender=f"spam{index}@botnet.example",
                recipients=[f"victim{index}@victim.example"],
                subject="special offer",
                body=body,
            )
        )

    # --- benign: postfix senders with workplace bodies.
    from ..filter.corpus import generate_ham

    pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    ham_bodies = generate_ham(rng.split("ham-bodies"), benign_messages)
    queues: List[QueueManager] = []
    for index, body in enumerate(ham_bodies):
        client = SMTPClient(
            internet=testbed.internet,
            resolver=testbed.resolver,
            source_address=pool.allocate(),
            helo_name=f"mail{index}.partner.example",
        )
        queue = QueueManager(
            testbed.scheduler, client, PROFILES["postfix"].schedule
        )
        queue.submit(
            Message(
                sender=f"person{index}@partner{index % 9}.example",
                recipients=[f"staff{index % 7}@victim.example"],
                subject="work stuff",
                body=body,
            )
        )
        queues.append(queue)

    testbed.run(horizon=horizon)

    benign_delivered = 0
    benign_lost = 0
    delays: List[float] = []
    for queue in queues:
        for entry in queue.entries:
            if entry.state is QueueEntryState.DELIVERED:
                benign_delivered += 1
                delays.append(entry.delivery_delay)
            else:
                benign_lost += 1

    spam_bytes = 0
    false_positives = 0
    if content_policy is not None:
        for event in content_policy.events:
            if event.rejected:
                spam_bytes += event.message_bytes
        # Benign mail wrongly rejected at DATA bounces permanently.
        false_positives = benign_lost
    spam_delivered = len(retrier.delivered_tasks) + len(
        fire_and_forget.delivered_tasks
    )
    # Bandwidth spent on spam that was *accepted* also counts.
    spam_bytes += sum(
        task.message.size
        for bot in (retrier, fire_and_forget)
        for task in bot.delivered_tasks
    )

    return FilterComparisonResult(
        configuration=configuration,
        spam_sent=spam_messages,
        spam_delivered=spam_delivered,
        benign_sent=benign_messages,
        benign_delivered=benign_delivered,
        benign_false_positives=false_positives,
        spam_bytes_received=spam_bytes,
        benign_mean_delay=(sum(delays) / len(delays)) if delays else 0.0,
    )


def compare_filtering(
    seed: int = 53,
    spam_messages: int = 30,
    benign_messages: int = 30,
) -> List[FilterComparisonResult]:
    """greylist-only vs content-only vs stacked, same traffic and seed."""
    return [
        run_filter_comparison(
            configuration,
            seed=seed,
            spam_messages=spam_messages,
            benign_messages=benign_messages,
        )
        for configuration in ("greylist", "content", "both")
    ]
