"""Prefork supervisor for multi-worker policy serving.

The nginx/postgrey process model: a master binds the listening sockets,
forks N workers that each run the single-loop asyncio daemon
(:class:`~repro.serve.server.PolicyServer`), and then does nothing but
supervise — reaping dead children, respawning crashed ones onto the
same accept queue, and fanning SIGTERM out for a coordinated drain.
Workers share one :class:`~repro.greylist.shm.SharedMemoryBackend`
segment (created by the master, attached by name in each child), so a
triplet greylisted by one worker is visible to the retry that lands on
another.

Socket strategy
---------------
Preferred: one ``SO_REUSEPORT`` listening socket per worker, all bound
to the same address before the first fork.  The kernel load-balances
incoming connects across the sockets' accept queues, and because the
*master* keeps every fd, a crashed worker's replacement inherits the
very same socket — connections queued to the dead worker are answered
by its successor, not dropped.  Where ``SO_REUSEPORT`` is unavailable
the supervisor falls back to a single shared socket inherited by every
worker (the classic accept-herd model: correct, just less evenly
balanced).

Drain protocol
--------------
SIGTERM (or SIGINT) to the master is forwarded to every live worker
inside the signal handler itself, so no new forks can race it.  Each
worker's ``run_until_signalled`` path then stops accepting, answers
every buffered stanza, flushes its backend attachment and exits 0; the
master reaps them all and exits 0.  A worker that dies *unprompted*
(crash, SIGKILL) is respawned — up to ``restart_limit`` times, after
which the master drains the rest and exits 1 rather than flap forever.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import traceback
from typing import Callable, Dict, List, Optional, Tuple

#: Listen backlog shared with :class:`~repro.serve.server.PolicyServer`.
LISTEN_BACKLOG = 8192

#: Unprompted worker deaths tolerated before the master gives up.
DEFAULT_RESTART_LIMIT = 16

#: A worker's body returns an exit status; it runs inside the forked
#: child and must never raise back into the supervisor's stack.
WorkerBody = Callable[[int, socket.socket], int]


def bind_listening_sockets(
    host: str, port: int, count: int
) -> Tuple[List[socket.socket], str, int]:
    """Bind the listening sockets for ``count`` workers.

    Returns ``(sockets, host, port)`` with the actual bound address
    (meaningful when ``port`` was 0).  ``len(sockets)`` is ``count``
    when SO_REUSEPORT is available, else 1 (the shared-socket
    fallback); callers map worker *i* to socket ``i % len(sockets)``.
    """
    if count < 1:
        raise ValueError("need at least one worker socket")
    reuseport = hasattr(socket, "SO_REUSEPORT")
    sockets: List[socket.socket] = []
    bound_port = port
    for _ in range(count if reuseport else 1):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuseport:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                    )
                except OSError:
                    # Constant exists but the kernel refuses (old
                    # kernels): fall back to the single shared socket.
                    if sockets:
                        raise  # mixed support mid-bind: give up loudly
                    reuseport = False
            sock.bind((host, bound_port))
            if bound_port == 0:
                bound_port = sock.getsockname()[1]
            # Listen in the master, before any fork: connections racing
            # the workers' boot queue here instead of being refused.
            sock.listen(LISTEN_BACKLOG)
        except BaseException:
            sock.close()
            for other in sockets:
                other.close()
            raise
        sockets.append(sock)
    bound_host = sockets[0].getsockname()[0]
    return sockets, bound_host, bound_port


class PreforkSupervisor:
    """Fork, supervise and drain a fleet of policy workers.

    Parameters
    ----------
    worker_body:
        ``(worker_index, listening_socket) -> exit_status``, run inside
        each forked child.  The child never returns from the spawn call:
        it exits via ``os._exit`` with the body's status (or 1 if the
        body raised), skipping the master's atexit/finalizer state —
        in particular the shared segment's exit reaper, which only the
        creating master may run.
    sockets:
        Pre-bound listening sockets from :func:`bind_listening_sockets`.
        The master keeps every fd for respawns.
    workers:
        Number of worker processes to keep alive.
    restart_limit:
        Unprompted deaths tolerated before draining and exiting 1.
    maintenance / maintenance_interval:
        Optional periodic callback run in a master-side daemon thread
        while supervising (the shm background-expiry sweep in live
        serving; replay-clock daemons skip it).
    """

    def __init__(
        self,
        worker_body: WorkerBody,
        sockets: List[socket.socket],
        workers: int,
        *,
        restart_limit: int = DEFAULT_RESTART_LIMIT,
        maintenance: Optional[Callable[[], None]] = None,
        maintenance_interval: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if not sockets:
            raise ValueError("need at least one listening socket")
        self._worker_body = worker_body
        self._sockets = sockets
        self._workers = workers
        self._restart_limit = restart_limit
        self._maintenance = maintenance
        self._maintenance_interval = maintenance_interval
        self._children: Dict[int, int] = {}  # pid -> worker index
        self._stopping = False
        self._restarts = 0

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Spawn the fleet and supervise until drained; returns status.

        0 when every worker exited cleanly after a signalled drain,
        1 when the restart limit was exhausted or a worker refused to
        drain cleanly.
        """
        previous = {
            signum: signal.signal(signum, self._on_signal)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        stop_maintenance = threading.Event()
        failed = False
        try:
            for index in range(self._workers):
                self._spawn(index)
            if self._maintenance is not None:
                thread = threading.Thread(
                    target=self._maintenance_loop,
                    args=(stop_maintenance,),
                    name="prefork-maintenance",
                    daemon=True,
                )
                thread.start()
            while self._children:
                try:
                    pid, status = os.waitpid(-1, 0)
                except ChildProcessError:  # pragma: no cover - defensive
                    break
                index = self._children.pop(pid, None)
                if index is None:  # pragma: no cover - foreign child
                    continue
                if self._stopping:
                    if not self._exited_cleanly(status):
                        failed = True
                    continue
                # Unprompted death — crash, SIGKILL, or a worker that
                # decided to exit on its own: respawn onto the same
                # socket so its queued connections are still answered.
                self._restarts += 1
                if self._restarts > self._restart_limit:
                    failed = True
                    self._stopping = True
                    self._signal_children(signal.SIGTERM)
                    continue
                self._spawn(index)
        finally:
            stop_maintenance.set()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 1 if failed else 0

    def _spawn(self, index: int) -> None:
        sock = self._sockets[index % len(self._sockets)]
        pid = os.fork()
        if pid:
            self._children[pid] = index
            return
        # ---- child ----
        # Undo the master's supervisor handlers *before* anything else:
        # a drain signal landing now must kill the half-booted child
        # (the master is stopping and will not respawn it), not re-run
        # the fan-out handler from inside the worker.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        for other in self._sockets:
            if other is not sock:
                other.close()
        status = 1
        try:
            status = self._worker_body(index, sock)
        except BaseException:  # repro: noqa EXC001 - child exits nonzero below; the crash IS the record
            traceback.print_exc()
        finally:
            sys.stdout.flush()
            sys.stderr.flush()
            # Hard exit: the child must not run the master's inherited
            # atexit hooks / multiprocessing finalizers (segment reaper,
            # benchmark teardown, ...).
            os._exit(status)

    def _on_signal(self, signum: int, _frame: object) -> None:
        # Runs on the master's main thread between bytecodes; waitpid
        # resumes afterwards (PEP 475), sees the flag, and reaps.
        self._stopping = True
        self._signal_children(
            signal.SIGTERM if signum == signal.SIGINT else signum
        )

    def _signal_children(self, signum: int) -> None:
        for pid in tuple(self._children):
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def _maintenance_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self._maintenance_interval):
            try:
                self._maintenance()  # type: ignore[misc]
            except Exception:  # repro: noqa EXC001 - printed + swallowed: sweep hiccups must not kill the fleet
                traceback.print_exc()

    @staticmethod
    def _exited_cleanly(status: int) -> bool:
        return os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0

    @property
    def worker_pids(self) -> Tuple[int, ...]:
        """Live worker pids (the crashed-worker restart test's probe)."""
        return tuple(self._children)
