"""Unit tests for time-binned series."""

import pytest

from repro.analysis.timeseries import (
    WEEK,
    bin_events,
    rate_series,
    rate_stability,
)


def event(t, ok):
    return {"t": t, "ok": ok}


def bins_of(events, **kwargs):
    return bin_events(
        events,
        timestamp=lambda e: e["t"],
        predicate=lambda e: e["ok"],
        **kwargs,
    )


class TestBinEvents:
    def test_basic_binning(self):
        events = [event(10, True), event(20, False), event(110, True)]
        bins = bins_of(events, bin_width=100)
        assert len(bins) == 2
        assert bins[0].count == 2 and bins[0].matching == 1
        assert bins[0].rate == 0.5
        assert bins[1].count == 1 and bins[1].rate == 1.0

    def test_bin_boundaries(self):
        bins = bins_of([event(0, True), event(100, True)], bin_width=100)
        assert bins[0].start == 0 and bins[0].end == 100
        assert bins[0].count == 1
        assert bins[1].count == 1  # t=100 belongs to the second bin

    def test_empty_bins_kept(self):
        bins = bins_of([event(10, True), event(350, True)], bin_width=100)
        assert len(bins) == 4
        assert bins[1].count == 0
        assert bins[1].rate is None

    def test_explicit_range(self):
        bins = bins_of(
            [event(150, True)], bin_width=100, start=0.0, end=399.0
        )
        assert len(bins) == 4
        assert bins[1].count == 1

    def test_events_outside_range_dropped(self):
        bins = bins_of(
            [event(50, True), event(950, True)],
            bin_width=100,
            start=0.0,
            end=99.0,
        )
        assert sum(b.count for b in bins) == 1

    def test_no_events(self):
        assert bins_of([], bin_width=100) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            bins_of([event(1, True)], bin_width=0)
        with pytest.raises(ValueError):
            bins_of([event(1, True)], bin_width=10, start=100.0, end=0.0)

    def test_midpoint(self):
        bins = bins_of([event(10, True)], bin_width=100)
        assert bins[0].midpoint == 50.0


class TestRateHelpers:
    def test_rate_series_skips_empty(self):
        bins = bins_of([event(10, True), event(350, False)], bin_width=100)
        series = rate_series(bins)
        assert series == [(50.0, 1.0), (350.0, 0.0)]

    def test_rate_stability(self):
        bins = bins_of(
            [event(10, True), event(20, True), event(110, False), event(120, True)],
            bin_width=100,
        )
        # Rates: 1.0 and 0.5 -> stability 0.5.
        assert rate_stability(bins) == 0.5

    def test_rate_stability_none_when_empty(self):
        assert rate_stability([]) is None

    def test_week_constant(self):
        assert WEEK == 604800.0
