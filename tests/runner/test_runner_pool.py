"""Unit tests for the process-pool task runner."""

import pytest

from repro.runner.cache import ResultCache
from repro.runner.pool import ExperimentRunner, effective_workers, run_tasks


def square_task(payload):
    return payload["x"] * payload["x"]


def name_task(payload):
    return {"name": payload["name"].upper()}


class TestEffectiveWorkers:
    def test_explicit_count_passes_through(self):
        assert effective_workers(3) == 3

    def test_none_and_zero_mean_cpu_count(self):
        assert effective_workers(None) >= 1
        assert effective_workers(0) == effective_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_workers(-1)


class TestRunTasks:
    def test_results_in_payload_order(self):
        payloads = [{"x": x} for x in (5, 3, 1, 4)]
        assert run_tasks(square_task, payloads, workers=1) == [25, 9, 1, 16]

    def test_pool_matches_inline(self):
        payloads = [{"x": x} for x in range(7)]
        serial = run_tasks(square_task, payloads, workers=1)
        parallel = run_tasks(square_task, payloads, workers=3)
        assert parallel == serial

    def test_empty_payloads(self):
        assert run_tasks(square_task, [], workers=4) == []

    def test_cache_requires_experiment_name(self):
        with pytest.raises(ValueError):
            run_tasks(
                square_task, [{"x": 1}], cache=ResultCache(root="/tmp/x")
            )

    def test_cached_payloads_skipped(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        payloads = [{"x": x} for x in range(4)]
        first = run_tasks(
            square_task, payloads, workers=1, cache=cache, experiment="sq"
        )
        assert cache.stores == 4
        second = run_tasks(
            square_task, payloads, workers=1, cache=cache, experiment="sq"
        )
        assert second == first
        assert cache.hits == 4
        assert cache.stores == 4  # nothing recomputed, nothing re-stored

    def test_partial_cache_fills_gaps(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_tasks(
            square_task, [{"x": 2}], workers=1, cache=cache, experiment="sq"
        )
        results = run_tasks(
            square_task,
            [{"x": x} for x in (1, 2, 3)],
            workers=1,
            cache=cache,
            experiment="sq",
        )
        assert results == [1, 4, 9]


class TestExperimentRunner:
    def test_map_counts_dispatches(self):
        runner = ExperimentRunner(workers=1)
        rows = runner.map(name_task, [{"name": "a"}, {"name": "b"}])
        assert rows == [{"name": "A"}, {"name": "B"}]
        assert runner.dispatched == 2

    def test_map_without_experiment_bypasses_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = ExperimentRunner(workers=1, cache=cache)
        runner.map(name_task, [{"name": "a"}])
        assert cache.stores == 0
        runner.map(name_task, [{"name": "a"}], experiment="names")
        assert cache.stores == 1
