"""The shipped tree must satisfy its own whole-program analyzer.

This is the executable form of the determinism contract in
``docs/ARCHITECTURE.md``: if a change reintroduces ambient randomness,
wall-clock reads, hash-order dependence, or — via the call-graph phase —
a nondeterministic sink reachable from an engine entry point, this test
fails with the exact rule and location.
"""

import time
from pathlib import Path

import repro
from repro.analysis.lint import analyze_paths, lint_paths, render_human

#: Whole-program analysis over the full tree must stay comfortably
#: inside CI's interactive budget.
TIME_BUDGET_SECONDS = 30.0


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


def _repo_trees() -> list:
    """``src/repro`` plus the tests/benchmarks/scripts trees when present."""
    paths = [_package_root()]
    repo_root = _package_root().parent.parent
    for name in ("tests", "benchmarks", "scripts"):
        candidate = repo_root / name
        if candidate.is_dir():
            paths.append(candidate)
    return paths


def test_src_repro_is_lint_clean():
    result = lint_paths([_package_root()])
    assert result.findings == [], "\n" + render_human(
        result.findings, files_checked=result.files_checked
    )


def test_whole_program_analysis_is_clean():
    # Both phases, zero un-baselined findings — the acceptance bar.  No
    # baseline is passed: the tree must be *actually* clean, and the
    # committed .repro-lint-baseline.json empty.
    started = time.perf_counter()
    result = analyze_paths(_repo_trees())
    elapsed = time.perf_counter() - started
    assert result.findings == [], "\n" + render_human(
        result.findings, files_checked=result.files_checked
    )
    assert elapsed < TIME_BUDGET_SECONDS, (
        f"whole-program analysis took {elapsed:.1f}s, "
        f"budget is {TIME_BUDGET_SECONDS:.0f}s"
    )


def test_analyzer_actually_ran_both_phases():
    result = analyze_paths(_repo_trees())
    # Guard against a silent no-op (e.g. a broken file iterator): the
    # package has dozens of modules and at least one inline suppression.
    assert result.files_checked > 50
    assert result.suppressed >= 1
    # The graph phase really built a project over the tree.
    project = result.project
    assert project is not None
    assert len(project.modules) == result.files_checked
    assert len(project.functions) > 500
    assert sum(len(node.calls) for node in project.nodes.values()) > 1000


def test_entry_points_resolved_on_real_tree():
    from repro.analysis.lint.graph.rules import iter_entry_points

    result = analyze_paths([_package_root()])
    assert result.project is not None
    entries = {fn.qualname for fn in iter_entry_points(result.project)}
    # The engine entry points the taint rule starts from must keep
    # resolving as the tree grows; a rename here silently disables DET001.
    assert "run_adoption_experiment" in entries
    assert "columnar_adoption_shard" in entries
    assert "batched_adoption_shard" in entries
    # Every TripletBackend implementation's methods are entries too.
    assert any(name.startswith("SQLiteBackend.") for name in entries)
    assert any(name.startswith("JournalBackend.") for name in entries)


def test_dead_symbol_report_is_empty_on_real_tree():
    result = analyze_paths(_repo_trees())
    assert result.project is not None
    report = result.project.api_report()
    assert report["dead_symbols"] == []
