"""Mail messages and delivery envelopes.

The envelope — not the message headers — is what SMTP routing and greylisting
operate on: greylisting keys on ``(client IP, envelope sender, envelope
recipient)`` and explicitly ignores the message body (the paper exploits this
to rule out the "second spam task" confound in §V.A).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import List, Optional

_message_ids = itertools.count(1)

#: One C-level scan instead of a per-character generator: the regex
#: engine's Unicode ``\s`` category tests the same predicate as
#: ``str.isspace`` (both are ``Py_UNICODE_ISSPACE``), and address
#: validation sits on the hot path of every RCPT decision — simulated
#: *and* served.
_WHITESPACE_RE = re.compile(r"\s")


class AddressSyntaxError(ValueError):
    """Raised for malformed email addresses."""


def validate_address(address: str) -> str:
    """Validate and canonicalize an email address (pragmatic subset).

    The domain is case-normalized; the local part's case is preserved
    (RFC 5321 treats local parts as case-sensitive).

    >>> validate_address("Bob@Foo.NET")
    'Bob@foo.net'
    """
    address = address.strip()
    if address.count("@") != 1:
        raise AddressSyntaxError(f"malformed address {address!r}")
    local, domain = address.split("@")
    if not local or not domain or "." not in domain:
        raise AddressSyntaxError(f"malformed address {address!r}")
    if _WHITESPACE_RE.search(address) is not None:
        raise AddressSyntaxError(f"whitespace in address {address!r}")
    return f"{local}@{domain.lower()}"


def domain_of(address: str) -> str:
    """Extract the domain part of a validated address."""
    return address.rsplit("@", 1)[1]


@dataclass
class Message:
    """An email message: headers are opaque, the body is a plain string.

    ``campaign_id`` tags spam-campaign membership so experiments can verify
    (as the paper did via unprotected addresses) that all delivery attempts
    in a run belong to a single spam task.
    """

    sender: str
    recipients: List[str]
    subject: str = ""
    body: str = ""
    campaign_id: Optional[str] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        self.sender = validate_address(self.sender)
        if not self.recipients:
            raise AddressSyntaxError("message needs at least one recipient")
        self.recipients = [validate_address(r) for r in self.recipients]

    @property
    def size(self) -> int:
        """Approximate wire size in bytes."""
        return len(self.subject) + len(self.body) + 256

    def __repr__(self) -> str:
        return (
            f"Message(id={self.message_id}, from={self.sender!r}, "
            f"to={len(self.recipients)} rcpt)"
        )


@dataclass(frozen=True)
class Envelope:
    """One (sender, recipient) delivery unit extracted from a message.

    SMTP delivers per-recipient; an N-recipient message becomes N envelopes
    that may succeed or fail independently.
    """

    sender: str
    recipient: str
    message_id: int
    campaign_id: Optional[str] = None

    @property
    def recipient_domain(self) -> str:
        return domain_of(self.recipient)

    @property
    def sender_domain(self) -> str:
        return domain_of(self.sender)


def envelopes_for(message: Message) -> List[Envelope]:
    """Split a message into per-recipient envelopes."""
    return [
        Envelope(
            sender=message.sender,
            recipient=recipient,
            message_id=message.message_id,
            campaign_id=message.campaign_id,
        )
        for recipient in message.recipients
    ]
