"""Alexa-style popularity ranking of the synthetic population.

The paper cross-checks the detected nolisting domains against the Alexa
ranking and finds adopters among the very largest sites (one in the top 15,
two in the top 500, two more in the top 1000).  The generator assigns every
domain a rank; this module plants nolisting adopters at paper-matching
ranks and answers the cross-check queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .detect import DomainClass, DomainVerdict
from .population import DomainCategory, SyntheticInternet

#: The paper's observation: ranks at which nolisting adopters were found.
PAPER_NOLISTING_RANKS: Sequence[int] = (13, 214, 402, 731, 904)


def plant_popular_nolisting(
    internet: SyntheticInternet, ranks: Sequence[int] = PAPER_NOLISTING_RANKS
) -> List[str]:
    """Force ``len(ranks)`` nolisting domains to hold the given Alexa ranks.

    Swaps ranks between the chosen nolisting domains and whichever domains
    currently hold the target ranks, keeping the rank assignment a
    permutation.  Returns the planted domain names.
    """
    return plant_ranks(internet.domains, ranks)


def plant_ranks(
    domains: Sequence, ranks: Sequence[int] = PAPER_NOLISTING_RANKS
) -> List[str]:
    """Rank-planting over any domain records with name/category/alexa_rank.

    Shared by the full-population path (:class:`DomainTruth` objects) and
    the parallel runner's coordinator, which plants on the cheap
    :class:`~repro.scan.population.PlannedDomain` plan *before* sharding —
    the swap outcome depends only on (order, categories, ranks), so both
    paths assign identical ranks.
    """
    nolisted = [d for d in domains if d.category is DomainCategory.NOLISTING]
    if len(nolisted) < len(ranks):
        raise ValueError(
            f"population has only {len(nolisted)} nolisting domains, "
            f"cannot plant {len(ranks)}"
        )
    num_domains = len(domains)
    rank_holder: Dict[int, object] = {
        truth.alexa_rank: truth for truth in domains
    }

    # First evict accidental adopters from the popular band: in a population
    # of this size the rank space is small relative to the real internet's,
    # so the uniform shuffle seeds the top-1000 with far more nolisting
    # domains than the 0.52 % base rate would on 135 M domains.  Swap them
    # out so the popular band holds exactly the planted structure.
    popular_band = max(ranks) + 100
    swap_rank = num_domains
    for truth in nolisted:
        if truth.alexa_rank is None or truth.alexa_rank > popular_band:
            continue
        while swap_rank > popular_band:
            candidate = rank_holder.get(swap_rank)
            if (
                candidate is not None
                and candidate.category is not DomainCategory.NOLISTING
            ):
                break
            swap_rank -= 1
        else:  # pragma: no cover - population would have to be tiny
            break
        candidate = rank_holder[swap_rank]
        truth.alexa_rank, candidate.alexa_rank = (
            candidate.alexa_rank,
            truth.alexa_rank,
        )
        rank_holder[truth.alexa_rank] = truth
        rank_holder[candidate.alexa_rank] = candidate
        swap_rank -= 1

    planted: List[str] = []
    for truth, rank in zip(nolisted, ranks):
        other = rank_holder[rank]
        if other is truth:
            planted.append(truth.name)
            continue
        old_rank = truth.alexa_rank
        truth.alexa_rank, other.alexa_rank = rank, old_rank
        rank_holder[rank] = truth
        rank_holder[old_rank] = other
        planted.append(truth.name)
    return planted


@dataclass
class PopularityCrossCheck:
    """The 'nolisting among popular domains' result."""

    top15: int
    top500: int
    top1000: int
    ranked_adopters: List[int]


def crosscheck_popularity(
    internet: SyntheticInternet, verdicts: List[DomainVerdict]
) -> PopularityCrossCheck:
    """Count detected nolisting adopters within the Alexa top-N buckets."""
    rank_of = {truth.name: truth.alexa_rank for truth in internet.domains}
    adopter_ranks = sorted(
        rank_of[v.domain]
        for v in verdicts
        if v.domain_class is DomainClass.NOLISTING and rank_of.get(v.domain)
    )
    return crosscheck_from_ranks(adopter_ranks)


def crosscheck_from_ranks(
    adopter_ranks: Sequence[int],
) -> PopularityCrossCheck:
    """Bucket already-resolved adopter ranks (the shard-merge path)."""
    ranked = sorted(adopter_ranks)
    return PopularityCrossCheck(
        top15=sum(1 for r in ranked if r <= 15),
        top500=sum(1 for r in ranked if r <= 500),
        top1000=sum(1 for r in ranked if r <= 1000),
        ranked_adopters=ranked,
    )
