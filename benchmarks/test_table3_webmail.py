"""Bench: regenerate Table III (webmail retries at a 6 h threshold)."""

from repro.core.reports import table3_text
from repro.core.webmail_experiment import SIX_HOURS, run_webmail_experiment

from _util import emit

#: Paper rows: provider -> (same_ip, attempts, delivered, last delay mm:ss).
PAPER_ROWS = {
    "gmail.com": (False, 9, True, "434:46"),
    "yahoo.co.uk": (True, 9, True, "430:36"),
    "hotmail.com": (True, 94, True, "362:11"),
    "qq.com": (False, 12, False, "204:56"),
    "mail.ru": (False, 13, True, "373:45"),
    "yandex.com": (True, 28, True, "369:21"),
    "mail.com": (False, 10, True, "378:28"),
    "gmx.com": (False, 10, True, "375:36"),
    "aol.com": (True, 5, False, "31:32"),
    "india.com": (True, 10, True, "426:21"),
}


def test_table3_webmail(benchmark):
    rows = benchmark.pedantic(run_webmail_experiment, rounds=2, iterations=1)
    emit("Table III — Webmail delivery attempts, 6h threshold", table3_text(rows))

    assert len(rows) == 10
    for row in rows:
        same_ip, attempts, delivered, last_stamp = PAPER_ROWS[row.provider]
        assert row.same_ip == same_ip, row.provider
        assert row.attempts == attempts, row.provider
        assert row.delivered == delivered, row.provider
        assert row.delays_mmss()[-1] == last_stamp, row.provider
        if delivered:
            assert row.delivery_age >= SIX_HOURS

    # §V.B summary facts: 5/10 providers rotate IPs; 2/10 give up early.
    assert sum(1 for r in rows if not r.same_ip) == 5
    assert sum(1 for r in rows if not r.delivered) == 2
