"""Extension bench: the adoption x effectiveness synthesis.

Composes the paper's two measurement halves — who deploys the techniques
(Figure 2) and what each blocks (Table II) — into one end-to-end spam
wave over a mixed-deployment internet, and checks the measured block rate
against the analytic prediction.

Since the streaming columnar engine landed, the sweep runs at a
10,000,000-domain internet — the per-object engine topped out around 60,
the batch engine around 50,000 (it still materializes the deployment
list).  A separate test pins the batch speedup; the columnar throughput
floor and memory budget are gated in ``test_perf_columnar.py``.
"""

import time

import pytest

from repro.analysis.tables import format_percent, render_table
from repro.core.internet_scale import (
    run_internet_scale,
    sweep_deployment_rates,
)

from _util import emit, traced_peak_mb

NUM_DOMAINS = 10_000_000
SWEEP_RATES = [(0.0, 0.0), (0.2, 0.05), (0.5, 0.1), (0.8, 0.2)]
# Heap footprint is measured at a smaller N; the columnar path streams
# the deployment column in fixed-size chunks, so peak memory is
# independent of NUM_DOMAINS — which the memory-budget gate asserts.
MEMORY_PROBE_DOMAINS = 1_000_000


def run_all():
    sweep = sweep_deployment_rates(
        rates=SWEEP_RATES,
        messages=400,
        num_domains=NUM_DOMAINS,
        engine="columnar",
    )
    return sweep


def test_internet_scale_synthesis(benchmark):
    sweep = benchmark.pedantic(run_all, rounds=1, iterations=1)
    domains_per_sec = (
        NUM_DOMAINS * len(SWEEP_RATES) / benchmark.stats.stats.min
    )
    _, peak_mb = traced_peak_mb(
        lambda: run_internet_scale(
            num_domains=MEMORY_PROBE_DOMAINS,
            greylisting_rate=0.5,
            nolisting_rate=0.1,
            messages=400,
            seed=42,
            engine="columnar",
        )
    )
    benchmark.extra_info["domains_per_sec"] = round(domains_per_sec)
    benchmark.extra_info["peak_rss_mb"] = round(peak_mb, 2)

    table = render_table(
        headers=(
            "Greylisting deployed",
            "Nolisting deployed",
            "Spam blocked (measured)",
            "Spam blocked (predicted)",
        ),
        rows=[
            (
                format_percent(r.greylisting_rate),
                format_percent(r.nolisting_rate),
                format_percent(r.block_rate),
                format_percent(r.predicted_block_rate),
            )
            for r in sweep
        ],
        title=(
            f"Spam wave (Table I family mix) vs deployment levels "
            f"({NUM_DOMAINS} domains)"
        ),
    )
    emit(
        "Synthesis — adoption x effectiveness",
        table
        + f"\n{domains_per_sec:,.0f} domains/sec; "
        f"peak heap {peak_mb:.1f} MiB at {MEMORY_PROBE_DOMAINS:,} domains",
    )

    assert all(r.num_domains == NUM_DOMAINS for r in sweep)
    # No deployment, no protection.
    assert sweep[0].block_rate == 0.0
    # Block rate grows with deployment and tracks the analytic model.
    rates = [r.block_rate for r in sweep]
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    for r in sweep:
        assert r.block_rate == pytest.approx(r.predicted_block_rate, abs=0.08)


BATCH_DOMAINS = 50_000


def test_batch_engine_speedup(benchmark):
    """The batch engine must deliver >=10x domains/sec vs per-object.

    The object engine is timed at a size it can handle (1,000 domains) and
    the batch engine at its full scale (50,000); throughput is domains/sec,
    so the comparison is fair despite the different sizes.
    """
    kwargs = dict(greylisting_rate=0.5, nolisting_rate=0.1, messages=400, seed=61)

    start = time.perf_counter()
    obj = run_internet_scale(num_domains=1000, engine="object", **kwargs)
    object_rate = 1000 / (time.perf_counter() - start)

    def run_batch():
        return run_internet_scale(
            num_domains=BATCH_DOMAINS, engine="batch", **kwargs
        )

    result = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    batch_rate = BATCH_DOMAINS / benchmark.stats.stats.min

    assert obj.spam_sent == result.spam_sent == 400
    speedup = batch_rate / object_rate
    emit(
        "Batch engine throughput",
        f"object: {object_rate:,.0f} domains/sec (1,000 domains)\n"
        f"batch : {batch_rate:,.0f} domains/sec ({BATCH_DOMAINS:,} domains)\n"
        f"speedup: {speedup:,.1f}x",
    )
    assert speedup >= 10.0
