"""Bench: regenerate Figure 1 (the nolisting protocol sequence).

The paper's Figure 1 shows the DNS + SMTP message flow of a compliant MTA
delivering through a nolisted domain.  Here the sequence is generated from
a live simulated delivery, not drawn.
"""

from repro.core.figure1 import figure1_text, run_figure1

from _util import emit


def test_figure1_protocol_sequence(benchmark):
    trace = benchmark(run_figure1)
    emit("Figure 1 — nolisting delivery sequence", figure1_text())

    rendered = str(trace)
    # The figure's beats, in order.
    beats = [
        "MX QUERY for foo.net",
        "MX 0 smtp.foo.net; MX 15 smtp1.foo.net",
        "A QUERY for smtp.foo.net",
        "RST (connection refused)",          # the dead primary
        "220 smtp.foo.net ESMTP",            # the secondary answers
        "HELO local.domain.name",
        "250 smtp.foo.net Hello local.domain.name",
    ]
    position = -1
    for beat in beats:
        index = rendered.find(beat)
        assert index >= 0, beat
        assert index > position, f"{beat} out of order"
        position = index

    # A compliant client delivers despite nolisting — the technique's
    # zero-benign-cost property.
    assert trace.delivered
