"""Extension bench: the intro's pre- vs post-acceptance taxonomy, priced.

Greylisting (pre-acceptance, sender-based) and Bayesian content filtering
(post-acceptance, content-based) on the same mixed traffic: who blocks
what, who delays whom, and who pays the bandwidth.
"""

import pytest

from repro.analysis.tables import format_seconds, render_table
from repro.core.filter_comparison import compare_filtering

from _util import emit


def test_filter_taxonomy(benchmark):
    results = benchmark.pedantic(
        lambda: compare_filtering(spam_messages=30, benign_messages=30),
        rounds=1,
        iterations=1,
    )
    by_config = {r.configuration: r for r in results}

    table = render_table(
        headers=(
            "Configuration",
            "Spam blocked",
            "Benign delivered",
            "Benign mean delay",
            "Spam bytes on the wire",
        ),
        rows=[
            (
                r.configuration,
                f"{r.spam_block_rate:.0%}",
                f"{r.benign_delivered}/{r.benign_sent}",
                format_seconds(r.benign_mean_delay),
                r.spam_bytes_received,
            )
            for r in results
        ],
        title="Mixed traffic: retrying + fire-and-forget spam, postfix benign",
    )
    emit("Taxonomy — pre-acceptance vs post-acceptance filtering", table)

    greylist = by_config["greylist"]
    content = by_config["content"]
    both = by_config["both"]

    # Greylisting blocks exactly the fire-and-forget half, spending zero
    # bandwidth on it; retrying spam gets through.
    assert greylist.spam_block_rate == pytest.approx(0.5)

    # The content filter blocks everything on this template corpus, but
    # only after every spam body crossed the wire.
    assert content.spam_block_rate == 1.0
    assert content.spam_bytes_received > both.spam_bytes_received

    # Stacked: full blocking at reduced bandwidth, plus greylisting's
    # benign delay — the trade-off in one row.
    assert both.spam_block_rate == 1.0
    assert both.benign_mean_delay >= 300.0
    assert content.benign_mean_delay == 0.0

    # Nothing benign lost anywhere.
    for r in results:
        assert r.benign_delivered == r.benign_sent
        assert r.benign_false_positives == 0
