"""Unit tests for the family profiles, sample registry and campaigns."""

import pytest

from repro.botnet.behavior import MXBehavior
from repro.botnet.campaign import (
    CommandAndControl,
    SpamCampaign,
    make_recipient_list,
)
from repro.botnet.families import (
    BOTNET_FRACTION_OF_GLOBAL_SPAM,
    CUTWAIL,
    DARKMAILER,
    DARKMAILER_V3,
    FAMILIES,
    FAMILY_BY_NAME,
    KELIHOS,
    TOTAL_BOTNET_SPAM_SHARE,
    TOTAL_GLOBAL_SPAM_SHARE,
    global_spam_share,
)
from repro.botnet.retry import FireAndForget
from repro.botnet.samples import (
    TOTAL_SAMPLE_COUNT,
    collect_samples,
    samples_of,
)
from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.sim.rng import RandomStream


class TestFamilyProfiles:
    def test_table1_shares(self):
        assert CUTWAIL.botnet_spam_share == pytest.approx(0.4690)
        assert KELIHOS.botnet_spam_share == pytest.approx(0.3633)
        assert DARKMAILER.botnet_spam_share == pytest.approx(0.0721)
        assert DARKMAILER_V3.botnet_spam_share == pytest.approx(0.0258)

    def test_table1_totals(self):
        assert TOTAL_BOTNET_SPAM_SHARE == pytest.approx(0.9302)
        assert TOTAL_GLOBAL_SPAM_SHARE == pytest.approx(0.7069)
        # Global share == botnet share x botnet fraction of global spam.
        assert TOTAL_BOTNET_SPAM_SHARE * BOTNET_FRACTION_OF_GLOBAL_SPAM == (
            pytest.approx(TOTAL_GLOBAL_SPAM_SHARE, abs=0.0005)
        )

    def test_mx_behaviors_match_paper(self):
        assert KELIHOS.mx_behavior is MXBehavior.PRIMARY_ONLY
        assert CUTWAIL.mx_behavior is MXBehavior.SECONDARY_ONLY
        assert DARKMAILER.mx_behavior is MXBehavior.RFC_COMPLIANT
        assert DARKMAILER_V3.mx_behavior is MXBehavior.RFC_COMPLIANT

    def test_retry_traits(self):
        assert KELIHOS.retries
        assert not CUTWAIL.retries
        assert not DARKMAILER.retries
        assert not DARKMAILER_V3.retries
        assert isinstance(CUTWAIL.retry_factory(), FireAndForget)

    def test_family_lookup(self):
        assert FAMILY_BY_NAME["Kelihos"] is KELIHOS
        assert len(FAMILIES) == 4

    def test_global_spam_share(self):
        assert global_spam_share(KELIHOS) == pytest.approx(0.3633 * 0.76)

    def test_build_bot_wires_family_traits(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bot = KELIHOS.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=RandomStream(1),
        )
        assert bot.mx_behavior is MXBehavior.PRIMARY_ONLY
        assert not isinstance(bot.retry_model, FireAndForget)


class TestSampleRegistry:
    def test_eleven_samples_total(self):
        samples = collect_samples()
        assert len(samples) == 11
        assert TOTAL_SAMPLE_COUNT == 11

    def test_per_family_counts_match_table1(self):
        assert len(samples_of("Cutwail")) == 3
        assert len(samples_of("Kelihos")) == 6
        assert len(samples_of("Darkmailer")) == 1
        assert len(samples_of("Darkmailer(v3)")) == 1

    def test_hashes_unique_and_stable(self):
        hashes = [s.sha256 for s in collect_samples()]
        assert len(set(hashes)) == 11
        again = [s.sha256 for s in collect_samples()]
        assert hashes == again

    def test_labels(self):
        labels = [s.label for s in collect_samples()]
        assert "Kelihos/sample6" in labels
        assert "Cutwail/sample1" in labels


class TestCampaigns:
    def test_recipient_list(self):
        recipients = make_recipient_list("victim.example", 3)
        assert recipients == [
            "victim1@victim.example",
            "victim2@victim.example",
            "victim3@victim.example",
        ]

    def test_recipient_list_validation(self):
        with pytest.raises(ValueError):
            make_recipient_list("victim.example", 0)

    def test_campaign_jobs_tagged(self):
        campaign = SpamCampaign(
            sender="spam@bot.example",
            recipients=make_recipient_list("victim.example", 3),
        )
        jobs = campaign.single_recipient_jobs()
        assert len(jobs) == 3
        assert all(j.campaign_id == campaign.campaign_id for j in jobs)
        assert all(len(j.recipients) == 1 for j in jobs)

    def test_campaign_ids_unique(self):
        a = SpamCampaign(sender="s@x.example", recipients=["r@y.example"])
        b = SpamCampaign(sender="s@x.example", recipients=["r@y.example"])
        assert a.campaign_id != b.campaign_id

    def test_campaign_needs_recipients(self):
        with pytest.raises(ValueError):
            SpamCampaign(sender="s@x.example", recipients=[])

    def test_cnc_round_robin(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bots = [
            CUTWAIL.build_bot(
                internet=testbed.internet,
                resolver=testbed.resolver,
                scheduler=testbed.scheduler,
                source_address=testbed.allocate_bot_address(),
                rng=RandomStream(seed),
            )
            for seed in range(3)
        ]
        cnc = CommandAndControl(bots)
        campaign = SpamCampaign(
            sender="spam@bot.example",
            recipients=make_recipient_list("victim.example", 7),
        )
        cnc.dispatch(campaign)
        assert cnc.jobs_dispatched == 7
        assert [len(bot.tasks) for bot in bots] == [3, 2, 2]

    def test_cnc_requires_bots(self):
        with pytest.raises(ValueError):
            CommandAndControl([])
