"""Synthetic internet population for the adoption measurement.

The Figure 2 experiment needs an internet's worth of mail domains whose
ground truth we control: how many use a single MX, several MXes, nolisting,
or are misconfigured — plus the realistic nuisances the paper's pipeline had
to survive (transiently-down primaries, MX answers with missing glue,
persistent primary outages indistinguishable from nolisting).

:class:`SyntheticInternet` generates such a population deterministically
from a seed and exposes exactly the two views the real study had:
authoritative DNS (via a :class:`~repro.dns.zone.ZoneStore`) and per-scan
TCP/25 reachability (via :meth:`is_listening`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dns.zone import ZoneStore
from ..net.address import AddressPool, IPv4Address, IPv4Network
from ..sim.rng import RandomStream


class DomainCategory(enum.Enum):
    """Ground-truth configuration of a generated domain."""

    SINGLE_MX = "single-mx"
    MULTI_MX = "multi-mx"
    NOLISTING = "nolisting"
    MISCONFIGURED = "misconfigured"


#: Figure 2's published mix (fractions of all domains).
FIGURE2_MIX: Dict[DomainCategory, float] = {
    DomainCategory.SINGLE_MX: 0.4773,
    DomainCategory.MULTI_MX: 0.4597,
    DomainCategory.MISCONFIGURED: 0.0578,
    DomainCategory.NOLISTING: 0.0052,
}


@dataclass
class DomainTruth:
    """Everything the generator decided about one domain."""

    name: str
    category: DomainCategory
    mx_hosts: List[Tuple[str, int, Optional[IPv4Address]]] = field(
        default_factory=list
    )  # (hostname, preference, address-or-None)
    #: Scan index (0 or 1) during which the *primary* MX is spuriously down,
    #: or None.  Models maintenance windows / transient failures.
    outage_scan: Optional[int] = None
    #: Primary down in *both* scans (a persistent failure, which the paper
    #: deliberately counts as nolisting-equivalent).
    persistent_outage: bool = False
    alexa_rank: Optional[int] = None

    @property
    def primary(self) -> Optional[Tuple[str, int, Optional[IPv4Address]]]:
        if not self.mx_hosts:
            return None
        return min(self.mx_hosts, key=lambda h: h[1])

    @property
    def secondaries(self) -> List[Tuple[str, int, Optional[IPv4Address]]]:
        if len(self.mx_hosts) < 2:
            return []
        primary = self.primary
        return [h for h in self.mx_hosts if h is not primary]


@dataclass
class PopulationConfig:
    """Knobs of the generator."""

    num_domains: int = 10000
    mix: Dict[DomainCategory, float] = field(
        default_factory=lambda: dict(FIGURE2_MIX)
    )
    #: Fraction of single/multi-MX domains whose primary suffers a transient
    #: outage during exactly one of the two scans.
    transient_outage_rate: float = 0.004
    #: Fraction of multi-MX domains whose primary is persistently dead
    #: (counted as nolisting by the paper's operational definition).
    persistent_outage_rate: float = 0.0
    #: Fraction of multi-MX domains (2, 3 or 4 exchangers).
    extra_mx_weights: Tuple[float, float, float] = (0.72, 0.2, 0.08)
    #: Of the misconfigured domains, fraction that have a dangling MX (the
    #: rest have no MX records at all).
    dangling_mx_fraction: float = 0.5
    address_space: str = "10.0.0.0/8"

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError("population needs at least one domain")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"category mix must sum to 1, got {total}")
        for rate in (self.transient_outage_rate, self.persistent_outage_rate,
                     self.dangling_mx_fraction):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must lie in [0, 1]")


class SyntheticInternet:
    """A generated population of mail domains with ground truth attached."""

    def __init__(self, config: PopulationConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self.zones = ZoneStore()
        self.domains: List[DomainTruth] = []
        self._listening: Dict[IPv4Address, bool] = {}
        #: address -> scan index during which it is spuriously down
        self._down_during_scan: Dict[IPv4Address, int] = {}
        self._pool = AddressPool(IPv4Network.parse(config.address_space))
        self._generate(RandomStream(seed, "population"))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _category_counts(self) -> Dict[DomainCategory, int]:
        """Apportion domains to categories with largest-remainder rounding."""
        n = self.config.num_domains
        raw = {c: n * frac for c, frac in self.config.mix.items()}
        counts = {c: int(v) for c, v in raw.items()}
        shortfall = n - sum(counts.values())
        by_remainder = sorted(
            raw, key=lambda c: raw[c] - counts[c], reverse=True
        )
        for category in by_remainder[:shortfall]:
            counts[category] += 1
        return counts

    def _generate(self, rng: RandomStream) -> None:
        counts = self._category_counts()
        order: List[DomainCategory] = []
        for category, count in counts.items():
            order.extend([category] * count)
        rng.split("order").shuffle(order)

        ranks = list(range(1, self.config.num_domains + 1))
        rng.split("ranks").shuffle(ranks)

        outage_rng = rng.split("outages")
        mx_rng = rng.split("mx-count")
        misc_rng = rng.split("misconfig")

        for index, category in enumerate(order):
            name = f"dom{index:07d}.example"
            truth = DomainTruth(
                name=name, category=category, alexa_rank=ranks[index]
            )
            if category is DomainCategory.SINGLE_MX:
                self._build_single(truth)
                self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.MULTI_MX:
                self._build_multi(truth, mx_rng)
                if outage_rng.random() < self.config.persistent_outage_rate:
                    self._apply_persistent_outage(truth)
                else:
                    self._maybe_transient(truth, outage_rng)
            elif category is DomainCategory.NOLISTING:
                self._build_nolisting(truth)
            else:
                self._build_misconfigured(truth, misc_rng)
            self.domains.append(truth)

    def _allocate_mx(
        self, truth: DomainTruth, label: str, preference: int, listening: bool
    ) -> IPv4Address:
        address = self._pool.allocate()
        hostname = f"{label}.{truth.name}"
        zone = self.zones.get_or_create(truth.name)
        zone.add_a(hostname, address)
        zone.add_mx(preference, hostname)
        truth.mx_hosts.append((hostname, preference, address))
        self._listening[address] = listening
        return address

    def _build_single(self, truth: DomainTruth) -> None:
        self._allocate_mx(truth, "smtp", 10, listening=True)

    def _build_multi(self, truth: DomainTruth, rng: RandomStream) -> None:
        extra = rng.weighted_index(list(self.config.extra_mx_weights)) + 1
        self._allocate_mx(truth, "smtp", 10, listening=True)
        for i in range(extra):
            self._allocate_mx(truth, f"smtp{i + 1}", 10 * (i + 2), listening=True)

    def _build_nolisting(self, truth: DomainTruth) -> None:
        # Primary resolves but refuses port 25; secondary works (Figure 1).
        self._allocate_mx(truth, "smtp", 0, listening=False)
        self._allocate_mx(truth, "smtp1", 15, listening=True)

    def _build_misconfigured(self, truth: DomainTruth, rng: RandomStream) -> None:
        zone = self.zones.get_or_create(truth.name)
        if rng.random() < self.config.dangling_mx_fraction:
            # MX points at a hostname with no A record anywhere.
            hostname = f"ghost.{truth.name}"
            zone.add_mx(10, hostname)
            truth.mx_hosts.append((hostname, 10, None))
        else:
            # Domain exists (has an A record for www) but no MX at all.
            zone.add_a(f"www.{truth.name}", self._pool.allocate())

    def _maybe_transient(self, truth: DomainTruth, rng: RandomStream) -> None:
        if rng.random() >= self.config.transient_outage_rate:
            return
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        scan_index = rng.randint(0, 1)
        truth.outage_scan = scan_index
        self._down_during_scan[primary[2]] = scan_index

    def _apply_persistent_outage(self, truth: DomainTruth) -> None:
        primary = truth.primary
        if primary is None or primary[2] is None:
            return
        truth.persistent_outage = True
        self._listening[primary[2]] = False

    # ------------------------------------------------------------------
    # Scan-time views
    # ------------------------------------------------------------------
    def is_listening(self, address: IPv4Address, scan_index: int) -> bool:
        """TCP/25 reachability of ``address`` as seen by scan ``scan_index``."""
        if not self._listening.get(address, False):
            return False
        return self._down_during_scan.get(address) != scan_index

    def all_mail_addresses(self) -> List[IPv4Address]:
        """Every address allocated to an MX host (the scan's address space)."""
        return [
            addr
            for truth in self.domains
            for (_, _, addr) in truth.mx_hosts
            if addr is not None
        ]

    # ------------------------------------------------------------------
    # Ground truth helpers (for validating the pipeline)
    # ------------------------------------------------------------------
    def truth_counts(self) -> Dict[DomainCategory, int]:
        counts = {c: 0 for c in DomainCategory}
        for truth in self.domains:
            counts[truth.category] += 1
        return counts

    def domains_in(self, category: DomainCategory) -> List[DomainTruth]:
        return [t for t in self.domains if t.category is category]

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(domains={self.num_domains}, seed={self.seed})"
        )
