"""Default retry profiles of popular MTAs (paper Table IV).

Each profile encodes the documented default retransmission times (first ten
hours) and maximum queue lifetime of one MTA.  The reproduction both *uses*
these profiles (to drive benign senders in the deployment simulation of
Figure 5) and *reports* them (regenerating Table IV from the running code).

Sources are the MTAs' default configurations as surveyed by the paper:

* sendmail — retries at 10, 20, 30, ... minute queue ages (a regular
  10-minute cadence, "very regular regarding the time interval"),
  5-day queue lifetime;
* exim — 15, 30, ... up to 120 min, then geometric *1.5 (180, 270, 405,
  607.5 min), 4-day lifetime;
* postfix — minimal backoff 300 s doubling up to the 4000 s maximal
  backoff (approximated by its documented effective cadence 5, 10, 15, 20,
  25, 30, 45, ... minutes), 5-day lifetime;
* qmail — the quadratic schedule (400*(n^2) seconds): 6.6, 26.6, 60,
  106.6, ... minutes, 7-day lifetime;
* courier — clustered triple attempts 5/10/15, 30/35/40, 70/75/80 ...
  minutes, 7-day lifetime;
* exchange — 15-minute fixed cadence, 2-day lifetime (the only surveyed
  MTA below the RFC's 4–5 day guidance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .schedule import (
    DAY,
    MINUTE,
    FixedIntervalSchedule,
    RetrySchedule,
    TableSchedule,
)

TEN_HOURS = 36000.0


@dataclass(frozen=True)
class MTAProfile:
    """One row of Table IV: an MTA and its default retry behaviour."""

    name: str
    schedule: RetrySchedule
    max_queue_days: float

    def retransmission_minutes(self, horizon: float = TEN_HOURS) -> List[float]:
        """Queue ages (minutes) of retries within ``horizon`` seconds.

        Attempt 1 (age 0) is excluded: Table IV lists *re*-transmissions.
        """
        return [t / MINUTE for t in self.schedule.attempt_times(horizon)[1:]]


def _qmail_ages(count: int = 10) -> List[float]:
    """qmail retries at 400 * n^2 seconds for n = 1, 2, 3, ..."""
    return [400.0 * n * n for n in range(1, count + 1)]


def _courier_ages() -> List[float]:
    """Courier retries in clusters of three, 5 minutes apart.

    Cluster starts follow roughly 5, 30, 70, 140, 270, 400, 530, 660 minutes.
    """
    cluster_starts = [5, 30, 70, 140, 270, 400, 530, 660]
    ages: List[float] = []
    for start in cluster_starts:
        for offset in (0, 5, 10):
            ages.append((start + offset) * MINUTE)
    return ages


def build_profiles() -> Dict[str, MTAProfile]:
    """Construct the six surveyed MTA profiles keyed by name."""
    profiles: Dict[str, MTAProfile] = {}

    profiles["sendmail"] = MTAProfile(
        name="sendmail",
        schedule=FixedIntervalSchedule(
            interval=10 * MINUTE, max_queue_time=5 * DAY
        ),
        max_queue_days=5,
    )

    exim_ages = [15, 30, 45, 60, 75, 90, 105, 120, 180, 270, 405, 607.5]
    profiles["exim"] = MTAProfile(
        name="exim",
        schedule=TableSchedule(
            ages=[a * MINUTE for a in exim_ages],
            max_queue_time=4 * DAY,
            repeat_last=True,
        ),
        max_queue_days=4,
    )

    postfix_ages = [5, 10, 15, 20, 25, 30, 45, 60, 75, 90, 105, 120, 180, 240,
                    300, 360, 420, 480, 540, 600]
    profiles["postfix"] = MTAProfile(
        name="postfix",
        schedule=TableSchedule(
            ages=[a * MINUTE for a in postfix_ages],
            max_queue_time=5 * DAY,
            repeat_last=True,
        ),
        max_queue_days=5,
    )

    profiles["qmail"] = MTAProfile(
        name="qmail",
        schedule=TableSchedule(
            ages=_qmail_ages(), max_queue_time=7 * DAY, repeat_last=True
        ),
        max_queue_days=7,
    )

    profiles["courier"] = MTAProfile(
        name="courier",
        schedule=TableSchedule(
            ages=_courier_ages(), max_queue_time=7 * DAY, repeat_last=True
        ),
        max_queue_days=7,
    )

    profiles["exchange"] = MTAProfile(
        name="exchange",
        schedule=FixedIntervalSchedule(
            interval=15 * MINUTE, max_queue_time=2 * DAY
        ),
        max_queue_days=2,
    )

    return profiles


#: Singleton profile table used throughout the reproduction.
PROFILES: Dict[str, MTAProfile] = build_profiles()

#: Names in Table IV row order.
PROFILE_ORDER: Tuple[str, ...] = (
    "sendmail",
    "exim",
    "postfix",
    "qmail",
    "courier",
    "exchange",
)

#: RFC-822/5321 guidance: retries should continue for at least 4-5 days.
RFC_MIN_GIVEUP_DAYS = 4.0


def rfc_compliant_lifetime(profile: MTAProfile) -> bool:
    """Does the profile's give-up time satisfy the RFC's 4-5 day guidance?

    The paper notes Exchange is the only surveyed MTA that falls short.
    """
    return profile.max_queue_days >= RFC_MIN_GIVEUP_DAYS
