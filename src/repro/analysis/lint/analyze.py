"""Two-phase whole-program analysis: per-file checkers + graph rules.

:func:`analyze_paths` is the one entry point the CLI, CI and the
self-check test all use.  It parses every module exactly once, runs the
per-file checker suite (phase one), builds the project-wide
:class:`~repro.analysis.lint.graph.Project` — symbol table, import
resolution, call graph — and runs the interprocedural rules on it
(phase two).  Graph findings honor the same ``# repro: noqa RULE-ID``
inline suppressions as per-file findings: a graph finding is reported at
its sink line, so the annotation lives next to the code it excuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .findings import Finding
from .framework import (
    Checker,
    LintResult,
    ModuleContext,
    _select,
    default_checkers,
    lint_context,
    load_contexts,
)
from .graph import GraphRule, Project, default_graph_rules


@dataclass
class AnalysisResult:
    """Everything one whole-program analysis run produced."""

    findings: List[Finding]
    suppressed: int = 0
    files_checked: int = 0
    #: The project graph, for ``--graph-json`` / ``--api-report`` dumps.
    project: Optional[Project] = field(default=None, repr=False)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def run_graph_rules(
    project: Project,
    rules: Optional[Sequence[GraphRule]] = None,
) -> LintResult:
    """Run interprocedural rules over a built project.

    Inline suppressions are applied per module: each finding is filtered
    against the ``# repro: noqa`` map of the module it is reported in.
    """
    suite = list(rules) if rules is not None else default_graph_rules()
    raw: List[Finding] = []
    for rule in suite:
        raw.extend(rule.check(project))
    kept: List[Finding] = []
    suppressed = 0
    by_path: Dict[str, ModuleContext] = {
        path: ms.context for path, ms in project.modules.items()
    }
    for finding in raw:
        ctx = by_path.get(finding.path)
        rules_at_line = (
            ctx.suppressions().get(finding.line, _MISSING)
            if ctx is not None
            else _MISSING
        )
        if rules_at_line is _MISSING:
            kept.append(finding)
        elif rules_at_line is None or finding.rule in rules_at_line:  # type: ignore[operator]
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return LintResult(
        findings=kept, suppressed=suppressed, files_checked=len(by_path)
    )


_MISSING = object()


def analyze_contexts(
    contexts: Sequence[ModuleContext],
    *,
    checkers: Optional[Sequence[Checker]] = None,
    graph_rules: Optional[Sequence[GraphRule]] = None,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    build_graph: bool = True,
) -> AnalysisResult:
    """Run both phases over pre-parsed modules (the test entry point)."""
    suite = list(checkers) if checkers is not None else default_checkers()
    suite = _select(suite, select, ignore)
    findings: List[Finding] = []
    suppressed = 0
    for ctx in contexts:
        result = lint_context(ctx, suite)
        findings.extend(result.findings)
        suppressed += result.suppressed

    project: Optional[Project] = None
    if build_graph:
        project = Project(contexts)
        rule_suite = (
            list(graph_rules)
            if graph_rules is not None
            else default_graph_rules()
        )
        rule_suite = _select(rule_suite, select, ignore)
        graph_result = run_graph_rules(project, rule_suite)
        findings.extend(graph_result.findings)
        suppressed += graph_result.suppressed

    findings.sort(key=Finding.sort_key)
    return AnalysisResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(contexts),
        project=project,
    )


def analyze_paths(
    paths: Sequence[Path],
    *,
    checkers: Optional[Sequence[Checker]] = None,
    graph_rules: Optional[Sequence[GraphRule]] = None,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    build_graph: bool = True,
) -> AnalysisResult:
    """Analyze every Python file under ``paths``, both phases, parse once."""
    contexts, errors = load_contexts(paths)
    result = analyze_contexts(
        contexts,
        checkers=checkers,
        graph_rules=graph_rules,
        select=select,
        ignore=ignore,
        build_graph=build_graph,
    )
    result.findings.extend(errors)
    result.findings.sort(key=Finding.sort_key)
    result.files_checked += len(errors)
    return result
