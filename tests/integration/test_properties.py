"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCDF, ks_distance
from repro.dns.mxutil import sort_mx
from repro.dns.records import MXRecord
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import TripletStore
from repro.greylist.triplet import Triplet
from repro.mta.schedule import (
    FixedIntervalSchedule,
    GeometricBackoffSchedule,
    TableSchedule,
)
from repro.net.address import IPv4Address
from repro.sim.clock import Clock, format_duration, parse_duration
from repro.sim.events import EventScheduler
from repro.sim.rng import RandomStream

ipv4_values = st.integers(min_value=0, max_value=(1 << 32) - 1)
small_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAddressProperties:
    @given(ipv4_values)
    def test_parse_str_roundtrip(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address

    @given(ipv4_values, ipv4_values)
    def test_ordering_matches_values(self, a, b):
        assert (IPv4Address(a) < IPv4Address(b)) == (a < b)


class TestDurationProperties:
    @given(st.integers(min_value=0, max_value=10 ** 7))
    def test_format_parse_roundtrip(self, seconds):
        assert parse_duration(format_duration(seconds)) == float(seconds)


class TestCDFProperties:
    @given(st.lists(small_floats, min_size=1, max_size=200))
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        xs = sorted(set(samples)) + [max(samples) + 1.0]
        values = [cdf.at(x) for x in xs]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0

    @given(st.lists(small_floats, min_size=1, max_size=100))
    def test_quantile_inverts_cdf(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        for q in (0.25, 0.5, 0.75, 1.0):
            assert cdf.at(cdf.quantile(q)) >= q

    @given(
        st.lists(small_floats, min_size=1, max_size=60),
        st.lists(small_floats, min_size=1, max_size=60),
    )
    def test_ks_distance_is_metric_like(self, a, b):
        cdf_a = EmpiricalCDF.from_samples(a)
        cdf_b = EmpiricalCDF.from_samples(b)
        d = ks_distance(cdf_a, cdf_b)
        assert 0.0 <= d <= 1.0
        assert ks_distance(cdf_b, cdf_a) == d
        assert ks_distance(cdf_a, cdf_a) == 0.0


class TestMXSortProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=65535),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_sort_mx_orders_by_preference(self, specs):
        records = [
            MXRecord("d.example", pref, f"mx{idx}.d.example")
            for pref, idx in specs
        ]
        ordered = sort_mx(records)
        assert sorted(r.preference for r in ordered) == [
            r.preference for r in ordered
        ]
        assert sorted(str(r) for r in ordered) == sorted(str(r) for r in records)


class TestScheduleProperties:
    @given(
        st.floats(min_value=10.0, max_value=7200.0, allow_nan=False),
        st.floats(min_value=3600.0, max_value=86400.0, allow_nan=False),
    )
    def test_fixed_interval_attempt_times_monotone(self, interval, horizon):
        schedule = FixedIntervalSchedule(interval=interval, max_queue_time=None)
        times = schedule.attempt_times(horizon)
        assert times[0] == 0.0
        assert all(b > a for a, b in zip(times, times[1:]))
        assert all(t <= horizon for t in times)

    @given(
        st.floats(min_value=1.0, max_value=3600.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    )
    def test_geometric_delays_nondecreasing(self, base, factor):
        schedule = GeometricBackoffSchedule(
            base=base, factor=factor, max_queue_time=None
        )
        delays = [schedule.next_delay(n, 0.0) for n in range(1, 10)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=10 ** 5, allow_nan=False),
            min_size=1,
            max_size=15,
            unique=True,
        )
    )
    def test_table_schedule_reproduces_its_ages(self, raw_ages):
        ages = sorted(raw_ages)
        schedule = TableSchedule(ages=ages, max_queue_time=None, repeat_last=False)
        times = schedule.attempt_times(ages[-1] + 1)
        expected = [0.0] + ages
        # Delays accumulate in floating point; compare within tolerance.
        assert len(times) == len(expected)
        assert all(
            abs(a - b) < 1e-6 * max(1.0, b) for a, b in zip(times, expected)
        )


class TestTripletStoreProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),   # client index
                st.integers(min_value=0, max_value=3),   # sender index
                st.floats(min_value=0.1, max_value=3600.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_attempt_counts_accumulate(self, events):
        clock = Clock()
        store = TripletStore(clock, retry_window=10 ** 9)
        expected = {}
        for client_idx, sender_idx, gap in events:
            clock.advance_by(gap)
            triplet = Triplet(
                IPv4Address(client_idx),
                f"s{sender_idx}@x.example",
                "r@y.example",
            )
            entry = store.observe(triplet)
            expected[triplet] = expected.get(triplet, 0) + 1
            assert entry.attempts == expected[triplet]
        assert store.size == len(expected)

    @given(st.floats(min_value=0.0, max_value=86400.0, allow_nan=False))
    def test_policy_pass_iff_age_at_least_delay(self, age):
        clock = Clock()
        policy = GreylistPolicy(clock=clock, delay=300.0)
        client = IPv4Address.parse("198.51.100.1")
        policy.on_rcpt_to(client, "s@x.example", "r@y.example")
        clock.advance_by(age)
        decision = policy.on_rcpt_to(client, "s@x.example", "r@y.example")
        assert decision.accept == (age >= 300.0)


class TestSchedulerProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_events_fire_in_sorted_order(self, times):
        scheduler = EventScheduler()
        fired = []
        for t in times:
            scheduler.schedule_at(t, lambda t=t: fired.append(t))
        scheduler.run()
        assert fired == sorted(times)
        assert scheduler.events_processed == len(times)

    @given(st.integers(min_value=0, max_value=2 ** 31), st.text(max_size=20))
    def test_rng_split_deterministic(self, seed, label):
        a = RandomStream(seed).split(label)
        b = RandomStream(seed).split(label)
        assert a.random() == b.random()
