"""Columnar struct-of-arrays pipeline for the internet-scale path.

The object path materializes one :class:`~repro.scan.population.DomainTruth`
(plus zones, address objects and probe state) per domain; the batch engine
(PR 5) dropped the zones but still builds a Python object per domain.  At
internet scale neither fits: 10M domains of per-domain objects is gigabytes
of heap.  This module holds the population as **parallel columns** — one
small fixed-width cell per domain for rank, ground-truth category, MX
topology, outage schedule, provider pool and generator profile — built one
~100k-domain chunk at a time, so peak memory is bounded by the chunk size,
not the population size.

Columns are NumPy arrays when NumPy is importable (and ``REPRO_NO_NUMPY``
is unset); otherwise the pure-Python :mod:`array` module provides the same
fixed-width storage with identical contents.  Every consumer treats the two
backends interchangeably — NumPy only accelerates, it never decides.

Determinism contract
--------------------
All random draws stay on the Python side (:meth:`~repro.sim.rng.
RandomStream.random_block` bulk-draws from the same Mersenne Twister state
the per-object path advances), because NumPy's generators cannot replicate
:mod:`random`'s stream.  Vectorization applies strictly *downstream* of the
draws — binning, classification and accounting — which is what keeps the
columnar engines bit-for-bit identical to the object oracle at any N.

>>> CATEGORY_TOPOLOGIES[TOPO_NOLISTING].value
'nolisting'
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..net.address import IPv4Network
from ..sim.rng import RandomStream
from .population import (
    CATEGORY_CODE,
    CATEGORY_ORDER,
    DomainCategory,
    PopulationConfig,
    PopulationPlan,
    population_from_params,
    provider_pool_address,
    provider_pool_apex,
    provider_pool_host,
)
from .profiles import PROFILE_CODE


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when unavailable or disabled.

    Checked at every call (not import time) so the ``REPRO_NO_NUMPY``
    environment variable — which CI's numpy-less leg sets — takes effect
    without reimports.  NumPy is a pure accelerator: every columnar code
    path has an :mod:`array`-module fallback with identical results.
    """
    # The one sanctioned environment read on a hot path: it only picks
    # the accelerator, and the fallback is equivalence-tested bit-identical.
    if os.environ.get("REPRO_NO_NUMPY"):  # repro: noqa DET001 - accelerator toggle
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - container always has numpy
        return None
    return numpy


# ----------------------------------------------------------------------
# Topology codes (the "MX topology id" column)
# ----------------------------------------------------------------------
TOPO_NO_MX = 0
TOPO_DANGLING = 1
TOPO_SINGLE = 2
TOPO_MULTI = 3
TOPO_NOLISTING = 4
TOPO_POOL_FAILOVER = 5
TOPO_POOL_BALANCED = 6

#: topology code -> the ground-truth category it can occur under.
CATEGORY_TOPOLOGIES: Dict[int, DomainCategory] = {
    TOPO_NO_MX: DomainCategory.MISCONFIGURED,
    TOPO_DANGLING: DomainCategory.MISCONFIGURED,
    TOPO_SINGLE: DomainCategory.SINGLE_MX,
    TOPO_MULTI: DomainCategory.MULTI_MX,
    TOPO_NOLISTING: DomainCategory.NOLISTING,
    TOPO_POOL_FAILOVER: DomainCategory.MULTI_MX,
    TOPO_POOL_BALANCED: DomainCategory.MULTI_MX,
}

#: Sentinel in the ``addr_offset`` column for "no population address"
#: (dangling MX, no-MX, and pool-hosted domains whose addresses are
#: arithmetic in the provider block instead).
NO_ADDRESS = (1 << 64) - 1

#: Sentinels in the small signed columns.
NO_OUTAGE = -1
NO_POOL = -1


def _column(typecode: str, values: List[int], np, dtype: Optional[str]):
    """Freeze a build list into a NumPy array or an ``array`` column."""
    if np is not None:
        return np.array(values, dtype=dtype)
    return array(typecode, values)


class ColumnarChunk:
    """One generation chunk of the population as parallel columns.

    Every cell is a fixed-width integer; the full per-domain ground truth
    (records, hostnames, preferences, addresses) is *derivable* from the
    columns via :func:`chunk_records` — nothing else needs to be stored.
    """

    __slots__ = (
        "chunk_index",
        "start",
        "n",
        "addr_base",
        "category",
        "rank",
        "topology",
        "mx_count",
        "outage_scan",
        "persistent",
        "provider_pool",
        "addr_offset",
        "profile",
    )

    def __init__(
        self,
        chunk_index: int,
        start: int,
        addr_base: int,
        category,
        rank,
        topology,
        mx_count,
        outage_scan,
        persistent,
        provider_pool,
        addr_offset,
        profile,
    ) -> None:
        self.chunk_index = chunk_index
        self.start = start
        self.addr_base = addr_base
        self.category = category
        self.rank = rank
        self.topology = topology
        self.mx_count = mx_count
        self.outage_scan = outage_scan
        self.persistent = persistent
        self.provider_pool = provider_pool
        self.addr_offset = addr_offset
        self.profile = profile
        self.n = len(category)


def build_columnar_chunk(
    plan: PopulationPlan,
    config: PopulationConfig,
    seed: int,
    chunk_index: int,
) -> ColumnarChunk:
    """Replay one chunk's generation draws into columns.

    Draw-for-draw lockstep with
    :meth:`~repro.scan.population.SyntheticInternet._generate_chunk`; any
    change there must be mirrored here (the columnar-equivalence property
    tests pin the two together).  No zones, no address allocator, no
    per-domain objects — addresses are arithmetic offsets into the chunk's
    slice and pool addresses are arithmetic in the provider block.
    """
    chunk_rng = RandomStream(seed, "population").split(f"chunk:{chunk_index}")
    outage_rng = chunk_rng.split("outages")
    mx_rng = chunk_rng.split("mx-count")
    misc_rng = chunk_rng.split("misconfig")
    provider_rng = (
        chunk_rng.split("provider")
        if config.provider_pool_fraction > 0
        else None
    )

    network = IPv4Network.parse(config.address_space)
    next_offset = chunk_index * config.chunk_address_stride
    profile_code = PROFILE_CODE.get(config.profile, 0)

    categories: List[int] = []
    ranks: List[int] = []
    topologies: List[int] = []
    mx_counts: List[int] = []
    outages: List[int] = []
    persistents: List[int] = []
    pools: List[int] = []
    offsets: List[int] = []

    for _, _name, category, rank in plan.chunk_rows(chunk_index):
        topology = TOPO_SINGLE
        mx_count = 0
        outage = NO_OUTAGE
        persistent = 0
        pool_id = NO_POOL
        offset = NO_ADDRESS

        if category is DomainCategory.SINGLE_MX:
            topology = TOPO_SINGLE
            mx_count = 1
            offset = next_offset
            next_offset += 1
            outage = _replay_transient(outage_rng, config)
        elif category is DomainCategory.MULTI_MX:
            extra = mx_rng.weighted_index(list(config.extra_mx_weights)) + 1
            mx_count = extra + 1
            pooled = (
                provider_rng is not None
                and provider_rng.random() < config.provider_pool_fraction
            )
            if pooled:
                pool_id = provider_rng.randrange(config.provider_pool_count)
                balanced = (
                    provider_rng.random() < config.provider_equal_preference
                )
                topology = TOPO_POOL_BALANCED if balanced else TOPO_POOL_FAILOVER
            else:
                topology = TOPO_MULTI
                offset = next_offset
                next_offset += mx_count
                if outage_rng.random() < config.persistent_outage_rate:
                    persistent = 1
                else:
                    outage = _replay_transient(outage_rng, config)
        elif category is DomainCategory.NOLISTING:
            topology = TOPO_NOLISTING
            mx_count = 2
            offset = next_offset
            next_offset += 2
        else:  # MISCONFIGURED
            if misc_rng.random() < config.dangling_mx_fraction:
                topology = TOPO_DANGLING
                mx_count = 1
            else:
                topology = TOPO_NO_MX
                mx_count = 0
                next_offset += 1  # the www A record still consumes a slot

        categories.append(CATEGORY_CODE[category])
        ranks.append(rank)
        topologies.append(topology)
        mx_counts.append(mx_count)
        outages.append(outage)
        persistents.append(persistent)
        pools.append(pool_id)
        offsets.append(offset)

    np = numpy_or_none()
    return ColumnarChunk(
        chunk_index=chunk_index,
        start=chunk_index * config.chunk_size,
        addr_base=network.base.value,
        category=_column("B", categories, np, "uint8"),
        rank=_column("I", ranks, np, "uint32"),
        topology=_column("B", topologies, np, "uint8"),
        mx_count=_column("B", mx_counts, np, "uint8"),
        outage_scan=_column("b", outages, np, "int8"),
        persistent=_column("B", persistents, np, "uint8"),
        provider_pool=_column("h", pools, np, "int16"),
        addr_offset=_column("Q", offsets, np, "uint64"),
        profile=_column("B", [profile_code] * len(categories), np, "uint8"),
    )


def _replay_transient(rng: RandomStream, config: PopulationConfig) -> int:
    """Replay ``SyntheticInternet._maybe_transient`` for a live primary."""
    if rng.random() >= config.transient_outage_rate:
        return NO_OUTAGE
    return rng.randint(0, 1)


def chunk_records(
    chunk: ColumnarChunk, i: int, name: str
) -> List[Tuple[str, int, Optional[int]]]:
    """Reconstruct domain ``i``'s MX records from its column cells.

    Returns ``(hostname, preference, address-value-or-None)`` triples in
    generation order — the exact contents of ``DomainTruth.mx_hosts``.
    """
    topology = chunk.topology[i]
    count = int(chunk.mx_count[i])
    if topology == TOPO_NO_MX:
        return []
    if topology == TOPO_DANGLING:
        return [(f"ghost.{name}", 10, None)]
    if topology in (TOPO_POOL_FAILOVER, TOPO_POOL_BALANCED):
        pool_id = int(chunk.provider_pool[i])
        balanced = topology == TOPO_POOL_BALANCED
        return [
            (
                provider_pool_host(pool_id, slot),
                10 if balanced else 10 * (slot + 1),
                provider_pool_address(pool_id, slot),
            )
            for slot in range(count)
        ]
    address = chunk.addr_base + int(chunk.addr_offset[i])
    if topology == TOPO_SINGLE:
        return [(f"smtp.{name}", 10, address)]
    if topology == TOPO_NOLISTING:
        return [(f"smtp.{name}", 0, address), (f"smtp1.{name}", 15, address + 1)]
    # TOPO_MULTI, self-hosted
    records: List[Tuple[str, int, Optional[int]]] = [
        (f"smtp.{name}", 10, address)
    ]
    for j in range(1, count):
        records.append((f"smtp{j}.{name}", 10 * (j + 1), address + j))
    return records


def pool_apex_of(chunk: ColumnarChunk, i: int) -> Optional[str]:
    """Provider-pool zone apex of domain ``i``, or ``None`` if self-hosted."""
    pool_id = int(chunk.provider_pool[i])
    if pool_id < 0:
        return None
    return provider_pool_apex(pool_id)


# ----------------------------------------------------------------------
# Vectorized adoption accounting
# ----------------------------------------------------------------------
#: Bit layout of the packed per-domain outcome key (fault-free scans only):
#: topology(3) | category(2 bits suffice, 3 used) | mx_count(3) |
#: outage+1(2) | persistent(1).
_TOPO_BITS, _CAT_SHIFT, _MXC_SHIFT, _OUT_SHIFT, _PER_SHIFT = 7, 3, 6, 9, 11


def _pack_outcome_keys(chunk: ColumnarChunk):
    """Per-domain outcome keys as one integer column (vectorized)."""
    np = numpy_or_none()
    if np is not None and hasattr(chunk.topology, "astype"):
        t = chunk.topology.astype(np.int64)
        return (
            t
            | (chunk.category.astype(np.int64) << _CAT_SHIFT)
            | (chunk.mx_count.astype(np.int64) << _MXC_SHIFT)
            | ((chunk.outage_scan.astype(np.int64) + 1) << _OUT_SHIFT)
            | (chunk.persistent.astype(np.int64) << _PER_SHIFT)
        )
    return array(
        "q",
        (
            chunk.topology[i]
            | (chunk.category[i] << _CAT_SHIFT)
            | (chunk.mx_count[i] << _MXC_SHIFT)
            | ((chunk.outage_scan[i] + 1) << _OUT_SHIFT)
            | (chunk.persistent[i] << _PER_SHIFT)
            for i in range(chunk.n)
        ),
    )


def _unique_counts(packed) -> Dict[int, int]:
    """Distinct outcome keys and their cardinalities."""
    np = numpy_or_none()
    if np is not None and hasattr(packed, "astype"):
        keys, counts = np.unique(packed, return_counts=True)
        return {int(k): int(c) for k, c in zip(keys, counts)}
    counts: Dict[int, int] = {}
    for key in packed:
        counts[key] = counts.get(key, 0) + 1
    return counts


def _shape_of_key(key: int, scan_index: int) -> Tuple[Any, ...]:
    """The single-scan shape a fault-free scan observes for one key."""
    topology = key & _TOPO_BITS
    mx_count = (key >> _MXC_SHIFT) & 7
    outage = ((key >> _OUT_SHIFT) & 3) - 1
    persistent = (key >> _PER_SHIFT) & 1
    if topology == TOPO_NO_MX:
        return (0, 0, False, False)
    if topology == TOPO_DANGLING:
        return (1, 0, False, False)
    if topology == TOPO_SINGLE:
        return (1, 1, False, False)
    if topology == TOPO_NOLISTING:
        return (2, 2, False, True)
    if topology in (TOPO_POOL_FAILOVER, TOPO_POOL_BALANCED):
        return (mx_count, mx_count, True, True)
    primary_up = not persistent and outage != scan_index
    return (mx_count, mx_count, primary_up, True)


def columnar_adoption_shard(
    payload: Dict[str, Any], counters=None
) -> Dict[str, Any]:
    """Columnar equivalent of :func:`repro.scan.batch.batched_adoption_shard`.

    Fault-free, elision-free scans are a pure function of the chunk's
    columns, so the whole chunk collapses to ``unique(packed keys)`` —
    vectorized under NumPy — and the *real* classifiers run once per
    distinct key.  Faulted or glue-eliding payloads depend on per-domain
    RNG streams that are inherently sequential; those delegate to the
    batch replay engine, which produces the identical result.
    """
    from ..core.adoption import _TRUTH_TO_CLASS
    from .batch import _shape_verdict, batched_adoption_shard
    from .detect import DomainClass, SingleScanVerdict, classify_two_scans

    if payload.get("faults") is not None or float(payload["glue_elision_rate"]) > 0:
        return batched_adoption_shard(payload, counters)

    config = population_from_params(payload["population"])
    seed = int(payload["seed"])
    chunk_index = int(payload["chunk"])
    plan = PopulationPlan(config, seed)
    chunk = build_columnar_chunk(plan, config, seed, chunk_index)

    packed = _pack_outcome_keys(chunk)
    cardinality = _unique_counts(packed)

    shape_memo: Dict[Tuple[Any, ...], SingleScanVerdict] = {}
    representative_runs = 0

    def verdict_of(shape: Tuple[Any, ...]) -> SingleScanVerdict:
        nonlocal representative_runs
        verdict = shape_memo.get(shape)
        if verdict is None:
            verdict = _shape_verdict(shape)
            shape_memo[shape] = verdict
            representative_runs += 1
        return verdict

    pair_memo: Dict[Tuple[SingleScanVerdict, SingleScanVerdict], DomainClass] = {}
    counts = {c: 0 for c in DomainClass}
    total = flapped = servers_covered = addresses_covered = 0
    confusion = {"correct": 0, "wrong": 0}
    nolisting_keys: List[int] = []

    for key, members in cardinality.items():
        topology = key & _TOPO_BITS
        mx_count = (key >> _MXC_SHIFT) & 7
        category = CATEGORY_ORDER[(key >> _CAT_SHIFT) & 7]
        shape_a = _shape_of_key(key, 0)
        shape_b = _shape_of_key(key, 1)
        verdict_a = verdict_of(shape_a)
        verdict_b = verdict_of(shape_b)
        pair = (verdict_a, verdict_b)
        domain_class = pair_memo.get(pair)
        if domain_class is None:
            domain_class = classify_two_scans(
                "representative.example", verdict_a, verdict_b
            ).domain_class
            pair_memo[pair] = domain_class
            representative_runs += 1
        total += members
        counts[domain_class] += members
        if verdict_a != verdict_b:
            flapped += members
        servers = mx_count if topology != TOPO_NO_MX else 0
        addresses = 0 if topology in (TOPO_NO_MX, TOPO_DANGLING) else mx_count
        servers_covered += servers * members
        addresses_covered += addresses * members
        if domain_class is _TRUTH_TO_CLASS[category]:
            confusion["correct"] += members
        else:
            confusion["wrong"] += members
        if domain_class is DomainClass.NOLISTING:
            nolisting_keys.append(key)

    nolisting_domains = _members_of(chunk, plan, packed, nolisting_keys)

    if counters is not None:
        counters.members += chunk.n
        counters.classes += len(cardinality)
        counters.representative_runs += representative_runs

    return {
        "total": int(total),
        "counts": {c.value: int(counts.get(c, 0)) for c in DomainClass},
        "flapped": int(flapped),
        "servers": int(servers_covered),
        "addresses": int(addresses_covered),
        "repaired": 0,  # no elision and no faults -> nothing to re-resolve
        "confusion": {k: int(v) for k, v in confusion.items()},
        "nolisting_domains": sorted(nolisting_domains),
    }


def _members_of(
    chunk: ColumnarChunk, plan: PopulationPlan, packed, keys: List[int]
) -> List[str]:
    """Names of the domains whose outcome key is in ``keys``."""
    if not keys:
        return []
    np = numpy_or_none()
    names: List[str] = []
    if np is not None and hasattr(packed, "astype"):
        mask = np.isin(packed, np.array(keys, dtype=np.int64))
        for i in np.nonzero(mask)[0]:
            names.append(plan.name_of(chunk.start + int(i)))
        return names
    wanted = set(keys)
    for i, key in enumerate(packed):
        if key in wanted:
            names.append(plan.name_of(chunk.start + i))
    return names


# ----------------------------------------------------------------------
# Streaming deployment columns (internet-scale experiment)
# ----------------------------------------------------------------------
#: Deployment codes in the internet-scale columns (the "policy fingerprint
#: id" column: each code maps to one connection-policy fingerprint).
DEPLOY_PLAIN = 0
DEPLOY_NOLISTED = 1
DEPLOY_GREYLISTED = 2


def stream_deployment_chunks(
    deploy_rng: RandomStream,
    num_domains: int,
    nolisting_rate: float,
    greylisting_rate: float,
    chunk_domains: int = 100_000,
) -> Iterator[Tuple[int, Any]]:
    """Stream the receiver internet's deployment column in bounded chunks.

    Draws continue ``deploy_rng``'s single sequential stream exactly as the
    object path's per-domain ``random()`` calls do (``random_block`` is
    draw-for-draw identical), then bins each chunk into deployment codes —
    vectorized under NumPy.  Yields ``(start_index, codes)``; the caller
    decides what to retain, so peak memory is one chunk regardless of
    ``num_domains``.
    """
    if chunk_domains < 1:
        raise ValueError("chunk_domains must be positive")
    np = numpy_or_none()
    boundary = nolisting_rate + greylisting_rate
    for start in range(0, num_domains, chunk_domains):
        n = min(chunk_domains, num_domains - start)
        block = deploy_rng.random_block(n)
        if np is not None:
            rolls = np.array(block)
            codes = np.where(
                rolls < nolisting_rate,
                DEPLOY_NOLISTED,
                np.where(rolls < boundary, DEPLOY_GREYLISTED, DEPLOY_PLAIN),
            ).astype(np.uint8)
        else:
            codes = array(
                "B",
                (
                    DEPLOY_NOLISTED
                    if roll < nolisting_rate
                    else (DEPLOY_GREYLISTED if roll < boundary else DEPLOY_PLAIN)
                    for roll in block
                ),
            )
        yield start, codes
