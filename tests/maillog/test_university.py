"""Tests for the synthetic university deployment (the Figure 5 substrate)."""

import pytest

from repro.greylist.whitelist import default_provider_whitelist
from repro.maillog.university import (
    DEFAULT_SENDER_MIX,
    DeploymentConfig,
    UniversityDeployment,
)


@pytest.fixture(scope="module")
def result():
    config = DeploymentConfig(num_messages=800, duration_days=120)
    return UniversityDeployment(config, seed=5).run()


class TestConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DeploymentConfig(threshold=-1)

    def test_rejects_zero_messages(self):
        with pytest.raises(ValueError):
            DeploymentConfig(num_messages=0)

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            DeploymentConfig(sender_mix=())

    def test_default_mix_weights_sum_to_one(self):
        assert sum(w for (_, w, _) in DEFAULT_SENDER_MIX) == pytest.approx(1.0)


class TestRunOutput:
    def test_one_log_per_message(self, result):
        assert len(result.logs) == 800

    def test_every_message_attempted_at_least_once(self, result):
        assert all(log.attempts >= 1 for log in result.logs)

    def test_most_messages_delivered(self, result):
        assert result.loss_rate < 0.10

    def test_non_retriers_lose_their_mail(self, result):
        no_retry = [log for log in result.logs if log.sender_kind == "no-retry"]
        assert no_retry
        assert all(not log.delivered for log in no_retry)

    def test_delivered_messages_need_at_least_two_attempts(self, result):
        # Nobody is whitelisted in the default config, so a single attempt
        # can never deliver.
        for log in result.delivered:
            assert log.attempts >= 2

    def test_delays_respect_threshold(self, result):
        for delay in result.delivery_delays():
            assert delay >= 300.0

    def test_kind_counts_cover_all_messages(self, result):
        assert sum(result.kind_counts.values()) == 800

    def test_deterministic(self):
        config = DeploymentConfig(num_messages=100)
        a = UniversityDeployment(config, seed=9).run()
        b = UniversityDeployment(config, seed=9).run()
        delays_a = sorted(a.delivery_delays())
        delays_b = sorted(b.delivery_delays())
        assert delays_a == delays_b


class TestFigure5Shape:
    def test_cdf_shape_matches_paper(self, result):
        delays = result.delivery_delays()
        n = len(delays)
        within_10min = sum(1 for d in delays if d <= 600) / n
        beyond_50min = sum(1 for d in delays if d > 3000) / n
        # "only half of the messages get delivered in less than 10 minutes"
        assert 0.35 <= within_10min <= 0.70
        # "some messages are delivered with over 50 minutes of delay"
        assert beyond_50min >= 0.03
        # "and some even beyond that"
        assert max(delays) > 7200

    def test_much_slower_than_malware_curve(self, result):
        # Figure 3 vs Figure 5: Kelihos passes a 300 s threshold mostly
        # within ~600 s; benign mail takes far longer on average.
        delays = sorted(result.delivery_delays())
        median = delays[len(delays) // 2]
        assert median > 400.0


class TestWhitelistAblation:
    def test_whitelisting_providers_removes_webmail_delay(self):
        config = DeploymentConfig(
            num_messages=400, whitelist=default_provider_whitelist()
        )
        result = UniversityDeployment(config, seed=5).run()
        webmail = [
            log
            for log in result.logs
            if log.sender_kind.startswith("webmail:") and log.delivered
        ]
        assert webmail
        # Whitelisted providers deliver on the first attempt: zero delay.
        assert all(log.delivery_delay == 0.0 for log in webmail)

    def test_threshold_zero_still_delays_one_round(self):
        config = DeploymentConfig(num_messages=200, threshold=0.0)
        result = UniversityDeployment(config, seed=5).run()
        for log in result.delivered:
            assert log.attempts >= 2
