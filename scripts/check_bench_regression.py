#!/usr/bin/env python
"""Compare a pytest-benchmark JSON snapshot against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_0.json bench-smoke.json

Benchmarks shared by both files are compared by their fastest observed
time (``stats.min``, the least noise-sensitive statistic).  Raw ratios
are meaningless across machines, so every ratio is first normalized by
the median ratio — a uniformly slower CI runner shifts all ratios
equally and cancels out, while a genuine regression in one benchmark
stands out against the rest.

Throughput floors are enforced too: benchmarks report their headline
rates (``decisions_per_sec``, ``domains_per_sec``, ``lookups_per_sec``)
in ``extra_info``, and a rate can erode while the timed statistic holds
— e.g. a serve benchmark whose timed section is fixed-duration keeps
its median forever while its decisions/sec collapses.  Each shared rate
is compared as ``baseline / current`` (higher is better, so the ratio
inverts), normalized by the same machine-speed scale, and gated by the
same threshold.  A rate that *disappears* from a shared benchmark is a
failure: deleting the floor is how it would silently erode.

The gate fails (exit 1) when any normalized ratio exceeds 1.25, i.e. a
benchmark got more than 25% slower *relative to the suite*.  To land an
intentional slowdown (e.g. trading speed for correctness), set
``ALLOW_BENCH_REGRESSION=1`` in the environment — the check then prints
its findings but always exits 0 — and refresh the baseline in the same
change (``make bench-json`` and commit the snapshot as ``BENCH_0.json``).

Stdlib-only, so it runs anywhere the repo does.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from typing import Dict, List, Sequence

THRESHOLD = 1.25

#: ``extra_info`` keys treated as throughput floors (higher is better).
THROUGHPUT_KEYS = ("decisions_per_sec", "domains_per_sec", "lookups_per_sec")


def load_minimums(path: str) -> Dict[str, float]:
    """Map benchmark fullname -> fastest observed time, from one snapshot."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: float(bench["stats"]["min"])
        for bench in data.get("benchmarks", [])
    }


def load_throughputs(path: str) -> Dict[str, Dict[str, float]]:
    """Map fullname -> {rate key: value} for the floors a snapshot reports."""
    with open(path) as handle:
        data = json.load(handle)
    rates: Dict[str, Dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info") or {}
        found = {
            key: float(extra[key])
            for key in THROUGHPUT_KEYS
            if key in extra and float(extra[key]) > 0
        }
        if found:
            rates[bench["fullname"]] = found
    return rates


def main(argv: Sequence[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    baseline = load_minimums(baseline_path)
    current = load_minimums(current_path)

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    for name in new:
        # A benchmark added since the baseline was captured has nothing to
        # regress against; note it and move on.  It joins the gate once the
        # baseline is refreshed (make bench-json, commit as BENCH_0.json).
        print(
            f"  {name}: not in baseline {baseline_path}; "
            f"skipped (new benchmark, no reference time)"
        )
    if not shared:
        print(
            f"no benchmarks shared between {baseline_path} and "
            f"{current_path}; nothing to compare",
            file=sys.stderr,
        )
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values())
    print(
        f"comparing {len(shared)} shared benchmark(s); "
        f"machine-speed scale (median ratio) = {scale:.3f}"
    )

    regressions: List[str] = []
    for name in shared:
        normalized = ratios[name] / scale
        marker = " <-- REGRESSION" if normalized > THRESHOLD else ""
        print(
            f"  {name}: {baseline[name] * 1e3:.3f}ms -> "
            f"{current[name] * 1e3:.3f}ms "
            f"(normalized x{normalized:.2f}){marker}"
        )
        if normalized > THRESHOLD:
            regressions.append(name)

    # Throughput floors: higher is better, so the regression ratio
    # inverts (baseline/current); the machine-speed scale still applies
    # — a uniformly slower runner produces uniformly lower rates.
    baseline_rates = load_throughputs(baseline_path)
    current_rates = load_throughputs(current_path)
    for name in sorted(set(baseline_rates) & set(current)):
        for key, floor in sorted(baseline_rates[name].items()):
            rate = current_rates.get(name, {}).get(key)
            if rate is None:
                print(
                    f"  {name}[{key}]: floor {floor:,.0f}/s dropped from "
                    f"the current snapshot <-- REGRESSION"
                )
                regressions.append(f"{name}[{key}]")
                continue
            normalized = (floor / rate) / scale
            marker = " <-- REGRESSION" if normalized > THRESHOLD else ""
            print(
                f"  {name}[{key}]: {floor:,.0f}/s -> {rate:,.0f}/s "
                f"(normalized x{normalized:.2f}){marker}"
            )
            if normalized > THRESHOLD:
                regressions.append(f"{name}[{key}]")

    if not regressions:
        print(
            f"OK: no benchmark more than {THRESHOLD - 1:.0%} over baseline"
        )
        return 0

    print(
        f"FAIL: {len(regressions)} benchmark(s) regressed more than "
        f"{THRESHOLD - 1:.0%} vs {baseline_path}: {', '.join(regressions)}",
        file=sys.stderr,
    )
    if os.environ.get("ALLOW_BENCH_REGRESSION"):
        print(
            "ALLOW_BENCH_REGRESSION is set; reporting only. "
            "Refresh BENCH_0.json in this change.",
            file=sys.stderr,
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
