"""Unit tests for retry schedules."""

import pytest

from repro.mta.schedule import (
    DAY,
    FixedIntervalSchedule,
    GeometricBackoffSchedule,
    GiveUpAfterSchedule,
    LinearBackoffSchedule,
    NoRetrySchedule,
    TableSchedule,
)


class TestFixedInterval:
    def test_constant_delay(self):
        schedule = FixedIntervalSchedule(interval=600)
        assert schedule.next_delay(1, 0) == 600
        assert schedule.next_delay(7, 3600) == 600

    def test_gives_up_at_queue_lifetime(self):
        schedule = FixedIntervalSchedule(interval=600, max_queue_time=1200)
        # A retry landing exactly on the lifetime is still made ...
        assert schedule.next_delay(2, 600) == 600
        # ... but one that would land past it is not.
        assert schedule.next_delay(3, 1200) is None

    def test_attempt_times(self):
        schedule = FixedIntervalSchedule(interval=600, max_queue_time=DAY)
        times = schedule.attempt_times(1800)
        assert times == [0.0, 600.0, 1200.0, 1800.0]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            FixedIntervalSchedule(interval=0)

    def test_attempt_exactly_at_max_queue_time_is_kept(self):
        # Table IV semantics: an MTA whose queue lifetime is 4 h still
        # makes the retry that lands exactly at the 4-hour mark — the
        # give-up comparison in ``_expired`` is strict (>), not >=.
        schedule = FixedIntervalSchedule(
            interval=3600, max_queue_time=4 * 3600
        )
        times = schedule.attempt_times(10 * 3600)
        assert times[-1] == 4 * 3600.0
        assert times == [0.0, 3600.0, 7200.0, 10800.0, 14400.0]
        # ... and the attempt after that is abandoned.
        assert schedule.next_delay(5, 4 * 3600.0) is None


class TestLinearBackoff:
    def test_growing_delays(self):
        schedule = LinearBackoffSchedule(base=100)
        assert schedule.next_delay(1, 0) == 100
        assert schedule.next_delay(2, 100) == 200
        assert schedule.next_delay(3, 300) == 300

    def test_cap(self):
        schedule = LinearBackoffSchedule(base=100, cap=250)
        assert schedule.next_delay(5, 0) == 250

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            LinearBackoffSchedule(base=100, cap=50)


class TestGeometricBackoff:
    def test_doubling(self):
        schedule = GeometricBackoffSchedule(base=100, factor=2.0)
        assert schedule.next_delay(1, 0) == 100
        assert schedule.next_delay(2, 0) == 200
        assert schedule.next_delay(4, 0) == 800

    def test_cap(self):
        schedule = GeometricBackoffSchedule(base=100, factor=2.0, cap=300)
        assert schedule.next_delay(10, 0) == 300

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            GeometricBackoffSchedule(base=100, factor=0.5)


class TestTableSchedule:
    def test_follows_explicit_ages(self):
        schedule = TableSchedule(ages=[300, 900, 1800])
        # Attempt 1 fails at age 0 -> next at 300.
        assert schedule.next_delay(1, 0) == 300
        # Attempt 2 fails at 300 -> next at 900.
        assert schedule.next_delay(2, 300) == 600
        assert schedule.next_delay(3, 900) == 900

    def test_repeat_last_gap(self):
        schedule = TableSchedule(ages=[300, 900], repeat_last=True)
        assert schedule.next_delay(3, 900) == 600  # 900 - 300
        assert schedule.next_delay(10, 5000) == 600

    def test_no_repeat_gives_up(self):
        schedule = TableSchedule(ages=[300, 900], repeat_last=False)
        assert schedule.next_delay(3, 900) is None

    def test_drift_falls_back_to_nominal_gap(self):
        schedule = TableSchedule(ages=[300, 900])
        # Attempt 2 fired late (age 400 > nominal 300): still positive delay.
        delay = schedule.next_delay(2, 400)
        assert delay is not None and delay > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TableSchedule(ages=[300, 200])
        with pytest.raises(ValueError):
            TableSchedule(ages=[300, 300])
        with pytest.raises(ValueError):
            TableSchedule(ages=[-1])

    def test_attempt_times_monotonic(self):
        schedule = TableSchedule(ages=[300, 900, 1800], max_queue_time=DAY)
        times = schedule.attempt_times(7200)
        assert times[0] == 0.0
        assert all(b > a for a, b in zip(times, times[1:]))


class TestWrappers:
    def test_give_up_after_caps_attempts(self):
        inner = FixedIntervalSchedule(interval=60, max_queue_time=DAY)
        schedule = GiveUpAfterSchedule(inner, max_attempts=3)
        assert schedule.next_delay(1, 0) == 60
        assert schedule.next_delay(2, 60) == 60
        assert schedule.next_delay(3, 120) is None

    def test_give_up_validation(self):
        with pytest.raises(ValueError):
            GiveUpAfterSchedule(FixedIntervalSchedule(interval=60), 0)

    def test_no_retry(self):
        schedule = NoRetrySchedule()
        assert schedule.next_delay(1, 0) is None
        assert schedule.attempt_times(DAY) == [0.0]
