"""Call-graph resolution features the serving layer's audit depends on.

The ASY001 rule can only audit what the call graph resolves.  The
daemon's whole decision path flows through ``self.attr.method()`` calls
(``self.chain.decide(...)``) and interface-annotated loop variables
(``plugin: PolicyPlugin``), so this file pins both halves:

* fixture tests for each typed-binding source the resolver understands
  (annotated ``self`` attributes, constructor assignments, annotated
  parameters, pre-annotated locals, string/Optional annotations);
* real-tree tests that the serve coroutines are audited as async
  entries and that the audit actually *sees through* to the plugin
  chain and the durable backends' blocking sinks.
"""

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.lint.analyze import run_graph_rules
from repro.analysis.lint.framework import load_contexts
from repro.analysis.lint.graph import Project


def project(sources):
    return Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )


def edges(proj, module_path, qualname):
    node = proj.nodes[(module_path, qualname)]
    return sorted({target for call in node.calls for target in call.targets})


class TestAttributeTypeResolution:
    def test_annotated_self_attribute(self):
        proj = project(
            {
                "core/a.py": """\
                class Store:
                    def get(self):
                        pass

                class Engine:
                    def __init__(self, store):
                        self.store: Store = store

                    def step(self):
                        return self.store.get()
                """
            }
        )
        assert ("core/a.py", "Store.get") in edges(
            proj, "core/a.py", "Engine.step"
        )

    def test_constructor_assigned_self_attribute(self):
        proj = project(
            {
                "core/a.py": """\
                class Store:
                    def get(self):
                        pass

                class Engine:
                    def __init__(self):
                        self.store = Store()

                    def step(self):
                        return self.store.get()
                """
            }
        )
        assert ("core/a.py", "Store.get") in edges(
            proj, "core/a.py", "Engine.step"
        )

    def test_annotated_parameter_flows_to_attribute(self):
        # The PolicyServer idiom: ``__init__(self, chain: PluginChain)``
        # then ``self.chain = chain`` — calls through self.chain resolve.
        proj = project(
            {
                "core/a.py": """\
                class Chain:
                    def decide(self):
                        pass

                class Server:
                    def __init__(self, chain: Chain):
                        self.chain = chain

                    def handle(self):
                        return self.chain.decide()
                """
            }
        )
        assert ("core/a.py", "Chain.decide") in edges(
            proj, "core/a.py", "Server.handle"
        )

    def test_attribute_dispatch_includes_subclasses(self):
        # The attribute is typed as the base; the concrete object may be
        # any subclass, so overrides must be reachable.
        proj = project(
            {
                "core/base.py": """\
                class Backend:
                    def flush(self):
                        pass
                """,
                "core/impl.py": """\
                from repro.core.base import Backend

                class SqliteBackend(Backend):
                    def flush(self):
                        pass
                """,
                "core/server.py": """\
                from repro.core.base import Backend

                class Server:
                    def __init__(self, backend: Backend):
                        self.backend = backend

                    def stop(self):
                        self.backend.flush()
                """,
            }
        )
        targets = edges(proj, "core/server.py", "Server.stop")
        assert ("core/base.py", "Backend.flush") in targets
        assert ("core/impl.py", "SqliteBackend.flush") in targets

    def test_string_and_optional_annotations_resolve(self):
        proj = project(
            {
                "core/a.py": """\
                from typing import Optional

                class Store:
                    def get(self):
                        pass

                class A:
                    def __init__(self):
                        self.store: "Store" = Store()

                    def step(self):
                        return self.store.get()

                class B:
                    def __init__(self, store: Optional[Store]):
                        self.store = store

                    def step(self):
                        return self.store.get()
                """
            }
        )
        assert ("core/a.py", "Store.get") in edges(proj, "core/a.py", "A.step")
        assert ("core/a.py", "Store.get") in edges(proj, "core/a.py", "B.step")

    def test_container_annotation_does_not_bind(self):
        # ``List[Store]`` types the elements, not the name — calling a
        # method on the list must not be attributed to Store.
        proj = project(
            {
                "core/a.py": """\
                from typing import List

                class Store:
                    def get(self):
                        pass

                class Engine:
                    def __init__(self):
                        self.stores: List[Store] = []

                    def step(self):
                        return self.stores.get()
                """
            }
        )
        assert edges(proj, "core/a.py", "Engine.step") == []

    def test_unknown_attribute_produces_no_edge(self):
        proj = project(
            {
                "core/a.py": """\
                class Engine:
                    def __init__(self, thing):
                        self.thing = thing

                    def step(self):
                        return self.thing.run()
                """
            }
        )
        assert edges(proj, "core/a.py", "Engine.step") == []


class TestAnnotatedLocalDispatch:
    def test_pre_annotated_loop_variable_dispatches_to_subclasses(self):
        # The PluginChain idiom: ``plugin: Plugin`` before the loop types
        # the loop variable, so ``plugin.check()`` reaches every
        # subclass implementation.
        proj = project(
            {
                "core/a.py": """\
                class Plugin:
                    def check(self):
                        pass

                class Greylist(Plugin):
                    def check(self):
                        pass

                class Chain:
                    def __init__(self, plugins):
                        self.plugins = plugins

                    def decide(self):
                        plugin: Plugin
                        for plugin in self.plugins:
                            plugin.check()
                """
            }
        )
        targets = edges(proj, "core/a.py", "Chain.decide")
        assert ("core/a.py", "Plugin.check") in targets
        assert ("core/a.py", "Greylist.check") in targets

    def test_constructor_pinned_local_excludes_siblings(self):
        # ``x = Impl()`` pins the concrete class: sibling subclasses of
        # its base must NOT be dispatch candidates.
        proj = project(
            {
                "core/a.py": """\
                class Base:
                    def run(self):
                        pass

                class Impl(Base):
                    def run(self):
                        pass

                class Other(Base):
                    def run(self):
                        pass

                def entry():
                    x = Impl()
                    x.run()
                """
            }
        )
        targets = edges(proj, "core/a.py", "entry")
        assert ("core/a.py", "Impl.run") in targets
        assert ("core/a.py", "Other.run") not in targets

    def test_deep_attribute_chain_resolves_hop_by_hop(self):
        # ``self.policy.store.close()`` — each hop through a typed
        # attribute, dispatch on the final receiver.
        proj = project(
            {
                "core/a.py": """\
                class Store:
                    def close(self):
                        pass

                class Policy:
                    def __init__(self, store: Store):
                        self.store = store

                class Plugin:
                    def __init__(self, policy: Policy):
                        self.policy = policy

                    def shutdown(self):
                        self.policy.store.close()
                """
            }
        )
        assert ("core/a.py", "Store.close") in edges(
            proj, "core/a.py", "Plugin.shutdown"
        )

    def test_asy001_sees_through_attribute_call(self):
        # The audit the features exist for: an async handler calling
        # ``self.chain.decide()`` which hits a blocking sink.
        proj = project(
            {
                "policyd/server.py": """\
                import sqlite3

                class Chain:
                    def decide(self):
                        return sqlite3.connect("db")

                class Server:
                    def __init__(self, chain: Chain):
                        self.chain = chain

                    async def handle(self, request):
                        return self.chain.decide()
                """,
            }
        )
        result = run_graph_rules(proj)
        findings = [f for f in result.findings if f.rule == "ASY001"]
        assert len(findings) == 1
        assert "handle" in findings[0].message


# ----------------------------------------------------------------------
# Real tree: the serve layer is audited, not just auditable
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def real_project():
    contexts, errors = load_contexts([Path(repro.__file__).resolve().parent])
    assert errors == []
    return Project(contexts)


SERVE_COROUTINES = [
    ("serve/server.py", "PolicyServer.start"),
    ("serve/server.py", "PolicyServer.run_until_signalled"),
    ("serve/server.py", "PolicyServer.shutdown"),
    ("serve/server.py", "PolicyServer._flush_loop"),
    ("serve/server.py", "PolicyServer._handle_connection"),
]


def test_serve_coroutines_are_async_entries(real_project):
    for key in SERVE_COROUTINES:
        assert key in real_project.functions, key
        assert real_project.functions[key].is_async, key


def test_handler_reaches_the_policy_core(real_project):
    """ASY001's audit of the handler must see the real decision path:
    chain -> plugins -> policy -> store backends.  If any typed-binding
    link breaks, these keys drop out of the reachable set and the audit
    silently goes blind — this test is the canary."""
    parents = real_project.reachable_from(
        [("serve/server.py", "PolicyServer._handle_connection")]
    )
    for key in [
        ("serve/plugins.py", "PluginChain.decide"),
        ("serve/plugins.py", "GreylistingPlugin.check"),
        ("greylist/policy.py", "GreylistPolicy.on_rcpt_to"),
        ("greylist/store.py", "TripletStore.lookup"),
        ("greylist/backends.py", "SQLiteBackend.get"),
    ]:
        assert key in parents, f"{key} no longer reachable from the handler"


def test_shutdown_reaches_backend_flush(real_project):
    """The drain contract depends on shutdown flushing every backend."""
    parents = real_project.reachable_from(
        [("serve/server.py", "PolicyServer.shutdown")]
    )
    for key in [
        ("serve/plugins.py", "PluginChain.close"),
        ("greylist/backends.py", "SQLiteBackend.flush"),
        ("greylist/backends.py", "JournalBackend.flush"),
    ]:
        assert key in parents, f"{key} no longer reachable from shutdown"
