"""``CLK001`` — wall-clock reads inside simulation code.

The simulator runs on virtual time (:class:`repro.sim.clock.Clock`);
reading the host's clock anywhere in a result-producing path makes runs
unrepeatable and couples measured delays to machine speed.  The CLI
boundary (``cli.py`` / ``__main__.py``) is exempt — wall-clock output
like "run took 3.2s" is presentation, not measurement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext, dotted_name

#: ``(base, attr)`` call patterns that read the host clock.  Matching on
#: the final two components catches both ``time.time()`` and
#: ``datetime.datetime.now()`` spellings.
WALL_CLOCK_CALLS = frozenset(
    [
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    ]
)


class WallClockRead(Checker):
    rule_id = "CLK001"
    severity = Severity.ERROR
    description = (
        "wall-clock read in simulation code; use the virtual Clock "
        "(repro.sim.clock) — only the CLI may read host time"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and not ctx.is_cli

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[-2:] in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call `{'.'.join(chain)}()`; simulation code "
                    "must read time from the shared virtual Clock",
                    call=".".join(chain),
                )
