"""The sample registry (paper Table I).

The paper analysed 11 malware binaries across the four families.  Our
substitution is behavioural: each :class:`Sample` is an instance of its
family's behaviour model with a distinct (synthetic) hash and its own
randomness stream.  The paper's key observation — all samples of one family
share the same MX/retry behaviour ("we did not encounter any variations
inside the same family") — becomes a checkable property of this registry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from ..dns.resolver import StubResolver
from ..net.address import IPv4Address
from ..net.network import VirtualInternet
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from .bot import SpamBot
from .families import FAMILIES, FamilyProfile


def _synthetic_sha256(family: str, index: int) -> str:
    """A stable fake sample hash standing in for the VirusTotal hashes."""
    return hashlib.sha256(f"repro-sample:{family}:{index}".encode()).hexdigest()


@dataclass(frozen=True)
class Sample:
    """One malware binary from the collection phase."""

    family: FamilyProfile
    index: int           # 1-based within the family, as in Table II
    sha256: str

    @property
    def label(self) -> str:
        return f"{self.family.name}/sample{self.index}"

    def build_bot(
        self,
        internet: VirtualInternet,
        resolver: StubResolver,
        scheduler: EventScheduler,
        source_address: IPv4Address,
        rng: RandomStream,
    ) -> SpamBot:
        """Run this sample on an infected machine."""
        return self.family.build_bot(
            internet=internet,
            resolver=resolver,
            scheduler=scheduler,
            source_address=source_address,
            rng=rng.split(self.label),
        )


def collect_samples() -> List[Sample]:
    """Build the full 11-sample corpus of Table I / Table II."""
    samples: List[Sample] = []
    for family in FAMILIES:
        for index in range(1, family.sample_count + 1):
            samples.append(
                Sample(
                    family=family,
                    index=index,
                    sha256=_synthetic_sha256(family.name, index),
                )
            )
    return samples


def samples_of(family_name: str) -> List[Sample]:
    return [s for s in collect_samples() if s.family.name == family_name]


TOTAL_SAMPLE_COUNT = sum(f.sample_count for f in FAMILIES)
