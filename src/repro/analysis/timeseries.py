"""Time-binned series over event streams.

Sochor's long-term studies (cited as [31]-[33] by the paper) tracked
greylisting effectiveness across months and found it stable; the paper's
own university dataset spans four months.  This module provides the
binning machinery those analyses need: group timestamped events into
fixed-width windows and compute per-window rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

DAY = 86400.0
WEEK = 7 * DAY


@dataclass(frozen=True)
class TimeBin:
    """One window of a time series."""

    start: float
    end: float
    count: int
    matching: int

    @property
    def rate(self) -> Optional[float]:
        """Fraction of events in the bin satisfying the predicate."""
        if self.count == 0:
            return None
        return self.matching / self.count

    @property
    def midpoint(self) -> float:
        return (self.start + self.end) / 2.0


def bin_events(
    events: Iterable[T],
    timestamp: Callable[[T], float],
    predicate: Callable[[T], bool],
    bin_width: float = WEEK,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[TimeBin]:
    """Bin events into fixed windows and compute the predicate rate.

    ``start``/``end`` default to the observed extremes, snapped outward to
    whole bins.  Empty bins inside the range are kept (rate ``None``), so
    gaps are visible.
    """
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    items = [(timestamp(e), predicate(e)) for e in events]
    if not items:
        return []
    times = [t for t, _ in items]
    lo = start if start is not None else min(times)
    hi = end if end is not None else max(times)
    if hi < lo:
        raise ValueError("end before start")
    first_bin = int(lo // bin_width)
    last_bin = int(hi // bin_width)
    counts = [0] * (last_bin - first_bin + 1)
    matches = [0] * (last_bin - first_bin + 1)
    for t, ok in items:
        index = int(t // bin_width) - first_bin
        if 0 <= index < len(counts):
            counts[index] += 1
            if ok:
                matches[index] += 1
    return [
        TimeBin(
            start=(first_bin + i) * bin_width,
            end=(first_bin + i + 1) * bin_width,
            count=counts[i],
            matching=matches[i],
        )
        for i in range(len(counts))
    ]


def rate_series(bins: Sequence[TimeBin]) -> List[Tuple[float, float]]:
    """(midpoint, rate) pairs for non-empty bins."""
    return [(b.midpoint, b.rate) for b in bins if b.rate is not None]


def rate_stability(bins: Sequence[TimeBin]) -> Optional[float]:
    """Max minus min per-bin rate (0 = perfectly stable), ignoring empties.

    Sochor's finding — "the effectiveness of greylisting remained constant
    over the two years" — translates to a small stability value.
    """
    rates = [b.rate for b in bins if b.rate is not None]
    if not rates:
        return None
    return max(rates) - min(rates)
