"""Property tests: the columnar engine is bit-identical to object and batch.

The columnar pipeline (``engine="columnar"``) exists purely as a
performance optimization — parallel fixed-width columns instead of domain
objects, vectorized accounting instead of per-domain classification, a
streamed deployment column instead of a materialized list.  None of that
may show in any observable result, for any seed, profile, worker count,
fault plan or chunk size.  These tests pin that contract, mirroring
``test_batch_equivalence.py``.
"""

import pytest

from repro.core.adoption import run_adoption_experiment
from repro.core.internet_scale import run_internet_scale, sweep_deployment_rates
from repro.scan.profiles import profile_config


def _assert_adoption_equal(a, b):
    assert b.summary.counts == a.summary.counts
    assert b.summary.flapped == a.summary.flapped
    assert b.summary.total_domains == a.summary.total_domains
    assert b.summary.servers_covered == a.summary.servers_covered
    assert b.summary.addresses_covered == a.summary.addresses_covered
    assert b.confusion == a.confusion
    assert b.repaired_mx_records == a.repaired_mx_records
    assert b.crosscheck == a.crosscheck
    assert b.ground_truth == a.ground_truth


class TestAdoptionEquivalence:
    @pytest.mark.parametrize("num_domains", [100, 1000])
    def test_object_identical(self, num_domains):
        obj = run_adoption_experiment(
            num_domains=num_domains, seed=5, engine="object"
        )
        col = run_adoption_experiment(
            num_domains=num_domains, seed=5, engine="columnar"
        )
        _assert_adoption_equal(obj, col)

    def test_batch_identical_at_10k_vectorized(self):
        # glue_elision_rate=0 and no faults is the fully vectorized path
        # (no delegation to the batch replay) — compared against the batch
        # engine at a size the object path need not run at.
        kwargs = dict(num_domains=10_000, seed=13, glue_elision_rate=0.0)
        bat = run_adoption_experiment(engine="batch", **kwargs)
        col = run_adoption_experiment(engine="columnar", **kwargs)
        _assert_adoption_equal(bat, col)

    @pytest.mark.parametrize("fault_seed", [77, 3])
    def test_identical_under_fault_injection(self, fault_seed):
        # Faulted payloads delegate to the batch replay inside the
        # columnar shard; the delegation must be invisible.
        kwargs = dict(
            num_domains=600, seed=9, fault_rate=0.05, fault_seed=fault_seed
        )
        obj = run_adoption_experiment(engine="object", **kwargs)
        col = run_adoption_experiment(engine="columnar", **kwargs)
        _assert_adoption_equal(obj, col)

    @pytest.mark.parametrize(
        "profile", ["provider-consolidated", "dns-abuse"]
    )
    def test_identical_per_generator_profile(self, profile):
        config = profile_config(profile, num_domains=800)
        kwargs = dict(seed=21, config=config, plant_popular=False)
        obj = run_adoption_experiment(engine="object", **kwargs)
        col = run_adoption_experiment(engine="columnar", **kwargs)
        _assert_adoption_equal(obj, col)

    def test_identical_across_workers(self):
        runs = [
            run_adoption_experiment(
                num_domains=1000, seed=5, engine="columnar", workers=w
            )
            for w in (1, 2, 4)
        ]
        for other in runs[1:]:
            _assert_adoption_equal(runs[0], other)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_adoption_experiment(num_domains=60, engine="columnarx")


class TestInternetScaleEquivalence:
    @pytest.mark.parametrize("seed", [61, 7, 1234])
    @pytest.mark.parametrize(
        "grey,nolist", [(0.0, 0.0), (0.3, 0.1), (0.8, 0.2)]
    )
    def test_identical_across_rates_and_seeds(self, seed, grey, nolist):
        kwargs = dict(
            num_domains=60,
            greylisting_rate=grey,
            nolisting_rate=nolist,
            messages=200,
            seed=seed,
        )
        obj = run_internet_scale(engine="object", **kwargs)
        col = run_internet_scale(engine="columnar", **kwargs)
        assert col == obj

    @pytest.mark.parametrize("chunk_domains", [16, 100, 100_000])
    def test_identical_across_chunk_sizes(self, chunk_domains):
        # The streamed deployment column's chunk size is pure mechanics:
        # draws replay identically whatever the chunk boundaries.
        kwargs = dict(
            num_domains=300,
            greylisting_rate=0.5,
            nolisting_rate=0.1,
            messages=200,
            seed=61,
        )
        ref = run_internet_scale(engine="batch", **kwargs)
        col = run_internet_scale(
            engine="columnar", chunk_domains=chunk_domains, **kwargs
        )
        assert col == ref

    def test_sweep_identical_across_workers_and_engines(self):
        runs = [
            sweep_deployment_rates(
                messages=150, num_domains=200, seed=61, workers=w, engine=e
            )
            for w, e in ((1, "columnar"), (2, "columnar"), (4, "batch"))
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_internet_scale(num_domains=10, engine="turbo")
