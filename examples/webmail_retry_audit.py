#!/usr/bin/env python3
"""Webmail retry audit: regenerate Table III and explain each provider.

Plays all ten webmail provider models (measured retry schedules + IP-pool
behaviour) against a server greylisted at six hours with the stock provider
whitelist removed — the paper's §V.B experiment — and annotates each row
with what its outcome means for greylisting operators.

Run:  python examples/webmail_retry_audit.py
"""

from repro.analysis.tables import format_seconds
from repro.core.reports import table3_text
from repro.core.webmail_experiment import run_webmail_experiment
from repro.webmail.providers import PROVIDER_BY_NAME


def main() -> None:
    print("running all ten providers against a 6h greylisting threshold ...\n")
    rows = run_webmail_experiment()
    print(table3_text(rows))

    print("\nper-provider notes:")
    for row in rows:
        spec = PROVIDER_BY_NAME[row.provider]
        notes = []
        if not row.same_ip:
            notes.append(f"rotates {row.ip_pool_size} IPs (triplet resets)")
        if spec.gives_up:
            last = spec.attempt_age(spec.max_attempts)
            notes.append(
                f"gives up after {spec.max_attempts} attempts "
                f"(~{format_seconds(last)}) — RFC-822 wants 4-5 days"
            )
        if row.delivered:
            notes.append(
                f"delivered after {row.attempts} attempts, "
                f"{format_seconds(row.delivery_age)}"
            )
        else:
            notes.append("MESSAGE LOST at this threshold")
        print(f"  {row.provider:<12} {'; '.join(notes)}")

    lost = [r.provider for r in rows if not r.delivered]
    print(
        f"\n{len(lost)} provider(s) lose mail at a 6h threshold: "
        f"{', '.join(lost)}.\n"
        "This is why Postgrey ships a provider whitelist — and why the paper\n"
        "concludes whitelisting web-mail providers is fundamental (§VI)."
    )


if __name__ == "__main__":
    main()
