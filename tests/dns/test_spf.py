"""Unit tests for the SPF substrate and its SMTP policy."""

import pytest

from repro.dns.resolver import StubResolver
from repro.dns.spf import (
    SPFEvaluator,
    SPFResult,
    SPFSyntaxError,
    parse_spf,
    publish_spf,
)
from repro.dns.zone import ZoneStore
from repro.net.address import IPv4Address
from repro.smtp.spf_policy import SPFPolicy

AUTHORIZED = IPv4Address.parse("10.1.0.5")
STRANGER = IPv4Address.parse("203.0.113.9")


@pytest.fixture
def zones():
    store = ZoneStore()
    zone = store.create("sender.example")
    zone.add_a("sender.example", IPv4Address.parse("10.2.0.1"))
    zone.add_a("smtp.sender.example", IPv4Address.parse("10.3.0.1"))
    zone.add_mx(10, "smtp.sender.example")
    publish_spf(
        zone, "sender.example", "v=spf1 ip4:10.1.0.0/24 a mx -all"
    )
    return store


@pytest.fixture
def evaluator(zones):
    return SPFEvaluator(StubResolver(zones))


class TestParsing:
    def test_basic_record(self):
        record = parse_spf("x.net", "v=spf1 ip4:10.0.0.0/24 mx -all")
        assert [m.kind for m in record.mechanisms] == ["ip4", "mx", "all"]
        assert record.mechanisms[-1].qualifier is SPFResult.FAIL

    def test_qualifiers(self):
        record = parse_spf("x.net", "v=spf1 ~ip4:10.0.0.1 ?a +mx -all")
        assert record.mechanisms[0].qualifier is SPFResult.SOFTFAIL
        assert record.mechanisms[1].qualifier is SPFResult.NEUTRAL
        assert record.mechanisms[2].qualifier is SPFResult.PASS

    def test_bare_ip_gets_slash32(self):
        record = parse_spf("x.net", "v=spf1 ip4:10.0.0.1 -all")
        assert record.mechanisms[0].value == "10.0.0.1/32"

    def test_rejects_non_spf(self):
        with pytest.raises(SPFSyntaxError):
            parse_spf("x.net", "hello world")

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SPFSyntaxError):
            parse_spf("x.net", "v=spf1 include:other.net -all")

    def test_rejects_bad_network(self):
        with pytest.raises(SPFSyntaxError):
            parse_spf("x.net", "v=spf1 ip4:999.1.1.1 -all")

    def test_str_roundtrip(self):
        text = "v=spf1 ip4:10.0.0.0/24 mx -all"
        record = parse_spf("x.net", text)
        assert str(record) == text

    def test_publish_validates(self, zones):
        zone = zones.zone_for("sender.example")
        with pytest.raises(SPFSyntaxError):
            publish_spf(zone, "sender.example", "v=spf1 bogus")


class TestEvaluation:
    def test_ip4_pass(self, evaluator):
        assert evaluator.check(AUTHORIZED, "sender.example") is SPFResult.PASS

    def test_a_mechanism_pass(self, evaluator):
        assert (
            evaluator.check(IPv4Address.parse("10.2.0.1"), "sender.example")
            is SPFResult.PASS
        )

    def test_mx_mechanism_pass(self, evaluator):
        assert (
            evaluator.check(IPv4Address.parse("10.3.0.1"), "sender.example")
            is SPFResult.PASS
        )

    def test_stranger_fails(self, evaluator):
        assert evaluator.check(STRANGER, "sender.example") is SPFResult.FAIL

    def test_no_record_is_none(self, zones, evaluator):
        zones.create("nospf.example")
        assert evaluator.check(STRANGER, "nospf.example") is SPFResult.NONE

    def test_unknown_domain_is_none(self, evaluator):
        assert evaluator.check(STRANGER, "ghost.example") is SPFResult.NONE

    def test_softfail_policy(self, zones):
        zone = zones.create("soft.example")
        publish_spf(zone, "soft.example", "v=spf1 ip4:10.1.0.0/24 ~all")
        evaluator = SPFEvaluator(StubResolver(zones))
        assert evaluator.check(STRANGER, "soft.example") is SPFResult.SOFTFAIL

    def test_neutral_when_no_all(self, zones):
        zone = zones.create("open.example")
        publish_spf(zone, "open.example", "v=spf1 ip4:10.1.0.0/24")
        evaluator = SPFEvaluator(StubResolver(zones))
        assert evaluator.check(STRANGER, "open.example") is SPFResult.NEUTRAL

    def test_broken_record_permerror(self, zones):
        zone = zones.create("broken.example")
        zone.add_txt("broken.example", "v=spf1 include:x.net -all")
        evaluator = SPFEvaluator(StubResolver(zones))
        assert evaluator.check(STRANGER, "broken.example") is SPFResult.PERMERROR


class TestSPFPolicy:
    def test_fail_rejected_at_mail_from(self, evaluator):
        policy = SPFPolicy(evaluator)
        decision = policy.on_mail_from(STRANGER, "user@sender.example")
        assert not decision.accept
        assert decision.reply.code == 550
        assert policy.rejections == 1

    def test_pass_accepted(self, evaluator):
        policy = SPFPolicy(evaluator)
        assert policy.on_mail_from(AUTHORIZED, "user@sender.example").accept

    def test_none_accepted(self, evaluator):
        policy = SPFPolicy(evaluator)
        assert policy.on_mail_from(STRANGER, "user@unknown.example").accept

    def test_softfail_configurable(self, zones):
        zone = zones.create("soft.example")
        publish_spf(zone, "soft.example", "v=spf1 ip4:10.1.0.0/24 ~all")
        evaluator = SPFEvaluator(StubResolver(zones))
        lenient = SPFPolicy(evaluator, reject_softfail=False)
        strict = SPFPolicy(evaluator, reject_softfail=True)
        assert lenient.on_mail_from(STRANGER, "u@soft.example").accept
        assert not strict.on_mail_from(STRANGER, "u@soft.example").accept

    def test_result_counts(self, evaluator):
        policy = SPFPolicy(evaluator)
        policy.on_mail_from(AUTHORIZED, "u@sender.example")
        policy.on_mail_from(STRANGER, "u@sender.example")
        counts = policy.result_counts()
        assert counts[SPFResult.PASS] == 1
        assert counts[SPFResult.FAIL] == 1

    def test_spoofing_bot_blocked_composite(self, zones, evaluator):
        # A bot spoofing a protected domain from its own address is stopped
        # by SPF before greylisting even sees the triplet.
        from repro.greylist.policy import GreylistPolicy
        from repro.sim.clock import Clock
        from repro.smtp.server import CompositePolicy

        clock = Clock()
        greylist = GreylistPolicy(clock=clock, delay=300)
        composite = CompositePolicy([SPFPolicy(evaluator), greylist])
        decision = composite.on_mail_from(STRANGER, "ceo@sender.example")
        assert not decision.accept
        assert greylist.store.size == 0
