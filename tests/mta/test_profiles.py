"""Unit tests for the Table IV MTA profiles."""

import pytest

from repro.mta.profiles import (
    PROFILE_ORDER,
    PROFILES,
    RFC_MIN_GIVEUP_DAYS,
    build_profiles,
    rfc_compliant_lifetime,
)


class TestProfileTable:
    def test_all_six_mtas_present(self):
        assert set(PROFILE_ORDER) == {
            "sendmail",
            "exim",
            "postfix",
            "qmail",
            "courier",
            "exchange",
        }
        assert set(PROFILES) == set(PROFILE_ORDER)

    def test_build_profiles_fresh_copies(self):
        assert build_profiles() is not PROFILES

    def test_max_queue_days_match_paper(self):
        expected = {
            "sendmail": 5,
            "exim": 4,
            "postfix": 5,
            "qmail": 7,
            "courier": 7,
            "exchange": 2,
        }
        for name, days in expected.items():
            assert PROFILES[name].max_queue_days == days

    def test_exchange_is_the_only_rfc_violator(self):
        # "Exchange was the only MTA not RFC-822 compliant with respect to
        # the time-to-live."
        violators = [
            name
            for name in PROFILE_ORDER
            if not rfc_compliant_lifetime(PROFILES[name])
        ]
        assert violators == ["exchange"]

    def test_rfc_guidance_constant(self):
        assert RFC_MIN_GIVEUP_DAYS == 4.0


class TestScheduleShapes:
    def test_sendmail_regular_ten_minutes(self):
        minutes = PROFILES["sendmail"].retransmission_minutes()
        assert minutes[:6] == [10, 20, 30, 40, 50, 60]
        assert minutes[-1] == 600

    def test_exim_table(self):
        minutes = PROFILES["exim"].retransmission_minutes()
        assert minutes[:9] == [15, 30, 45, 60, 75, 90, 105, 120, 180]
        assert 405 in minutes

    def test_postfix_table(self):
        minutes = PROFILES["postfix"].retransmission_minutes()
        assert minutes[:7] == [5, 10, 15, 20, 25, 30, 45]
        assert minutes[-1] == 600

    def test_qmail_quadratic(self):
        minutes = PROFILES["qmail"].retransmission_minutes()
        # 400 * n^2 seconds = 6.67, 26.67, 60, 106.67 ... minutes
        assert minutes[0] == pytest.approx(6.67, abs=0.01)
        assert minutes[1] == pytest.approx(26.67, abs=0.01)
        assert minutes[2] == pytest.approx(60.0, abs=0.01)
        assert minutes[3] == pytest.approx(106.67, abs=0.01)

    def test_courier_clusters_of_three(self):
        minutes = PROFILES["courier"].retransmission_minutes()
        assert minutes[:6] == [5, 10, 15, 30, 35, 40]
        assert minutes[6:9] == [70, 75, 80]

    def test_exchange_fixed_fifteen(self):
        minutes = PROFILES["exchange"].retransmission_minutes()
        assert minutes[:4] == [15, 30, 45, 60]
        gaps = {round(b - a, 6) for a, b in zip(minutes, minutes[1:])}
        assert gaps == {15.0}

    def test_all_schedules_monotonic(self):
        for name in PROFILE_ORDER:
            minutes = PROFILES[name].retransmission_minutes()
            assert all(b > a for a, b in zip(minutes, minutes[1:])), name

    def test_all_schedules_have_entries_within_ten_hours(self):
        for name in PROFILE_ORDER:
            minutes = PROFILES[name].retransmission_minutes()
            assert minutes, name
            assert minutes[-1] <= 600.0, name
