"""RFC-compliant SMTP client.

The client walks the full delivery flow: resolve the recipient domain's MX
set in priority order (falling back to the implicit MX), connect to each
exchanger until one accepts the connection, then run the
HELO → MAIL → RCPT → DATA dialogue.  Per-envelope outcomes are returned as
:class:`AttemptResult` values the MTA queue manager acts on.

Bots reuse pieces of this client but override MX selection and retry logic
(see :mod:`repro.botnet`); that contrast — compliant client vs bot dialect —
is the mechanism both nolisting and greylisting exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..dns.mxutil import (
    MailExchanger,
    implicit_mx,
    resolve_exchangers,
    shuffle_equal_preferences,
)
from ..dns.resolver import DNSError, NXDomain, StubResolver
from ..net.address import IPv4Address
from ..net.host import (
    SMTP_PORT,
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
)
from ..net.network import VirtualInternet
from .message import Message
from .replies import Reply


class AttemptOutcome(enum.Enum):
    """How a single delivery attempt ended."""

    DELIVERED = "delivered"            # 250 after DATA
    DEFERRED = "deferred"              # 4yz anywhere — retry later
    BOUNCED = "bounced"                # 5yz anywhere — permanent failure
    NO_ROUTE = "no-route"              # every MX unreachable/refused
    DNS_FAILURE = "dns-failure"        # NXDOMAIN / SERVFAIL / no usable MX
    CONNECTION_RESET = "reset"         # session died mid-dialogue


@dataclass
class AttemptResult:
    """Outcome of one end-to-end delivery attempt for one envelope."""

    outcome: AttemptOutcome
    reply: Optional[Reply] = None
    exchanger: Optional[MailExchanger] = None
    attempts_log: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.outcome is AttemptOutcome.DELIVERED

    @property
    def should_retry(self) -> bool:
        """Transient failures and routing failures warrant a retry."""
        return self.outcome in (
            AttemptOutcome.DEFERRED,
            AttemptOutcome.NO_ROUTE,
            AttemptOutcome.CONNECTION_RESET,
        )


class SMTPClient:
    """A compliant sender bound to one source IP address."""

    def __init__(
        self,
        internet: VirtualInternet,
        resolver: StubResolver,
        source_address: IPv4Address,
        helo_name: str = "client.example.net",
        rng=None,
    ) -> None:
        self.internet = internet
        self.resolver = resolver
        self.source_address = source_address
        self.helo_name = helo_name
        #: When set, equal-preference MX groups are randomized per RFC 5321
        #: §5.1 ("the sender-SMTP MUST randomize them to spread the load").
        self.rng = rng

    # ------------------------------------------------------------------
    # MX candidate selection (override point for bots)
    # ------------------------------------------------------------------
    def candidate_exchangers(self, domain: str) -> List[MailExchanger]:
        """Resolve the ordered MX candidates for a recipient domain.

        RFC 5321: use the MX set ordered by preference; when the domain has
        no MX records, fall back to the implicit MX (the domain's A record).
        """
        try:
            exchangers = resolve_exchangers(self.resolver, domain)
        except NXDomain:
            return []
        except DNSError:
            return []
        if not exchangers:
            implicit = implicit_mx(self.resolver, domain)
            return [implicit] if implicit is not None else []
        usable = [mx for mx in exchangers if mx.resolvable]
        if self.rng is not None:
            usable = shuffle_equal_preferences(usable, self.rng)
        return usable

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(
        self,
        message: Message,
        recipient: str,
        source_override: Optional[IPv4Address] = None,
    ) -> AttemptResult:
        """Attempt to deliver ``message`` to ``recipient`` once.

        Walks the MX candidates in priority order, moving to the next host
        on connection failure (RFC 5321 §5.1: the client MUST try each
        address in order).  SMTP-level rejections terminate the walk: a
        server that answered authoritatively speaks for the domain.
        """
        source = source_override or self.source_address
        domain = recipient.rsplit("@", 1)[1]
        candidates = self.candidate_exchangers(domain)
        log: List[str] = []
        if not candidates:
            return AttemptResult(
                outcome=AttemptOutcome.DNS_FAILURE,
                attempts_log=[f"no usable MX for {domain}"],
            )
        saw_reset = False
        for exchanger in candidates:
            assert exchanger.address is not None
            try:
                connection = self.internet.connect(
                    source, exchanger.address, SMTP_PORT
                )
            except (ConnectionRefused, HostUnreachable) as exc:
                log.append(f"{exchanger.hostname}: {exc.__class__.__name__}")
                continue
            try:
                result = self._dialogue(connection.session, message, recipient)
            except ConnectionReset:
                # RFC 5321 §5.1: a connection failure means "try the next
                # address"; a mid-dialogue reset is treated the same way.
                connection.close()
                log.append(f"{exchanger.hostname}: ConnectionReset")
                saw_reset = True
                continue
            connection.close()
            result.exchanger = exchanger
            result.attempts_log = log + result.attempts_log
            return result
        outcome = (
            AttemptOutcome.CONNECTION_RESET
            if saw_reset
            else AttemptOutcome.NO_ROUTE
        )
        return AttemptResult(outcome=outcome, attempts_log=log)

    def _dialogue(
        self, session, message: Message, recipient: str
    ) -> AttemptResult:
        """Run the SMTP command sequence against an open session."""
        log: List[str] = [f"banner: {session.banner}"]
        if not session.banner.is_positive:
            outcome = (
                AttemptOutcome.DEFERRED
                if session.banner.is_transient_failure
                else AttemptOutcome.BOUNCED
            )
            return AttemptResult(outcome, session.banner, attempts_log=log)
        for step, reply in (
            ("ehlo", session.ehlo(self.helo_name)),
            ("mail", session.mail_from(message.sender)),
            ("rcpt", session.rcpt_to(recipient)),
        ):
            log.append(f"{step}: {reply}")
            if not reply.is_positive:
                session.quit()
                outcome = (
                    AttemptOutcome.DEFERRED
                    if reply.is_transient_failure
                    else AttemptOutcome.BOUNCED
                )
                return AttemptResult(outcome, reply, attempts_log=log)
        reply = session.data(message)
        log.append(f"data: {reply}")
        session.quit()
        if reply.is_positive:
            return AttemptResult(
                AttemptOutcome.DELIVERED, reply, attempts_log=log
            )
        outcome = (
            AttemptOutcome.DEFERRED
            if reply.is_transient_failure
            else AttemptOutcome.BOUNCED
        )
        return AttemptResult(outcome, reply, attempts_log=log)

    def __repr__(self) -> str:
        return f"SMTPClient(source={self.source_address}, helo={self.helo_name!r})"
