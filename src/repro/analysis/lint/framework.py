"""AST-walking framework for the determinism linter.

The linter enforces, by machine, the conventions that keep every
experiment in this repository bit-for-bit reproducible (see
``docs/ARCHITECTURE.md`` § *Determinism contract*).  It is deliberately
self-contained — standard library only — so it runs in CI and in the
leanest dev environment alike.

The moving parts:

* :class:`ModuleContext` — one parsed module plus the path helpers
  checkers use to scope themselves ("skip tests", "only hot packages");
* :class:`Checker` — base class; a checker owns one rule id and yields
  :class:`~repro.analysis.lint.findings.Finding` objects from an AST;
* :func:`lint_source` / :func:`lint_paths` — run a checker suite over a
  source string (unit tests) or a file tree (CLI and CI);
* inline suppression — a ``# repro: noqa RULE-ID`` comment on the
  offending line silences that rule there; ``# repro: noqa`` with no id
  silences every rule on the line.  Suppressions are counted, never
  silently dropped.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

#: Rule id reported for files the linter cannot parse at all.
PARSE_RULE = "PARSE"

_RULE_ID_RE = re.compile(r"[A-Z]+\d+")
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b:?(?P<rest>[^\n]*)")


def parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids.

    ``None`` means "all rules"; a set means only those ids.  Ids are read
    left-to-right from the comment until the first token that is not a
    rule id, so trailing prose is allowed::

        x = risky()  # repro: noqa ORD001 - sorted three lines below
    """
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for number, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules: Set[str] = set()
        for token in re.split(r"[,\s]+", match.group("rest").strip()):
            if not token:
                continue
            if _RULE_ID_RE.fullmatch(token):
                rules.add(token)
            else:
                break
        suppressions[number] = rules or None
    return suppressions


@dataclass
class ModuleContext:
    """One module as the checkers see it."""

    #: Path relative to the ``repro`` package root, POSIX-style
    #: (``"sim/rng.py"``), or a caller-chosen pseudo-path for snippets.
    module_path: str
    source: str
    tree: ast.AST
    #: Physical source lines (for suppression parsing and reporters).
    lines: List[str] = field(default_factory=list)
    #: Whether the module lives in a test tree (checkers commonly opt out).
    is_tests: bool = False
    #: Lazily-computed ``# repro: noqa`` map (see :func:`parse_noqa`).
    _noqa: Optional[Dict[int, Optional[Set[str]]]] = field(
        default=None, repr=False, compare=False
    )

    def suppressions(self) -> Dict[int, Optional[Set[str]]]:
        """The module's inline-suppression map, parsed once per context."""
        if self._noqa is None:
            self._noqa = parse_noqa(self.lines)
        return self._noqa

    # ------------------------------------------------------------------
    # Path predicates used by checkers to scope themselves
    # ------------------------------------------------------------------
    def in_package(self, *packages: str) -> bool:
        """True when the module lives under any of the given subpackages."""
        return any(
            self.module_path.startswith(package.rstrip("/") + "/")
            for package in packages
        )

    def is_module(self, *module_paths: str) -> bool:
        return self.module_path in module_paths

    @property
    def is_cli(self) -> bool:
        """The CLI boundary — the one place wall-clock reads are allowed."""
        name = self.module_path.rsplit("/", 1)[-1]
        return name in ("cli.py", "__main__.py")


class Checker:
    """Base class: one rule, one ``check`` generator.

    Subclasses set the class attributes and implement :meth:`check`.
    ``applies_to`` centralizes scoping so every checker handles test
    trees the same way.
    """

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    #: Most invariants constrain simulation code, not its tests.
    skip_tests: bool = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not (self.skip_tests and ctx.is_tests)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        **extra: object,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.module_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            message=message,
            extra=dict(extra) if extra else {},
        )


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    suppressed: int = 0
    files_checked: int = 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def default_checkers() -> List[Checker]:
    """The shipped checker suite (imported lazily to avoid cycles)."""
    from .checkers import all_checkers

    return all_checkers()


def _select(
    checkers: Iterable[Checker],
    select: Optional[Set[str]],
    ignore: Optional[Set[str]],
) -> List[Checker]:
    chosen = list(checkers)
    if select:
        chosen = [c for c in chosen if c.rule_id in select]
    if ignore:
        chosen = [c for c in chosen if c.rule_id not in ignore]
    return chosen


def context_from_source(
    source: str,
    module_path: str = "<snippet>",
    *,
    is_tests: bool = False,
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    """Parse one source string into a context, or a ``PARSE`` finding."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        finding = Finding(
            rule=PARSE_RULE,
            severity=Severity.ERROR,
            path=module_path,
            line=error.lineno or 0,
            col=error.offset or 0,
            message=f"could not parse module: {error.msg}",
        )
        return None, finding
    ctx = ModuleContext(
        module_path=module_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        is_tests=is_tests,
    )
    return ctx, None


def apply_noqa(
    findings: Sequence[Finding],
    suppressions: Dict[int, Optional[Set[str]]],
) -> Tuple[List[Finding], int]:
    """Filter findings against one module's inline-suppression map."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        rules = suppressions.get(finding.line, _MISSING)
        if rules is _MISSING:
            kept.append(finding)
        elif rules is None or finding.rule in rules:  # type: ignore[operator]
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_context(
    ctx: ModuleContext, checkers: Optional[Sequence[Checker]] = None
) -> LintResult:
    """Run the per-file checker suite over one pre-parsed module."""
    suite = list(checkers) if checkers is not None else default_checkers()
    raw: List[Finding] = []
    for checker in suite:
        if checker.applies_to(ctx):
            raw.extend(checker.check(ctx))
    kept, suppressed = apply_noqa(raw, ctx.suppressions())
    kept.sort(key=Finding.sort_key)
    return LintResult(findings=kept, suppressed=suppressed, files_checked=1)


def lint_source(
    source: str,
    module_path: str = "<snippet>",
    *,
    checkers: Optional[Sequence[Checker]] = None,
    is_tests: bool = False,
) -> LintResult:
    """Lint one source string (the unit-test entry point).

    ``module_path`` participates in checker scoping: pass e.g.
    ``"sim/rng.py"`` to exercise a checker's own-module exemption.
    """
    ctx, parse_finding = context_from_source(
        source, module_path, is_tests=is_tests
    )
    if ctx is None:
        assert parse_finding is not None
        return LintResult(findings=[parse_finding], files_checked=1)
    return lint_context(ctx, checkers)


_MISSING = object()


def module_path_for(path: Path) -> str:
    """Derive the package-relative path checkers scope on.

    The segment after the last ``repro`` directory is used, so absolute
    paths, ``src/repro/...`` and ``repro/...`` all normalize identically.
    Paths outside any ``repro`` tree (``tests/``, ``benchmarks/``,
    ``scripts/``) keep their invocation-relative POSIX path, so distinct
    files never collapse onto the same baseline identity.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            tail = parts[index + 1:]
            if tail:
                return "/".join(tail)
    if path.is_absolute():
        try:
            path = path.relative_to(Path.cwd())
        except ValueError:
            return path.name
    return path.as_posix()


def _is_test_path(path: Path) -> bool:
    if path.name.startswith("test_") or path.name.endswith("_test.py"):
        return True
    return any(part in ("tests", "test") for part in path.parts)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_context(
    file_path: Path,
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    """Read and parse one file into a context, or a ``PARSE`` finding."""
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        finding = Finding(
            rule=PARSE_RULE,
            severity=Severity.ERROR,
            path=str(file_path),
            line=0,
            col=0,
            message=f"could not read file: {error}",
        )
        return None, finding
    return context_from_source(
        source,
        module_path_for(file_path),
        is_tests=_is_test_path(file_path),
    )


def load_contexts(
    paths: Sequence[Path],
) -> Tuple[List[ModuleContext], List[Finding]]:
    """Parse every Python file under ``paths`` once, collecting errors."""
    contexts: List[ModuleContext] = []
    errors: List[Finding] = []
    for file_path in iter_python_files(paths):
        ctx, parse_finding = load_context(file_path)
        if ctx is not None:
            contexts.append(ctx)
        if parse_finding is not None:
            errors.append(parse_finding)
    return contexts, errors


def lint_paths(
    paths: Sequence[Path],
    *,
    checkers: Optional[Sequence[Checker]] = None,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; findings in path order."""
    suite = list(checkers) if checkers is not None else default_checkers()
    suite = _select(suite, select, ignore)
    contexts, errors = load_contexts(paths)
    findings: List[Finding] = list(errors)
    suppressed = 0
    for ctx in contexts:
        result = lint_context(ctx, suite)
        findings.extend(result.findings)
        suppressed += result.suppressed
    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(contexts) + len(errors),
    )


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Flatten ``a.b.c`` attribute chains into a name tuple, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None
