"""Tests for the adaptation sweep, dialect survey and long-term analysis."""

import pytest

from repro.core.adaptation import (
    BEHAVIOR_CLASSES,
    ecosystem_weights,
    measure_class_verdicts,
    obsolescence_level,
    sweep_adaptation,
)
from repro.core.dialect_survey import run_dialect_survey
from repro.core.longterm import run_longterm_analysis


class TestAdaptationSweep:
    @pytest.fixture(scope="class")
    def verdicts(self):
        return measure_class_verdicts()

    def test_class_verdicts_measured_not_assumed(self, verdicts):
        assert verdicts["naive"].blocked_by_greylisting
        assert verdicts["naive"].blocked_by_nolisting
        assert not verdicts["grey-adapted"].blocked_by_greylisting
        assert verdicts["grey-adapted"].blocked_by_nolisting
        assert verdicts["nolist-adapted"].blocked_by_greylisting
        assert not verdicts["nolist-adapted"].blocked_by_nolisting
        assert not verdicts["fully-adapted"].blocked_by_greylisting
        assert not verdicts["fully-adapted"].blocked_by_nolisting

    def test_four_behavior_classes(self):
        assert len(BEHAVIOR_CLASSES) == 4

    def test_weights_sum_to_one(self):
        for level in (0.0, 0.3, 1.0):
            weights = ecosystem_weights(level)
            assert sum(weights.values()) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ecosystem_weights(1.5)

    def test_coverage_decreases_with_adaptation(self):
        points = sweep_adaptation(levels=(0.0, 0.5, 1.0))
        combined = [p.combined_coverage for p in points]
        assert combined[0] == pytest.approx(1.0)
        assert combined == sorted(combined, reverse=True)
        assert combined[-1] == 0.0

    def test_status_quo_matches_2015_picture(self):
        # At zero full adaptation the combination still blocks everything
        # (the paper's 2015 finding), while each alone misses a chunk.
        point = sweep_adaptation(levels=(0.0,))[0]
        assert point.combined_coverage == pytest.approx(1.0)
        assert point.greylisting_coverage < 1.0
        assert point.nolisting_coverage < 1.0

    def test_obsolescence_level(self):
        points = sweep_adaptation(levels=(0.0, 0.25, 0.6, 1.0))
        level = obsolescence_level(points, floor=0.5)
        assert level == 0.6
        assert obsolescence_level(points, floor=0.0) == 1.0


class TestDialectSurvey:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dialect_survey(num_sessions=300, seed=29)

    def test_counts_consistent(self, result):
        assert result.sessions == 300
        assert (
            result.true_positives
            + result.false_positives
            + result.false_negatives
            + result.true_negatives
            == 300
        )
        assert sum(result.dialect_histogram.values()) == 300

    def test_attribution_is_perfect_on_known_dialects(self, result):
        # All four dialects have distinct wire features.
        assert result.attribution_accuracy == 1.0

    def test_no_false_positives_on_clean_mtas(self, result):
        assert result.false_positives == 0
        assert result.precision == 1.0

    def test_recall_imperfect_because_darkmailer_speaks_well(self, result):
        # Darkmailer's near-compliant dialect slips under the bot
        # threshold: wire manners alone cannot catch everyone.
        assert 0.5 < result.recall < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_dialect_survey(num_sessions=0)


class TestLongTermAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return run_longterm_analysis(num_messages=1200, duration_days=120)

    def test_covers_the_full_window(self, result):
        # ~17 weeks of data, all with traffic.
        assert result.weeks_observed >= 16

    def test_delivery_rate_stable_over_time(self, result):
        # Sochor-style finding: on a stationary mix the weekly delivery
        # rate barely moves.
        assert result.delivery_stability is not None
        assert result.delivery_stability < 0.15

    def test_delivery_and_loss_complement(self, result):
        for delivered, lost in zip(result.weekly_delivery, result.weekly_loss):
            assert delivered.count == lost.count  # same events, two predicates
            if delivered.count:
                assert delivered.matching + lost.matching == delivered.count
