"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(sub.choices) == {
            "adoption",
            "internet-scale",
            "defenses",
            "webmail",
            "mta-survey",
            "kelihos",
            "deployment",
            "synergy",
            "adaptation",
            "dialects",
            "variants",
            "filter",
            "serve",
            "serve-load",
            "scorecard",
        }

    def test_profile_flags_parsed(self):
        args = build_parser().parse_args(
            ["--profile", "--profile-out", "out.prof", "adoption"]
        )
        assert args.profile is True
        assert args.profile_out == "out.prof"

    def test_profile_defaults_off(self):
        args = build_parser().parse_args(["adoption"])
        assert args.profile is False
        assert args.profile_out is None

    def test_engine_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adoption", "--engine", "warp"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["--fault-rate", "0.05", "--fault-seed", "9", "adoption"]
        )
        assert args.fault_rate == 0.05
        assert args.fault_seed == 9

    def test_fault_rate_defaults_off(self):
        args = build_parser().parse_args(["adoption"])
        assert args.fault_rate == 0.0
        assert args.fault_seed is None

    def test_fault_rate_out_of_range_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--fault-rate", "1.5", "adoption"])


class TestCommands:
    def test_mta_survey(self, capsys):
        assert main(["mta-survey"]) == 0
        out = capsys.readouterr().out
        assert "sendmail" in out and "exchange" in out

    def test_webmail_small_threshold(self, capsys):
        assert main(["webmail", "--threshold", "300"]) == 0
        out = capsys.readouterr().out
        assert "gmail.com" in out

    def test_kelihos_default_threshold(self, capsys):
        assert main(["kelihos", "--messages", "20"]) == 0
        out = capsys.readouterr().out
        assert "CDF" in out

    def test_kelihos_long_threshold_prints_figure4(self, capsys):
        assert main(["kelihos", "--threshold", "21600", "--messages", "10"]) == 0
        out = capsys.readouterr().out
        assert "retransmission" in out

    def test_deployment(self, capsys):
        assert main(["deployment", "--messages", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "delivered" in out

    def test_adoption(self, capsys):
        assert main(["--seed", "42", "adoption", "--domains", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Using nolisting" in out

    def test_adoption_with_faults(self, capsys):
        assert (
            main(
                [
                    "--seed",
                    "42",
                    "--fault-rate",
                    "0.02",
                    "adoption",
                    "--domains",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Using nolisting" in out

    def test_adoption_batch_engine_matches_object(self, capsys):
        assert main(["--seed", "42", "adoption", "--domains", "1000"]) == 0
        object_out = capsys.readouterr().out
        assert (
            main(
                [
                    "--seed",
                    "42",
                    "adoption",
                    "--domains",
                    "1000",
                    "--engine",
                    "batch",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == object_out

    def test_internet_scale(self, capsys):
        assert main(["internet-scale", "--domains", "5000", "--messages", "200"]) == 0
        out = capsys.readouterr().out
        assert "Greylisting" in out and "batch engine" in out

    def test_profile_report_on_stderr(self, capsys):
        assert main(["--profile", "mta-survey"]) == 0
        captured = capsys.readouterr()
        assert "sendmail" in captured.out
        assert "cumulative" in captured.err

    def test_profile_out_writes_stats(self, capsys, tmp_path):
        target = tmp_path / "run.prof"
        assert main(["--profile-out", str(target), "mta-survey"]) == 0
        capsys.readouterr()
        assert target.exists() and target.stat().st_size > 0

    def test_defenses(self, capsys):
        assert main(["defenses", "--recipients", "2"]) == 0
        out = capsys.readouterr().out
        assert "Kelihos/sample1" in out
        assert "both combined" in out

    def test_synergy(self, capsys):
        assert main(["synergy"]) == 0
        out = capsys.readouterr().out
        assert "both" in out

    def test_adaptation(self, capsys):
        assert main(["adaptation"]) == 0
        out = capsys.readouterr().out
        assert "Combined" in out

    def test_dialects(self, capsys):
        assert main(["dialects", "--sessions", "100"]) == 0
        out = capsys.readouterr().out
        assert "bot precision" in out

    def test_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "full-triplet" in out

    def test_filter(self, capsys):
        assert main(["filter"]) == 0
        out = capsys.readouterr().out
        assert "post-acceptance" in out
