"""Tests for the Figure 5 deployment experiment, the §VI coverage headline
and the textual table/figure reproductions."""

import pytest

from repro.core.adoption import run_adoption_experiment
from repro.core.coverage import (
    PAPER_COMBINED_GLOBAL_SHARE,
    build_coverage_report,
)
from repro.core.defense_matrix import build_defense_matrix
from repro.core.deployment import run_deployment_experiment
from repro.core.greylist_experiment import run_kelihos_threshold_sweep
from repro.core.mta_survey import run_mta_survey
from repro.core.reports import (
    figure2_text,
    figure3_text,
    figure4_text,
    figure5_text,
    table1_text,
    table2_text,
    table3_text,
    table4_text,
)
from repro.core.webmail_experiment import run_webmail_experiment
from repro.greylist.whitelist import default_provider_whitelist


@pytest.fixture(scope="module")
def deployment():
    return run_deployment_experiment(num_messages=1000)


class TestDeploymentExperiment:
    def test_figure5_shape(self, deployment):
        cdf = deployment.delay_cdf()
        # Figure 5's headline: only ~half of benign mail within 10 minutes.
        assert 0.35 <= cdf.at(600.0) <= 0.70
        # Tail beyond 50 minutes exists ("and some even beyond that").
        assert cdf.at(3000.0) < 0.97
        assert cdf.max > 7200.0

    def test_all_delays_at_least_threshold(self, deployment):
        assert min(deployment.delays) >= deployment.threshold

    def test_counts_consistent(self, deployment):
        assert deployment.delivered + deployment.lost == deployment.num_messages
        assert len(deployment.delays) == deployment.delivered

    def test_fraction_helper(self, deployment):
        assert deployment.fraction_delivered_within(600.0) == pytest.approx(
            deployment.delay_cdf().at(600.0)
        )

    def test_whitelist_reduces_delay(self):
        plain = run_deployment_experiment(num_messages=500, seed=5)
        whitelisted = run_deployment_experiment(
            num_messages=500, seed=5, whitelist=default_provider_whitelist()
        )
        # Whitelisting the webmail farms removes their huge delays.
        assert whitelisted.delay_cdf().mean < plain.delay_cdf().mean
        assert whitelisted.lost <= plain.lost


class TestCoverageHeadline:
    @pytest.fixture(scope="class")
    def report(self):
        matrix = build_defense_matrix(recipients=2)
        return build_coverage_report(matrix)

    def test_combined_covers_all_families(self, report):
        assert report.combined_covers_all_families

    def test_combined_share_is_paper_headline(self, report):
        # "over 70% of the world spam is prevented by using either one or
        # the other technique."
        assert report.combined_share == pytest.approx(
            PAPER_COMBINED_GLOBAL_SHARE, abs=0.005
        )
        assert report.combined_share > 0.70

    def test_greylisting_alone_beats_nolisting_alone(self, report):
        # Greylisting stops Cutwail+Darkmailers (~52% of botnet spam);
        # nolisting stops Kelihos (~36%).
        assert report.greylisting_share > report.nolisting_share
        assert report.greylisting_share == pytest.approx(
            (0.4690 + 0.0721 + 0.0258) * 0.76, abs=0.001
        )
        assert report.nolisting_share == pytest.approx(0.3633 * 0.76, abs=0.001)


class TestReports:
    def test_table1_text(self):
        text = table1_text()
        assert "Cutwail" in text and "46.90%" in text
        assert "Kelihos" in text and "36.33%" in text
        assert "70.69%" in text

    def test_table2_text(self):
        matrix = build_defense_matrix(recipients=2)
        text = table2_text(matrix)
        assert "Kelihos/sample6" in text
        lines = [line for line in text.splitlines() if "Kelihos/" in line]
        assert all("no" in line and "YES" in line for line in lines)

    def test_table3_text(self):
        text = table3_text(run_webmail_experiment())
        assert "gmail.com" in text
        assert "434:46" in text
        assert "no (7)" in text

    def test_table4_text(self):
        text = table4_text(run_mta_survey())
        assert "sendmail" in text and "qmail" in text
        assert "6.67" in text

    def test_figure2_text(self):
        result = run_adoption_experiment(num_domains=2000, seed=42)
        text = figure2_text(result)
        assert "One MX record" in text
        assert "Using nolisting" in text
        assert "top-15" in text

    def test_figure3_and_4_text(self):
        sweep = run_kelihos_threshold_sweep(num_messages=20)
        fig3 = figure3_text(sweep[1])
        assert "CDF" in fig3 and "Kelihos" in fig3
        fig4 = figure4_text(sweep[2])
        assert "failed" in fig4 and "delivered" in fig4

    def test_figure5_text(self, deployment):
        text = figure5_text(deployment.delay_cdf(), deployment.threshold)
        assert "Figure 5" in text
        assert "F(10min)" in text
