"""Unit tests for DNS records and zone storage."""

import pytest

from repro.dns.records import (
    ARecord,
    DNSRecordError,
    MXRecord,
    RecordType,
    TXTRecord,
    normalize_name,
)
from repro.dns.zone import Zone, ZoneStore
from repro.net.address import IPv4Address


def addr(text):
    return IPv4Address.parse(text)


class TestNormalizeName:
    def test_lowercases_and_strips_dot(self):
        assert normalize_name("Foo.NET.") == "foo.net"

    def test_rejects_empty(self):
        with pytest.raises(DNSRecordError):
            normalize_name("")

    def test_rejects_empty_label(self):
        with pytest.raises(DNSRecordError):
            normalize_name("foo..net")

    def test_rejects_oversized_label(self):
        with pytest.raises(DNSRecordError):
            normalize_name("x" * 64 + ".net")

    def test_rejects_oversized_name(self):
        with pytest.raises(DNSRecordError):
            normalize_name(".".join(["abcdef"] * 40))


class TestRecords:
    def test_a_record(self):
        record = ARecord("SMTP.foo.net", addr("1.2.3.4"))
        assert record.name == "smtp.foo.net"
        assert record.rtype is RecordType.A
        assert "1.2.3.4" in str(record)

    def test_mx_record(self):
        record = MXRecord("foo.net", 10, "smtp.FOO.net")
        assert record.exchange == "smtp.foo.net"
        assert record.rtype is RecordType.MX
        assert "MX 10" in str(record)

    def test_mx_preference_bounds(self):
        with pytest.raises(DNSRecordError):
            MXRecord("foo.net", -1, "smtp.foo.net")
        with pytest.raises(DNSRecordError):
            MXRecord("foo.net", 65536, "smtp.foo.net")

    def test_negative_ttl_rejected(self):
        with pytest.raises(DNSRecordError):
            ARecord("foo.net", addr("1.2.3.4"), ttl=-1)

    def test_txt_record(self):
        record = TXTRecord("foo.net", "hello")
        assert record.rtype is RecordType.TXT


class TestZone:
    def test_add_and_lookup(self):
        zone = Zone("foo.net")
        zone.add_a("smtp.foo.net", addr("1.2.3.4"))
        zone.add_mx(10, "smtp.foo.net")
        assert zone.a_records("smtp.foo.net")[0].address == addr("1.2.3.4")
        assert zone.mx_records()[0].preference == 10

    def test_rejects_out_of_zone_names(self):
        zone = Zone("foo.net")
        with pytest.raises(DNSRecordError):
            zone.add_a("smtp.bar.net", addr("1.2.3.4"))

    def test_apex_records_allowed(self):
        zone = Zone("foo.net")
        zone.add_a("foo.net", addr("1.2.3.4"))
        assert zone.a_records("foo.net")

    def test_multiple_mx_records(self):
        zone = Zone("foo.net")
        zone.add_mx(0, "smtp.foo.net")
        zone.add_mx(15, "smtp1.foo.net")
        assert len(zone.mx_records()) == 2

    def test_remove_mx(self):
        zone = Zone("foo.net")
        zone.add_mx(10, "smtp.foo.net")
        zone.remove_mx()
        assert zone.mx_records() == []

    def test_names_lists_owners(self):
        zone = Zone("foo.net")
        zone.add_a("smtp.foo.net", addr("1.2.3.4"))
        zone.add_mx(10, "smtp.foo.net")
        assert "smtp.foo.net" in zone.names()
        assert "foo.net" in zone.names()

    def test_all_records_iterates_everything(self):
        zone = Zone("foo.net")
        zone.add_a("smtp.foo.net", addr("1.2.3.4"))
        zone.add_mx(10, "smtp.foo.net")
        zone.add_txt("foo.net", "v=test")
        assert len(list(zone.all_records())) == 3


class TestZoneStore:
    def test_create_and_contains(self):
        store = ZoneStore()
        store.create("foo.net")
        assert "foo.net" in store
        assert "FOO.NET." in store

    def test_duplicate_create_rejected(self):
        store = ZoneStore()
        store.create("foo.net")
        with pytest.raises(DNSRecordError):
            store.create("foo.net")

    def test_get_or_create_idempotent(self):
        store = ZoneStore()
        a = store.get_or_create("foo.net")
        b = store.get_or_create("foo.net")
        assert a is b

    def test_zone_for_walks_suffixes(self):
        store = ZoneStore()
        zone = store.create("foo.net")
        assert store.zone_for("smtp.mail.foo.net") is zone
        assert store.zone_for("foo.net") is zone
        assert store.zone_for("bar.net") is None

    def test_most_specific_zone_wins(self):
        store = ZoneStore()
        parent = store.create("foo.net")
        child = store.create("sub.foo.net")
        assert store.zone_for("a.sub.foo.net") is child
        assert store.zone_for("b.foo.net") is parent

    def test_delete(self):
        store = ZoneStore()
        store.create("foo.net")
        store.delete("foo.net")
        assert "foo.net" not in store
