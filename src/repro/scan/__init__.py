"""Internet-scale scanning: population, zmap-style scans, nolisting detection."""

from .banner import (
    SOFTWARE_BY_NAME,
    SOFTWARE_PROFILES,
    BannerDataset,
    BannerGrabScanner,
    BannerRecord,
    HostSoftwareAssignment,
    SoftwareProfile,
    SoftwareSurvey,
    fingerprint_banner,
    survey_software,
)
from .alexa import (
    PAPER_NOLISTING_RANKS,
    PopularityCrossCheck,
    crosscheck_popularity,
    plant_popular_nolisting,
)
from .datasets import (
    DNSScanDataset,
    DomainObservation,
    MXObservation,
    ScanPair,
    SMTPScanDataset,
)
from .detect import (
    AdoptionSummary,
    DomainClass,
    DomainVerdict,
    NolistingDetector,
    SingleScanVerdict,
    classify_single_scan,
    classify_two_scans,
)
from .population import (
    FIGURE2_MIX,
    DomainCategory,
    DomainTruth,
    PopulationConfig,
    SyntheticInternet,
)
from .scanner import DNSScanner, SMTPScanner
from .serialize import (
    ScanFormatError,
    dump_dns_scan,
    dump_smtp_scan,
    load_dns_scan,
    load_smtp_scan,
)

__all__ = [
    "AdoptionSummary",
    "BannerDataset",
    "BannerGrabScanner",
    "BannerRecord",
    "HostSoftwareAssignment",
    "SOFTWARE_BY_NAME",
    "SOFTWARE_PROFILES",
    "SoftwareProfile",
    "SoftwareSurvey",
    "fingerprint_banner",
    "survey_software",
    "DNSScanDataset",
    "DNSScanner",
    "DomainCategory",
    "DomainClass",
    "DomainObservation",
    "DomainTruth",
    "DomainVerdict",
    "FIGURE2_MIX",
    "MXObservation",
    "NolistingDetector",
    "PAPER_NOLISTING_RANKS",
    "PopularityCrossCheck",
    "PopulationConfig",
    "ScanPair",
    "SingleScanVerdict",
    "SMTPScanDataset",
    "SMTPScanner",
    "ScanFormatError",
    "SyntheticInternet",
    "dump_dns_scan",
    "dump_smtp_scan",
    "load_dns_scan",
    "load_smtp_scan",
    "classify_single_scan",
    "classify_two_scans",
    "crosscheck_popularity",
    "plant_popular_nolisting",
]
