"""Postgrey-compatible greylisting policy.

Decision procedure for an incoming RCPT, per the Postgrey semantics the
paper's testbed used:

1. whitelisted client/sender → accept immediately;
2. unknown triplet → record it, defer with 450 ("Greylisted");
3. known triplet younger than the *delay threshold* → defer again (the
   attempt still refreshes last-seen, and counts);
4. known triplet at least ``delay`` old → accept, mark the triplet passed
   (auto-whitelisted for ``whitelist_lifetime``), and optionally promote the
   client to an IP-level auto-whitelist after ``auto_whitelist_clients``
   successful triplets (Postgrey ``--auto-whitelist-clients``).

The policy plugs into :class:`repro.smtp.server.SMTPServer` via the
``on_rcpt_to`` hook and records one :class:`GreylistEvent` per decision —
the anonymized attempt log of the university dataset is exactly a dump of
those events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..net.address import IPv4Address
from ..sim.clock import Clock
from ..smtp import replies
from ..smtp.server import ConnectionPolicy, PolicyDecision
from .keying import KeyStrategy, derive_key
from .store import TripletStore
from .triplet import Triplet
from .whitelist import Whitelist

#: Default Postgrey delay (seconds) — also the paper's university threshold.
DEFAULT_DELAY = 300.0


class GreylistAction(enum.Enum):
    """What the policy did with an attempt."""

    WHITELISTED = "whitelisted"          # static whitelist hit
    AUTO_WHITELISTED = "auto-whitelisted"  # client earned IP-level pass
    GREYLISTED_NEW = "greylisted-new"    # first sighting, deferred
    GREYLISTED_EARLY = "greylisted-early"  # retry before threshold, deferred
    PASSED = "passed"                    # retry after threshold, accepted
    PASSED_KNOWN = "passed-known"        # triplet already confirmed


@dataclass
class GreylistEvent:
    """One policy decision, as logged."""

    timestamp: float
    triplet: Triplet
    action: GreylistAction
    attempt_number: int
    triplet_age: float

    @property
    def deferred(self) -> bool:
        return self.action in (
            GreylistAction.GREYLISTED_NEW,
            GreylistAction.GREYLISTED_EARLY,
        )


class GreylistPolicy(ConnectionPolicy):
    """The greylisting pre-acceptance policy.

    Parameters
    ----------
    clock:
        Simulation clock.
    delay:
        The greylisting threshold in seconds (paper sweeps 5 / 300 / 21600).
    store:
        Triplet database; a fresh one is created if omitted.
    whitelist:
        Static whitelist (empty by default — the paper removed Postgrey's
        stock whitelist for the Table III experiment).
    network_prefix:
        When set (e.g. 24), triplets are keyed on the client's /prefix
        network instead of the exact address, tolerating provider IP pools.
        (Shorthand for ``key_strategy=CLIENT_NET_TRIPLET``.)
    auto_whitelist_clients:
        After this many *passed* triplets, the client IP skips greylisting
        entirely (0 disables, mirroring ``--auto-whitelist-clients=N``).
    key_strategy:
        Which greylisting variant to run (see
        :mod:`repro.greylist.keying`).  Defaults to the classic full
        triplet.
    store_backend / store_path:
        Storage backend for the triplet database when ``store`` is not
        given (``"memory"``/``"sqlite"``/``"journal"``, see
        :mod:`repro.greylist.backends`); ``store_path`` is the on-disk
        location for the durable backends.  All backends are bit-for-bit
        equivalent, so the choice is absent from :meth:`fingerprint`.
    """

    def __init__(
        self,
        clock: Clock,
        delay: float = DEFAULT_DELAY,
        store: Optional[TripletStore] = None,
        whitelist: Optional[Whitelist] = None,
        network_prefix: Optional[int] = None,
        auto_whitelist_clients: int = 0,
        key_strategy: KeyStrategy = KeyStrategy.FULL_TRIPLET,
        store_backend: str = "memory",
        store_path: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise ValueError("greylisting delay must be non-negative")
        if network_prefix is not None and not 0 <= network_prefix <= 32:
            raise ValueError(f"invalid network prefix {network_prefix}")
        if auto_whitelist_clients < 0:
            raise ValueError("auto_whitelist_clients must be >= 0")
        self.clock = clock
        self.delay = float(delay)
        if store is not None:
            self.store = store
        else:
            from .backends import create_backend

            self.store = TripletStore(
                clock, backend=create_backend(store_backend, store_path)
            )
        self.whitelist = whitelist if whitelist is not None else Whitelist()
        self.network_prefix = network_prefix
        self.auto_whitelist_clients = auto_whitelist_clients
        if network_prefix is not None and key_strategy is KeyStrategy.FULL_TRIPLET:
            key_strategy = KeyStrategy.CLIENT_NET_TRIPLET
        self.key_strategy = key_strategy
        self.events: List[GreylistEvent] = []
        self._client_passes: Dict[IPv4Address, int] = {}
        self._auto_whitelisted: Set[IPv4Address] = set()

    def fingerprint(self) -> tuple:
        """Decision-function identity for the session-outcome cache.

        Includes every knob that changes a reply: the delay threshold (the
        cache's "threshold bucket"), the keying variant, the network
        prefix and the auto-whitelist setting.  Store *contents* are
        deliberately absent — they are per-triplet state, which the batch
        engine encodes as the session's greylist phase (new/early/passed).
        """
        return (
            "greylist",
            self.delay,
            self.key_strategy.value,
            self.network_prefix,
            self.auto_whitelist_clients,
        )

    # ------------------------------------------------------------------
    # Key normalization
    # ------------------------------------------------------------------
    def _key(self, client: IPv4Address, sender: str, recipient: str) -> Triplet:
        return derive_key(
            self.key_strategy,
            client,
            sender,
            recipient,
            network_prefix=self.network_prefix or 24,
        )

    # ------------------------------------------------------------------
    # SMTP policy hook
    # ------------------------------------------------------------------
    def on_rcpt_to(
        self, client: IPv4Address, sender: str, recipient: str
    ) -> PolicyDecision:
        triplet = self._key(client, sender, recipient)
        now = self.clock.now

        if self.whitelist.matches(client, sender):
            self._log(triplet, GreylistAction.WHITELISTED, 0, 0.0)
            return PolicyDecision.ok()
        if client in self._auto_whitelisted:
            self._log(triplet, GreylistAction.AUTO_WHITELISTED, 0, 0.0)
            return PolicyDecision.ok()

        entry = self.store.observe(triplet)
        age = now - entry.first_seen

        if entry.passed:
            self._log(triplet, GreylistAction.PASSED_KNOWN, entry.attempts, age)
            return PolicyDecision.ok()

        if entry.attempts == 1:
            # Brand-new triplet: defer unconditionally (even with delay=0 a
            # second attempt is required — Postgrey semantics).
            self._log(triplet, GreylistAction.GREYLISTED_NEW, entry.attempts, age)
            return PolicyDecision.reject(replies.greylisted(self.delay))

        if age < self.delay:
            self._log(
                triplet, GreylistAction.GREYLISTED_EARLY, entry.attempts, age
            )
            return PolicyDecision.reject(
                replies.greylisted(self.delay - age)
            )

        self.store.mark_passed(triplet)
        self._log(triplet, GreylistAction.PASSED, entry.attempts, age)
        self._credit_client(client)
        return PolicyDecision.ok()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _credit_client(self, client: IPv4Address) -> None:
        if self.auto_whitelist_clients <= 0:
            return
        count = self._client_passes.get(client, 0) + 1
        self._client_passes[client] = count
        if count >= self.auto_whitelist_clients:
            self._auto_whitelisted.add(client)

    def _log(
        self,
        triplet: Triplet,
        action: GreylistAction,
        attempt_number: int,
        age: float,
    ) -> None:
        self.events.append(
            GreylistEvent(
                timestamp=self.clock.now,
                triplet=triplet,
                action=action,
                attempt_number=attempt_number,
                triplet_age=age,
            )
        )

    # ------------------------------------------------------------------
    # Introspection used by the analysis layer
    # ------------------------------------------------------------------
    def deferrals(self) -> List[GreylistEvent]:
        return [e for e in self.events if e.deferred]

    def passes(self) -> List[GreylistEvent]:
        return [
            e
            for e in self.events
            if e.action in (GreylistAction.PASSED, GreylistAction.PASSED_KNOWN)
        ]

    def pass_delay(self, triplet: Triplet) -> Optional[float]:
        """Time from first sighting to first PASS for a triplet, if any."""
        first_seen: Optional[float] = None
        for event in self.events:
            if event.triplet != triplet:
                continue
            if first_seen is None:
                first_seen = event.timestamp
            if event.action is GreylistAction.PASSED:
                return event.timestamp - first_seen
        return None

    def __repr__(self) -> str:
        return (
            f"GreylistPolicy(delay={self.delay}, events={len(self.events)}, "
            f"store={self.store.size})"
        )
