"""Framework behaviour: suppression, baseline, reporters, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    Finding,
    Severity,
    lint_paths,
    lint_source,
    render_human,
    render_json,
)
from repro.analysis.lint.baseline import BaselineError
from repro.analysis.lint.cli import main
from repro.analysis.lint.framework import PARSE_RULE, module_path_for

SNIPPET_WITH_SET_LOOP = """\
def walk(items):
    pending = set(items)
    for item in pending:
        print(item)
"""


def finding(rule="ORD001", path="core/example.py", line=3, message="msg"):
    return Finding(
        rule=rule,
        severity=Severity.WARNING,
        path=path,
        line=line,
        col=1,
        message=message,
    )


class TestNoqaSuppression:
    def test_rule_specific_noqa_suppresses(self):
        source = SNIPPET_WITH_SET_LOOP.replace(
            "for item in pending:",
            "for item in pending:  # repro: noqa ORD001",
        )
        result = lint_source(source, "core/example.py")
        assert result.findings == []
        assert result.suppressed == 1

    def test_noqa_with_trailing_prose(self):
        source = SNIPPET_WITH_SET_LOOP.replace(
            "for item in pending:",
            "for item in pending:  # repro: noqa ORD001 - sorted downstream",
        )
        result = lint_source(source, "core/example.py")
        assert result.findings == []
        assert result.suppressed == 1

    def test_bare_noqa_suppresses_everything(self):
        source = SNIPPET_WITH_SET_LOOP.replace(
            "for item in pending:",
            "for item in pending:  # repro: noqa",
        )
        result = lint_source(source, "core/example.py")
        assert result.findings == []
        assert result.suppressed == 1

    def test_other_rule_noqa_keeps_finding(self):
        source = SNIPPET_WITH_SET_LOOP.replace(
            "for item in pending:",
            "for item in pending:  # repro: noqa CLK001",
        )
        result = lint_source(source, "core/example.py")
        assert [f.rule for f in result.findings] == ["ORD001"]
        assert result.suppressed == 0

    def test_plain_python_noqa_is_not_ours(self):
        source = SNIPPET_WITH_SET_LOOP.replace(
            "for item in pending:",
            "for item in pending:  # noqa",
        )
        result = lint_source(source, "core/example.py")
        assert [f.rule for f in result.findings] == ["ORD001"]


class TestParseFailure:
    def test_syntax_error_becomes_parse_finding(self):
        result = lint_source("def broken(:\n", "core/broken.py")
        assert [f.rule for f in result.findings] == [PARSE_RULE]
        assert result.findings[0].severity is Severity.ERROR


class TestBaseline:
    def test_split_partitions_new_and_known(self):
        known = finding(message="old")
        fresh = finding(message="new")
        baseline = Baseline.from_findings([known])
        new, grandfathered = baseline.split([known, fresh])
        assert new == [fresh]
        assert grandfathered == [known]

    def test_multiset_semantics(self):
        f = finding()
        baseline = Baseline.from_findings([f, f])
        new, grandfathered = baseline.split([f, f, f])
        assert len(grandfathered) == 2
        assert len(new) == 1

    def test_line_number_shift_still_grandfathered(self):
        baseline = Baseline.from_findings([finding(line=3)])
        new, grandfathered = baseline.split([finding(line=90)])
        assert new == []
        assert len(grandfathered) == 1

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings([finding(), finding(), finding(rule="CLK001")])
        baseline.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert len(loaded) == 3

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)


class TestReporters:
    def test_human_report_lists_location_and_summary(self):
        result = lint_source(SNIPPET_WITH_SET_LOOP, "core/example.py")
        text = render_human(
            result.findings, files_checked=result.files_checked
        )
        assert "core/example.py:3" in text
        assert "ORD001" in text
        assert "1 finding in 1 file" in text

    def test_human_report_counts_suppressions(self):
        text = render_human([], suppressed=2, files_checked=5)
        assert "0 findings in 5 files (2 suppressed inline)" in text

    def test_json_report_is_parseable(self):
        result = lint_source(SNIPPET_WITH_SET_LOOP, "core/example.py")
        document = json.loads(
            render_json(result.findings, files_checked=result.files_checked)
        )
        assert document["files_checked"] == 1
        assert document["findings"][0]["rule"] == "ORD001"
        assert document["findings"][0]["line"] == 3


class TestModulePaths:
    def test_src_layout_normalized(self):
        assert module_path_for(Path("src/repro/sim/rng.py")) == "sim/rng.py"

    def test_installed_layout_normalized(self):
        assert module_path_for(Path("repro/net/host.py")) == "net/host.py"

    def test_outside_tree_keeps_relative_path(self):
        # Distinct scripts/ files must not collapse onto one baseline
        # identity, so the invocation-relative path is preserved.
        assert module_path_for(Path("scripts/tool.py")) == "scripts/tool.py"


class TestLintPaths:
    def test_directory_walk_finds_violations(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import random\n")
        (package / "good.py").write_text("VALUE = 1\n")
        result = lint_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["RNG001"]
        assert result.findings[0].path == "core/bad.py"
        assert result.files_checked == 2

    def test_test_files_skipped_for_scoped_rules(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_thing.py").write_text("import random\n")
        result = lint_paths([tmp_path])
        assert result.findings == []


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violation_exits_one_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out
        assert "bad.py:1" in out

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad), "--select", "CLK001"]) == 0

    def test_ignore_skips_rule(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad), "--ignore", "RNG001"]) == 0

    def test_baseline_grandfathers_then_gates(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main([str(bad), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        assert "grandfathered" in capsys.readouterr().out
        bad.write_text("import random\nfrom random import choice\n")
        assert main([str(bad), "--baseline", str(baseline)]) == 1

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        assert main([str(bad), "--baseline", str(baseline)]) == 2

    def test_json_flag_emits_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"][0]["rule"] == "RNG001"

    def test_list_rules_mentions_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RNG001",
            "SEED001",
            "CLK001",
            "ORD001",
            "FLT001",
            "DEF001",
            "EXC001",
            "SLT001",
        ):
            assert rule in out
