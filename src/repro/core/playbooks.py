"""Session playbooks: one *real* SMTP dialogue per outcome class.

The batched experiment engines (:func:`repro.core.internet_scale.
run_internet_scale` and :func:`repro.core.synergy.run_synergy_experiment`
with ``engine="batch"``) replace per-message SMTP dialogues with
:class:`~repro.sim.batch.SessionPlaybook` lookups.  Each playbook is
produced here by driving the real server-side state machine
(:class:`~repro.smtp.server.SMTPSession` with real policy objects) through
the exact dialogue a bot speaks (:func:`repro.botnet.bot.drive_dialogue`)
— once per class, with the class cardinality applied arithmetically by the
caller.

A playbook cache key is ``(bot dialect, server policy fingerprint,
phase)``:

* the *dialect* is the family's HELO name — the only bot-side input the
  server dialogue depends on;
* the *policy fingerprint*
  (:meth:`repro.smtp.server.ConnectionPolicy.fingerprint`) pins the
  server's decision function, including the greylist threshold bucket;
* the *phase* captures the time/state-dependent part a fingerprint cannot:
  the triplet's greylist age class (``"new"`` / ``"early"`` / ``"passed"``)
  and, when a DNSBL is stacked in front, whether the client is currently
  ``"listed"`` or ``"unlisted"``.

Memoization over these keys is sound because every component is an outcome
determinant: two sessions agreeing on dialect, fingerprint and phase are
identical state machines fed identical inputs, so the first transcript is
every transcript.  Anything else — retry timing, triplet identity, which
draw produced the client — provably does not reach a policy decision
(triplets are keyed per message, and the policies consult only the inputs
encoded here).
"""

from __future__ import annotations

from typing import List, Optional

from ..blacklist.dnsbl import ReactiveBlacklist
from ..blacklist.policy import DNSBLPolicy
from ..botnet.bot import drive_dialogue
from ..greylist.policy import GreylistPolicy
from ..net.address import IPv4Address
from ..sim.batch import SessionPlaybook
from ..sim.clock import Clock
from ..smtp.message import Message
from ..smtp.server import CompositePolicy, ConnectionPolicy, SMTPServer

#: Greylist age classes a triplet can be in when an attempt arrives.
GREYLIST_PHASES = ("new", "early", "passed")

#: Representative endpoints for class dialogues.  Their concrete values
#: never reach a policy decision (greylist triplets are controlled via the
#: phase, the DNSBL via the ``listed`` flag), so one fixed pair serves
#: every class.
_CLIENT = IPv4Address(0xC6336464)  # 198.51.100.100
_RECIPIENT = "user@class.example"
_SENDER = "representative@botnet.example"


def build_playbook(
    helo_name: str,
    greylist_delay: Optional[float] = None,
    dnsbl: bool = False,
    listed: bool = False,
    greylist_phase: str = "new",
    store_backend: str = "memory",
) -> SessionPlaybook:
    """Drive one real session for a class and freeze it as a playbook.

    ``greylist_delay=None`` means no greylisting policy; otherwise the
    server greylists with that threshold and the dialogue arrives with its
    triplet in ``greylist_phase``.  ``dnsbl`` stacks a DNSBL policy in
    front (the synergy ordering), with the client pre-``listed`` or not.
    ``store_backend`` selects the greylist policy's triplet-store backend
    (:mod:`repro.greylist.backends`); backends are bit-for-bit
    equivalent, so it is deliberately absent from playbook cache keys.
    """
    if greylist_phase not in GREYLIST_PHASES:
        raise ValueError(f"unknown greylist phase {greylist_phase!r}")
    clock = Clock()
    policies: List[ConnectionPolicy] = []
    blacklist: Optional[ReactiveBlacklist] = None
    if dnsbl:
        # Threshold 1 / zero processing delay lets one report flip the
        # representative client to "listed" instantly; neither knob is
        # part of the DNSBL policy fingerprint.
        blacklist = ReactiveBlacklist(
            clock, detection_threshold=1, processing_delay=0.0
        )
        policies.append(DNSBLPolicy(blacklist, report_attempts=False))
    if greylist_delay is not None:
        policies.append(
            GreylistPolicy(
                clock=clock, delay=greylist_delay, store_backend=store_backend
            )
        )
    policy: Optional[ConnectionPolicy] = None
    if len(policies) == 1:
        policy = policies[0]
    elif policies:
        policy = CompositePolicy(policies)
    server = SMTPServer(
        hostname="smtp.class.example",
        clock=clock,
        policy=policy,
        local_domains=["class.example"],
    )
    message = Message(sender=_SENDER, recipients=[_RECIPIENT])

    def drive() -> tuple:
        session = server.session_factory(_CLIENT)
        return drive_dialogue(session, message, _RECIPIENT, helo_name)

    if greylist_delay is not None and greylist_phase != "new":
        # Plant the triplet at t=0, then age it into the requested phase.
        drive()
        if greylist_phase == "passed":
            clock.advance_by(greylist_delay)
        else:
            if greylist_delay <= 0:
                raise ValueError(
                    "an 'early' phase needs a positive greylist delay"
                )
            clock.advance_by(greylist_delay / 2)
    if listed:
        if blacklist is None:
            raise ValueError("listed phase needs dnsbl=True")
        blacklist.report(_CLIENT)

    outcome, reply_code, transcript = drive()
    return SessionPlaybook.make(
        outcome=outcome.value, reply_code=reply_code, transcript=transcript
    )
