"""Unit tests for the scan-dataset containers."""

import pytest

from repro.net.address import IPv4Address
from repro.scan.datasets import (
    DNSScanDataset,
    DomainObservation,
    MXObservation,
    ScanPair,
    SMTPScanDataset,
)


def addr(text):
    return IPv4Address.parse(text)


class TestDomainObservation:
    def test_sorted_mx_orders_by_preference_then_name(self):
        observation = DomainObservation(
            domain="d.example",
            mx=[
                MXObservation(20, "b.d.example", addr("1.1.1.2")),
                MXObservation(10, "z.d.example", addr("1.1.1.1")),
                MXObservation(20, "a.d.example", addr("1.1.1.3")),
            ],
        )
        ordered = observation.sorted_mx()
        assert [(r.preference, r.exchange) for r in ordered] == [
            (10, "z.d.example"),
            (20, "a.d.example"),
            (20, "b.d.example"),
        ]

    def test_unresolved_count(self):
        observation = DomainObservation(
            domain="d.example",
            mx=[
                MXObservation(10, "a.d.example", None),
                MXObservation(20, "b.d.example", addr("1.1.1.1")),
            ],
        )
        assert observation.unresolved_count == 1
        assert observation.has_mx

    def test_empty_observation(self):
        observation = DomainObservation(domain="d.example")
        assert not observation.has_mx
        assert observation.unresolved_count == 0


class TestDNSScanDataset:
    def test_add_get_iterate(self):
        dataset = DNSScanDataset(scan_index=0)
        dataset.add(DomainObservation(domain="a.example"))
        dataset.add(DomainObservation(domain="b.example"))
        assert dataset.num_domains == 2
        assert dataset.get("a.example") is not None
        assert dataset.get("ghost.example") is None
        assert {o.domain for o in dataset} == {"a.example", "b.example"}

    def test_add_replaces_same_domain(self):
        dataset = DNSScanDataset(scan_index=0)
        dataset.add(DomainObservation(domain="a.example"))
        dataset.add(DomainObservation(domain="a.example", nxdomain=True))
        assert dataset.num_domains == 1
        assert dataset.get("a.example").nxdomain

    def test_unresolved_totals(self):
        dataset = DNSScanDataset(scan_index=0)
        dataset.add(
            DomainObservation(
                domain="a.example",
                mx=[MXObservation(10, "mx.a.example", None)],
            )
        )
        assert dataset.num_unresolved_mx == 1


class TestSMTPScanDataset:
    def test_membership(self):
        dataset = SMTPScanDataset(scan_index=1)
        dataset.add(addr("1.1.1.1"))
        assert addr("1.1.1.1") in dataset
        assert addr("2.2.2.2") not in dataset
        assert dataset.num_listening == 1

    def test_duplicates_collapse(self):
        dataset = SMTPScanDataset(scan_index=1)
        dataset.add(addr("1.1.1.1"))
        dataset.add(addr("1.1.1.1"))
        assert dataset.num_listening == 1


class TestScanPair:
    def test_valid_pair(self):
        pair = ScanPair(
            dns=(DNSScanDataset(scan_index=0), DNSScanDataset(scan_index=1)),
            smtp=(SMTPScanDataset(scan_index=0), SMTPScanDataset(scan_index=1)),
        )
        assert pair.dns[0].scan_index != pair.dns[1].scan_index

    def test_same_index_rejected(self):
        with pytest.raises(ValueError):
            ScanPair(
                dns=(DNSScanDataset(scan_index=0), DNSScanDataset(scan_index=0)),
                smtp=(
                    SMTPScanDataset(scan_index=0),
                    SMTPScanDataset(scan_index=1),
                ),
            )
