"""MX-selection behaviour taxonomy (paper §IV.B).

The paper classifies spam bots by which of the target domain's mail
exchangers they contact:

* **RFC compliant** — walks all MX hosts in priority order (RFC 5321);
* **primary only** — contacts only the highest-priority MX (the behaviour
  nolisting exploits; Kelihos);
* **secondary only** — skips the primary entirely and goes straight to the
  lowest-priority MX (the anti-nolisting adaptation; Cutwail);
* **all MX** — contacts every MX in arbitrary order.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from ..dns.mxutil import MailExchanger
from ..sim.rng import RandomStream


class MXBehavior(enum.Enum):
    """How a sender chooses among a domain's MX hosts."""

    RFC_COMPLIANT = "rfc-compliant"
    PRIMARY_ONLY = "primary-only"
    SECONDARY_ONLY = "secondary-only"
    ALL_MX = "all-mx"


def select_targets(
    behavior: MXBehavior,
    exchangers: Sequence[MailExchanger],
    rng: Optional[RandomStream] = None,
) -> List[MailExchanger]:
    """Pick the exchanger(s) a sender with ``behavior`` will contact, in order.

    ``exchangers`` must already be sorted by ascending preference (use
    :func:`repro.dns.mxutil.resolve_exchangers`).  ``ALL_MX`` shuffles when
    an rng is supplied, otherwise keeps the resolved order — the paper notes
    all-MX bots use "a random or systematic order".
    """
    usable = [mx for mx in exchangers if mx.resolvable]
    if not usable:
        return []
    if behavior is MXBehavior.RFC_COMPLIANT:
        return list(usable)
    if behavior is MXBehavior.PRIMARY_ONLY:
        return [usable[0]]
    if behavior is MXBehavior.SECONDARY_ONLY:
        # "targets only the mail server with the lowest priority" — i.e. the
        # numerically highest preference value, last in sorted order.
        return [usable[-1]]
    if behavior is MXBehavior.ALL_MX:
        targets = list(usable)
        if rng is not None:
            rng.shuffle(targets)
        return targets
    raise ValueError(f"unknown behavior {behavior!r}")


def defeats_nolisting(behavior: MXBehavior) -> bool:
    """Would a sender with this MX behaviour get past nolisting?

    Nolisting's dead primary only stops senders that *exclusively* target
    the primary MX.  Compliant and all-MX senders fall through to the
    secondary; secondary-only senders never touch the primary at all.
    """
    return behavior is not MXBehavior.PRIMARY_ONLY
