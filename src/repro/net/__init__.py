"""Virtual network substrate: IPv4 addressing, hosts, ports and routing."""

from .address import (
    AddressError,
    AddressPool,
    IPv4Address,
    IPv4Network,
    pool_for,
)
from .host import (
    SMTP_PORT,
    Connection,
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    NetError,
    VirtualHost,
)
from .latency import FixedLatency, JitteredLatency, LatencyModel, ZeroLatency
from .network import VirtualInternet

__all__ = [
    "SMTP_PORT",
    "AddressError",
    "AddressPool",
    "Connection",
    "ConnectionRefused",
    "ConnectionReset",
    "FixedLatency",
    "HostUnreachable",
    "IPv4Address",
    "IPv4Network",
    "JitteredLatency",
    "LatencyModel",
    "NetError",
    "VirtualHost",
    "VirtualInternet",
    "ZeroLatency",
    "pool_for",
]
