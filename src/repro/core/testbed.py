"""The instrumented malware-analysis testbed (paper §III).

The paper's setup: two VMs — a victim mail server (Postfix, optionally
Postgrey) and an infected machine running one malware sample — with all the
sample's DNS MX requests intercepted and answered with records pointing at
the lab server.  Our testbed builds the equivalent on the simulator:

* a victim domain whose DNS/hosts are configured with the defence under
  test (none, nolisting, greylisting, or both);
* an :class:`~repro.smtp.server.SMTPServer` with full logging;
* optional *unprotected* control addresses that bypass greylisting — the
  trick the paper used to verify the bot ran a single spam task (§V.A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..dns.nolisting import setup_nolisting, setup_single_mx
from ..dns.resolver import StubResolver
from ..dns.zone import ZoneStore
from ..greylist.policy import GreylistPolicy
from ..greylist.whitelist import Whitelist
from ..net.address import AddressPool, IPv4Address, IPv4Network
from ..net.network import VirtualInternet
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..smtp.message import Envelope, Message
from ..smtp.server import ConnectionPolicy, PolicyDecision, SMTPServer


class Defense(enum.Enum):
    """The defence configurations the experiments compare."""

    NONE = "none"
    NOLISTING = "nolisting"
    GREYLISTING = "greylisting"
    BOTH = "both"


class ExemptingPolicy(ConnectionPolicy):
    """Wraps a policy but exempts specific recipients (e.g. postmaster).

    Exempt recipients accept mail unconditionally — the unprotected control
    mailboxes of §V.A.
    """

    def __init__(self, inner: ConnectionPolicy, exempt: Set[str]) -> None:
        self.inner = inner
        self.exempt = {address.lower() for address in exempt}

    def on_connect(self, client: IPv4Address) -> PolicyDecision:
        return self.inner.on_connect(client)

    def on_helo(self, client: IPv4Address, helo_name: str) -> PolicyDecision:
        return self.inner.on_helo(client, helo_name)

    def on_mail_from(self, client: IPv4Address, sender: str) -> PolicyDecision:
        return self.inner.on_mail_from(client, sender)

    def on_rcpt_to(
        self, client: IPv4Address, sender: str, recipient: str
    ) -> PolicyDecision:
        if recipient.lower() in self.exempt:
            return PolicyDecision.ok()
        return self.inner.on_rcpt_to(client, sender, recipient)

    def on_message(
        self, client: IPv4Address, envelope: Envelope, message: Message
    ) -> PolicyDecision:
        if envelope.recipient.lower() in self.exempt:
            return PolicyDecision.ok()
        return self.inner.on_message(client, envelope, message)


@dataclass
class TestbedConfig:
    """Parameters of a lab instance."""

    defense: Defense = Defense.NONE
    victim_domain: str = "victim.example"
    greylist_delay: float = 300.0
    greylist_whitelist: Optional[Whitelist] = None
    #: triplet-store backend for the greylist policy (memory/sqlite/journal)
    greylist_store_backend: str = "memory"
    #: on-disk location for a durable triplet store (None = volatile)
    greylist_store_path: Optional[str] = None
    #: recipients that bypass greylisting (the paper's control addresses)
    unprotected_recipients: Set[str] = field(default_factory=set)
    address_space: str = "192.0.2.0/24"
    bot_address_space: str = "198.51.100.0/24"


class Testbed:
    """One instantiated lab: simulator + victim domain + defence."""

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.scheduler = EventScheduler(Clock())
        self.clock = self.scheduler.clock
        self.zones = ZoneStore()
        self.resolver = StubResolver(self.zones, clock=self.clock)
        self.internet = VirtualInternet()
        self.server_pool = AddressPool(IPv4Network.parse(config.address_space))
        self.bot_pool = AddressPool(IPv4Network.parse(config.bot_address_space))

        self.greylist: Optional[GreylistPolicy] = None
        policy: ConnectionPolicy
        if config.defense in (Defense.GREYLISTING, Defense.BOTH):
            self.greylist = GreylistPolicy(
                clock=self.clock,
                delay=config.greylist_delay,
                whitelist=config.greylist_whitelist,
                store_backend=config.greylist_store_backend,
                store_path=config.greylist_store_path,
            )
            policy = self.greylist
        else:
            policy = ConnectionPolicy()
        if config.unprotected_recipients:
            policy = ExemptingPolicy(policy, config.unprotected_recipients)

        self.server = SMTPServer(
            hostname=f"smtp.{config.victim_domain}",
            clock=self.clock,
            policy=policy,
            local_domains=[config.victim_domain],
        )

        if config.defense in (Defense.NOLISTING, Defense.BOTH):
            self.domain_setup = setup_nolisting(
                self.internet,
                self.zones,
                self.server_pool,
                config.victim_domain,
                self.server.session_factory,
            )
        else:
            self.domain_setup = setup_single_mx(
                self.internet,
                self.zones,
                self.server_pool,
                config.victim_domain,
                self.server.session_factory,
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def allocate_bot_address(self) -> IPv4Address:
        return self.bot_pool.allocate()

    def run(self, horizon: float) -> None:
        """Advance the simulation to ``horizon`` seconds."""
        self.scheduler.run(until=horizon)

    def delivered_to(self, recipient: str) -> List[Message]:
        """Messages accepted for a specific recipient."""
        recipient = recipient.lower()
        return [
            message
            for message in self.server.mailbox
            if any(r.lower() == recipient for r in message.recipients)
        ]

    def spam_delivered_to_protected(self) -> int:
        """Accepted envelopes excluding the unprotected control addresses."""
        unprotected = {r.lower() for r in self.config.unprotected_recipients}
        return sum(
            1
            for record in self.server.log
            if record.accepted and record.recipient.lower() not in unprotected
        )

    def spam_delivered_to_unprotected(self) -> int:
        unprotected = {r.lower() for r in self.config.unprotected_recipients}
        return sum(
            1
            for record in self.server.log
            if record.accepted and record.recipient.lower() in unprotected
        )

    def campaign_ids_seen(self) -> Set[str]:
        """Distinct campaigns observed at the server (single-task check)."""
        return {
            record.campaign_id
            for record in self.server.log
            if record.campaign_id is not None
        }

    def __repr__(self) -> str:
        return (
            f"Testbed(defense={self.config.defense.value}, "
            f"domain={self.config.victim_domain!r})"
        )
