"""Unit tests for SMTP dialects and dialect fingerprinting."""

import pytest

from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp.dialects import (
    COMPLIANT_MTA,
    CUTWAIL_DIALECT,
    DIALECT_BY_NAME,
    KELIHOS_DIALECT,
    KNOWN_DIALECTS,
    DialectFingerprinter,
    DialectProfile,
    extract_features,
    play_dialect,
)
from repro.smtp.message import Message
from repro.smtp.server import SMTPServer

CLIENT = IPv4Address.parse("198.51.100.7")


def transcript_for(profile, recipient="u@victim.example"):
    clock = Clock()
    server = SMTPServer(hostname="smtp.victim.example", clock=clock)
    message = Message(sender="a@x.example", recipients=[recipient])
    return play_dialect(profile, server, clock, CLIENT, message, recipient), server


class TestDialectProfiles:
    def test_compliant_script(self):
        script = COMPLIANT_MTA.session_script(
            "mail.x.example", "a@x.example", "u@v.example"
        )
        assert script[0] == "EHLO mail.x.example"
        assert script[1] == "MAIL FROM:<a@x.example>"
        assert script[-1] == "QUIT"

    def test_cutwail_script_is_sloppy(self):
        script = CUTWAIL_DIALECT.session_script(
            "mail.x.example", "a@x.example", "u@v.example"
        )
        assert script[0] == "HELO mail"          # non-FQDN greeting
        assert script[1] == "MAIL FROM:a@x.example"  # no brackets
        assert "QUIT" not in script              # drops the connection

    def test_kelihos_script(self):
        script = KELIHOS_DIALECT.session_script(
            "bot.x.example", "a@x.example", "u@v.example"
        )
        assert script[0].startswith("HELO ")
        assert "QUIT" not in script

    def test_registry(self):
        assert len(KNOWN_DIALECTS) == 4
        assert DIALECT_BY_NAME["cutwail"] is CUTWAIL_DIALECT


class TestPlayDialect:
    def test_compliant_delivery_succeeds(self):
        transcript, server = transcript_for(COMPLIANT_MTA)
        assert server.stats.messages_accepted == 1
        assert transcript.ended_with_quit()

    def test_bot_dialect_still_delivers_on_open_server(self):
        transcript, server = transcript_for(CUTWAIL_DIALECT)
        # A plain server accepts sloppy-but-parseable commands.
        assert server.stats.messages_accepted == 1
        assert not transcript.ended_with_quit()


class TestFeatureExtraction:
    def test_compliant_features(self):
        transcript, _ = transcript_for(COMPLIANT_MTA)
        features = extract_features(transcript)
        assert features.used_ehlo
        assert features.helo_name_is_fqdn
        assert features.bracketed_paths
        assert features.quit_before_close
        assert features.malformed_lines == 0

    def test_cutwail_features(self):
        transcript, _ = transcript_for(CUTWAIL_DIALECT)
        features = extract_features(transcript)
        assert not features.used_ehlo
        assert not features.helo_name_is_fqdn
        assert not features.bracketed_paths
        assert not features.quit_before_close


class TestFingerprinting:
    @pytest.fixture
    def fingerprinter(self):
        return DialectFingerprinter()

    def test_each_dialect_attributed_to_itself(self, fingerprinter):
        for profile in KNOWN_DIALECTS:
            transcript, _ = transcript_for(profile)
            result = fingerprinter.classify(transcript)
            assert result.dialect == profile.name, profile.name
            assert result.score == 4

    def test_bot_likelihood_ordering(self, fingerprinter):
        clean, _ = transcript_for(COMPLIANT_MTA)
        dirty, _ = transcript_for(CUTWAIL_DIALECT)
        assert fingerprinter.classify(clean).bot_likelihood == 0.0
        assert fingerprinter.classify(dirty).bot_likelihood == 1.0
        assert not fingerprinter.classify(clean).looks_like_bot
        assert fingerprinter.classify(dirty).looks_like_bot

    def test_kelihos_mildly_bot_like(self, fingerprinter):
        transcript, _ = transcript_for(KELIHOS_DIALECT)
        result = fingerprinter.classify(transcript)
        # HELO + no QUIT = 2 deviations out of 4.
        assert result.bot_likelihood == pytest.approx(0.5)

    def test_classify_many_histogram(self, fingerprinter):
        transcripts = []
        for profile in (COMPLIANT_MTA, COMPLIANT_MTA, CUTWAIL_DIALECT):
            transcript, _ = transcript_for(profile)
            transcripts.append(transcript)
        counts = fingerprinter.classify_many(transcripts)
        assert counts == {"compliant-mta": 2, "cutwail": 1}

    def test_requires_dialects(self):
        with pytest.raises(ValueError):
            DialectFingerprinter([])

    def test_custom_dialect(self, fingerprinter):
        custom = DialectProfile(
            name="lazy", greeting_verb="HELO", sends_quit=True
        )
        transcript, _ = transcript_for(custom)
        result = DialectFingerprinter([custom, COMPLIANT_MTA]).classify(
            transcript
        )
        assert result.dialect == "lazy"
