"""Malware-adaptation sweep: when do the techniques become obsolete?

The paper's *Results Validity* section warns that "the effectiveness of
these two techniques can change in the future and it is important to know
when they will become obsolete because at that moment it will not be worth
paying the price anymore".  This experiment makes that question
quantitative: it sweeps hypothetical botnet ecosystems in which a growing
fraction of spam output has *adapted* — retrying through greylisting
and/or skipping the dead primary MX — and measures the coverage of each
defence (and the combination) at every point.

The verdicts per behaviour class are *measured* by running synthetic bots
with that behaviour against the defended testbeds, exactly like Table II;
only the ecosystem weights are hypothetical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..botnet.behavior import MXBehavior
from ..botnet.families import FamilyProfile
from ..botnet.retry import FireAndForget, kelihos_retry_model
from .defense_matrix import run_sample
from .testbed import Defense


def _synthetic_family(
    name: str, behavior: MXBehavior, retries: bool
) -> FamilyProfile:
    return FamilyProfile(
        name=name,
        mx_behavior=behavior,
        retry_factory=kelihos_retry_model if retries else FireAndForget,
        botnet_spam_share=0.0,  # weights come from the ecosystem model
        sample_count=1,
        walks_mx_on_failure=(behavior is MXBehavior.RFC_COMPLIANT),
    )


#: The four behaviour classes of the adaptation model.
NAIVE = _synthetic_family("naive", MXBehavior.PRIMARY_ONLY, retries=False)
GREY_ADAPTED = _synthetic_family(
    "grey-adapted", MXBehavior.PRIMARY_ONLY, retries=True
)
NOLIST_ADAPTED = _synthetic_family(
    "nolist-adapted", MXBehavior.SECONDARY_ONLY, retries=False
)
FULLY_ADAPTED = _synthetic_family(
    "fully-adapted", MXBehavior.SECONDARY_ONLY, retries=True
)

BEHAVIOR_CLASSES: Tuple[FamilyProfile, ...] = (
    NAIVE,
    GREY_ADAPTED,
    NOLIST_ADAPTED,
    FULLY_ADAPTED,
)


@dataclass(frozen=True)
class ClassVerdicts:
    """Measured blocked/not-blocked per defence for one behaviour class."""

    name: str
    blocked_by_greylisting: bool
    blocked_by_nolisting: bool

    @property
    def blocked_by_either(self) -> bool:
        return self.blocked_by_greylisting or self.blocked_by_nolisting


def measure_class_verdicts(seed: int = 17) -> Dict[str, ClassVerdicts]:
    """Run each behaviour class against both defences (Table II style)."""
    verdicts: Dict[str, ClassVerdicts] = {}
    for family in BEHAVIOR_CLASSES:
        # Wrap in a one-sample pseudo registry via run_sample's machinery.
        from ..botnet.samples import Sample

        sample = Sample(family=family, index=1, sha256="0" * 64)
        grey = run_sample(sample, Defense.GREYLISTING, seed=seed, recipients=2)
        nolist = run_sample(sample, Defense.NOLISTING, seed=seed, recipients=2)
        verdicts[family.name] = ClassVerdicts(
            name=family.name,
            blocked_by_greylisting=grey.blocked,
            blocked_by_nolisting=nolist.blocked,
        )
    return verdicts


@dataclass
class EcosystemPoint:
    """Coverage at one adaptation level."""

    adaptation: float                     # fraction of spam fully adapted
    weights: Dict[str, float]
    greylisting_coverage: float
    nolisting_coverage: float
    combined_coverage: float


def ecosystem_weights(adaptation: float) -> Dict[str, float]:
    """Spam-output weights of the four classes at adaptation level ``a``.

    At ``a = 0`` the ecosystem is the 2014 status quo abstracted: naive
    plus the two single-adaptation classes in the proportions the paper
    measured (Kelihos retries ~39 % of the adapted-ish mass, Cutwail skips
    the primary ~50 %, Darkmailers walk compliantly ~11 % — folded into
    nolist-adapted since walking also defeats nolisting).  As ``a`` grows,
    mass shifts into the fully-adapted class that defeats both defences.
    """
    if not 0.0 <= adaptation <= 1.0:
        raise ValueError("adaptation must lie in [0, 1]")
    base = {
        "naive": 0.05,
        "grey-adapted": 0.39,
        "nolist-adapted": 0.56,
    }
    weights = {
        name: weight * (1.0 - adaptation) for name, weight in base.items()
    }
    weights["fully-adapted"] = adaptation
    return weights


def sweep_adaptation(
    levels: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
    seed: int = 17,
) -> List[EcosystemPoint]:
    """Coverage of each defence across adaptation levels."""
    verdicts = measure_class_verdicts(seed=seed)
    points: List[EcosystemPoint] = []
    for level in levels:
        weights = ecosystem_weights(level)
        grey = sum(
            weight
            for name, weight in weights.items()
            if verdicts[name].blocked_by_greylisting
        )
        nolist = sum(
            weight
            for name, weight in weights.items()
            if verdicts[name].blocked_by_nolisting
        )
        combined = sum(
            weight
            for name, weight in weights.items()
            if verdicts[name].blocked_by_either
        )
        points.append(
            EcosystemPoint(
                adaptation=level,
                weights=weights,
                greylisting_coverage=grey,
                nolisting_coverage=nolist,
                combined_coverage=combined,
            )
        )
    return points


def obsolescence_level(
    points: Sequence[EcosystemPoint], floor: float = 0.5
) -> float:
    """First adaptation level where combined coverage drops below ``floor``.

    Returns 1.0 when coverage never falls that low within the sweep — the
    "not obsolete yet" answer.
    """
    for point in points:
        if point.combined_coverage < floor:
            return point.adaptation
    return 1.0
