"""Human and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .findings import Finding


def render_human(
    findings: Sequence[Finding],
    *,
    grandfathered: Sequence[Finding] = (),
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    """GCC-style ``file:line:col: RULE message`` listing plus a summary."""
    lines: List[str] = [str(finding) for finding in findings]
    total = len(findings)
    summary = (
        f"{total} finding{'s' if total != 1 else ''} "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    details: List[str] = []
    if grandfathered:
        details.append(f"{len(grandfathered)} grandfathered by baseline")
    if suppressed:
        details.append(f"{suppressed} suppressed inline")
    if details:
        summary += f" ({', '.join(details)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    grandfathered: Sequence[Finding] = (),
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    """Machine-readable report (one JSON document, stable key order)."""
    document: Dict[str, object] = {
        "files_checked": files_checked,
        "suppressed": suppressed,
        "findings": [finding.to_json() for finding in findings],
        "grandfathered": [finding.to_json() for finding in grandfathered],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rules(checkers: Sequence[object]) -> str:
    """The ``--list-rules`` table: id, severity, one-line description."""
    rows: List[str] = []
    for checker in checkers:
        rule = getattr(checker, "rule_id", "?")
        severity = getattr(checker, "severity", None)
        description: Optional[str] = getattr(checker, "description", None)
        rows.append(f"{rule:<8} {str(severity):<8} {description or ''}")
    return "\n".join(rows)
