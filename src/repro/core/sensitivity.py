"""Seed-sensitivity analysis of the headline reproductions.

A reproduction that only works at one magic seed is not a reproduction.
This harness re-runs the stochastic experiments across a seed sweep and
reports the spread of the quantities the paper's claims rest on:

* the Figure 2 adoption percentages;
* the Figure 5 benign-delay quantiles (with bootstrap CIs per run);
* the Table II family verdicts (which must be seed-invariant — they are
  behavioural, not statistical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.bootstrap import ConfidenceInterval, bootstrap_ci, median
from ..scan.detect import DomainClass
from .adoption import run_adoption_experiment
from .defense_matrix import build_defense_matrix
from .deployment import run_deployment_experiment
from .testbed import Defense

DEFAULT_SEEDS: Sequence[int] = (1, 2, 3, 5, 8)


@dataclass
class AdoptionSensitivity:
    """Figure 2 percentages across seeds."""

    seeds: List[int]
    nolisting_pct: List[float]
    one_mx_pct: List[float]
    misclassified: List[int]

    @property
    def nolisting_spread(self) -> float:
        return max(self.nolisting_pct) - min(self.nolisting_pct)


def adoption_sensitivity(
    seeds: Sequence[int] = DEFAULT_SEEDS, num_domains: int = 5000
) -> AdoptionSensitivity:
    result = AdoptionSensitivity(
        seeds=list(seeds), nolisting_pct=[], one_mx_pct=[], misclassified=[]
    )
    for seed in seeds:
        run = run_adoption_experiment(num_domains=num_domains, seed=seed)
        percentages = run.measured_percentages()
        result.nolisting_pct.append(percentages[DomainClass.NOLISTING])
        result.one_mx_pct.append(percentages[DomainClass.ONE_MX])
        result.misclassified.append(run.confusion["wrong"])
    return result


@dataclass
class DeploymentSensitivity:
    """Figure 5 medians across seeds, with per-run bootstrap CIs."""

    seeds: List[int]
    medians: List[float]
    median_cis: List[ConfidenceInterval] = field(default_factory=list)
    within_10min: List[float] = field(default_factory=list)

    @property
    def median_spread(self) -> float:
        return max(self.medians) - min(self.medians)


def deployment_sensitivity(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    num_messages: int = 800,
) -> DeploymentSensitivity:
    result = DeploymentSensitivity(seeds=list(seeds), medians=[])
    for seed in seeds:
        run = run_deployment_experiment(
            num_messages=num_messages, seed=seed
        )
        delays = run.delays
        result.medians.append(median(delays))
        result.median_cis.append(
            bootstrap_ci(delays, median, seed=seed, resamples=300)
        )
        result.within_10min.append(run.fraction_delivered_within(600.0))
    return result


def verdicts_seed_invariant(seeds: Sequence[int] = (3, 11, 23)) -> bool:
    """Table II verdicts must not depend on the seed."""
    reference: Dict[str, bool] = None
    for seed in seeds:
        matrix = build_defense_matrix(seed=seed, recipients=2)
        verdicts = {
            **{
                f"grey:{k}": v
                for k, v in matrix.family_verdicts(Defense.GREYLISTING).items()
            },
            **{
                f"nolist:{k}": v
                for k, v in matrix.family_verdicts(Defense.NOLISTING).items()
            },
        }
        if reference is None:
            reference = verdicts
        elif verdicts != reference:
            return False
    return True
