"""The worldwide nolisting-adoption measurement (paper §IV.A, Figure 2).

Generates a synthetic internet with the Figure 2 ground-truth mix, runs the
two-months-apart DNS + SMTP scan pair over it, pushes the captures through
the three-step detection pipeline, and cross-checks popular-domain adoption
— end-to-end, exactly the dataflow of the paper's measurement.

The measurement is sharded: the domain space is split into fixed-size
chunks (see :class:`~repro.scan.population.PopulationPlan`), each chunk is
generated, scanned and classified independently — by this process when
``workers=1``, by a process pool otherwise — and the per-chunk tallies are
merged in chunk order.  Because every per-domain random draw depends only
on ``(seed, chunk)``, the merged result is bit-for-bit identical whatever
the worker count.  Passing a :class:`~repro.runner.cache.ResultCache`
memoizes completed chunks on disk, so repeated runs (sweeps, sensitivity
harnesses) skip everything already measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faults.model import FaultConfig, fault_params
from ..runner.cache import ResultCache
from ..runner.pool import run_tasks
from ..scan.alexa import (
    PAPER_NOLISTING_RANKS,
    PopularityCrossCheck,
    crosscheck_from_ranks,
)
from ..scan.detect import AdoptionSummary, DomainClass
from ..scan.population import (
    DomainCategory,
    PopulationConfig,
    PopulationPlan,
    population_params,
)


@dataclass
class AdoptionExperimentResult:
    """Measured Figure 2 plus validation hooks."""

    summary: AdoptionSummary
    crosscheck: PopularityCrossCheck
    ground_truth: Dict[DomainCategory, int]
    repaired_mx_records: int
    #: classification accuracy against ground truth, per class
    confusion: Dict[str, int]

    def measured_percentages(self) -> Dict[DomainClass, float]:
        return self.summary.percentages()


#: Map from generator ground truth to the expected pipeline verdict.
_TRUTH_TO_CLASS = {
    DomainCategory.SINGLE_MX: DomainClass.ONE_MX,
    DomainCategory.MULTI_MX: DomainClass.MULTI_MX_NO_NOLISTING,
    DomainCategory.NOLISTING: DomainClass.NOLISTING,
    DomainCategory.MISCONFIGURED: DomainClass.DNS_MISCONFIGURED,
}


def run_adoption_experiment(
    num_domains: int = 10000,
    seed: int = 42,
    glue_elision_rate: float = 0.1,
    transient_outage_rate: float = 0.004,
    plant_popular: bool = True,
    config: Optional[PopulationConfig] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    fault_rate: float = 0.0,
    fault_seed: Optional[int] = None,
    engine: str = "object",
) -> AdoptionExperimentResult:
    """Run the full adoption measurement end to end.

    ``workers`` fans the population's chunks over that many processes
    (``0`` means one per CPU); results are identical for any value.
    ``cache`` memoizes completed chunks on disk.

    ``engine`` selects the shard implementation: ``"object"`` builds and
    scans the full synthetic world per chunk; ``"batch"`` collapses each
    chunk into outcome equivalence classes (see :mod:`repro.scan.batch`)
    and produces bit-identical results at a fraction of the cost;
    ``"columnar"`` holds each chunk as parallel fixed-width columns and
    vectorizes the fault-free accounting (see :mod:`repro.scan.columnar`),
    delegating faulted or glue-eliding payloads to the batch replay —
    results are bit-identical in every case.

    ``fault_rate`` turns on measurement-infrastructure faults: each scan
    additionally suffers host outages, port-25 flaps and DNS
    SERVFAIL/timeout bursts at that per-entity rate (see
    :meth:`~repro.faults.model.FaultConfig.uniform`), drawn independently
    per scan from ``fault_seed`` (default: ``seed``).  This exercises the
    transient failures the paper's two-scan protocol exists to filter.
    """
    if engine not in ("object", "batch", "columnar"):
        raise ValueError(f"unknown adoption engine {engine!r}")
    if config is None:
        config = PopulationConfig(
            num_domains=num_domains,
            transient_outage_rate=transient_outage_rate,
        )
    plan = PopulationPlan(config, seed)
    if plant_popular:
        needed = len(PAPER_NOLISTING_RANKS)
        if plan.count_in(DomainCategory.NOLISTING) >= needed:
            plan.plant(PAPER_NOLISTING_RANKS)

    from ..runner.shards import adoption_shard_task

    faults = None
    if fault_rate > 0.0:
        faults = fault_params(
            FaultConfig.uniform(
                fault_rate, seed=seed if fault_seed is None else fault_seed
            )
        )

    params = population_params(config)
    payloads = [
        {
            "population": params,
            "seed": seed,
            "glue_elision_rate": glue_elision_rate,
            "chunk": chunk,
            # Only present when enabled, so fault-free runs keep hitting
            # cache entries written before faults existed.
            **({"faults": faults} if faults is not None else {}),
            # Same reasoning: object-path payloads stay byte-identical to
            # their pre-batch-engine cache keys.
            **({"engine": engine} if engine != "object" else {}),
        }
        for chunk in range(plan.num_chunks)
    ]
    shard_results = run_tasks(
        adoption_shard_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="adoption-shard",
    )
    return _merge_adoption_shards(plan, shard_results)


def _merge_adoption_shards(
    plan: PopulationPlan, shard_results: List[Dict]
) -> AdoptionExperimentResult:
    """Fold per-chunk tallies into the experiment result, in chunk order."""
    counts = {c: 0 for c in DomainClass}
    total = flapped = servers = addresses = repaired = 0
    confusion = {"correct": 0, "wrong": 0}
    nolisting_domains: List[str] = []
    for shard in shard_results:
        total += shard["total"]
        flapped += shard["flapped"]
        servers += shard["servers"]
        addresses += shard["addresses"]
        repaired += shard["repaired"]
        for domain_class in DomainClass:
            counts[domain_class] += shard["counts"][domain_class.value]
        confusion["correct"] += shard["confusion"]["correct"]
        confusion["wrong"] += shard["confusion"]["wrong"]
        nolisting_domains.extend(shard["nolisting_domains"])

    summary = AdoptionSummary(
        total_domains=total,
        counts=counts,
        flapped=flapped,
        servers_covered=servers,
        addresses_covered=addresses,
    )
    rank_of = plan.rank_of()
    crosscheck = crosscheck_from_ranks(
        [
            rank_of[name]
            for name in nolisting_domains
            if rank_of.get(name)
        ]
    )
    return AdoptionExperimentResult(
        summary=summary,
        crosscheck=crosscheck,
        ground_truth=plan.truth_counts(),
        repaired_mx_records=repaired,
        confusion=confusion,
    )


def single_scan_false_positives(
    num_domains: int = 10000,
    seed: int = 42,
    transient_outage_rate: float = 0.004,
) -> Dict[str, int]:
    """Ablation: how many non-nolisting domains a single scan miscounts.

    Quantifies the value of the paper's repeat-two-months-later protocol.
    """
    from ..scan.detect import SingleScanVerdict, classify_single_scan
    from ..scan.population import SyntheticInternet
    from ..scan.scanner import DNSScanner, SMTPScanner
    from ..sim.rng import RandomStream

    config = PopulationConfig(
        num_domains=num_domains,
        transient_outage_rate=transient_outage_rate,
    )
    internet = SyntheticInternet(config, seed=seed)
    rng = RandomStream(seed, "single-scan")
    dns = DNSScanner(internet, glue_elision_rate=0.0, rng=rng).scan(0)
    smtp = SMTPScanner(internet).scan(0)

    truth_by_domain = {t.name: t.category for t in internet.domains}
    false_positives = 0
    true_positives = 0
    for observation in dns:
        verdict = classify_single_scan(observation, smtp)
        if verdict is not SingleScanVerdict.NOLISTING_CANDIDATE:
            continue
        if truth_by_domain[observation.domain] is DomainCategory.NOLISTING:
            true_positives += 1
        else:
            false_positives += 1
    return {
        "true_positives": true_positives,
        "false_positives": false_positives,
    }
