"""Fault injection vs the two-scan adoption pipeline (paper §IV.A).

The paper repeats its DNS + SMTP measurement two months apart because a
single scan cannot tell nolisting from a transient outage.  These tests
plant the Figure 2 ground-truth mix, inject transient faults into both
scans, and check that the single-scan ablation misclassifies domains the
two-scan protocol recovers — and that injection preserves the parallel
runner's bit-for-bit determinism.
"""

import pytest

from repro.core.adoption import run_adoption_experiment
from repro.faults import FaultConfig, FaultPlan
from repro.scan.detect import DomainClass, NolistingDetector, summarize_single_scan
from repro.scan.population import (
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)
from repro.scan.scanner import DNSScanner, SMTPScanner
from repro.sim.rng import RandomStream

NUM_DOMAINS = 2000
SEED = 3
FAULT_RATE = 0.02
#: Double-hit probability at rate 0.02 is ~0.04% per entity, so two-scan
#: residual misclassification stays within one percentage point.
TOLERANCE = int(0.01 * NUM_DOMAINS)


def _scan_pair_with_faults():
    config = PopulationConfig(
        num_domains=NUM_DOMAINS, transient_outage_rate=0.0
    )
    internet = SyntheticInternet(config, seed=SEED)
    plan = FaultPlan(FaultConfig.uniform(FAULT_RATE, seed=SEED))
    rng = RandomStream(SEED, "fault-integration")
    dns_scanner = DNSScanner(
        internet, glue_elision_rate=0.0, rng=rng, faults=plan
    )
    smtp_scanner = SMTPScanner(internet, faults=plan)
    dns_a, dns_b = dns_scanner.scan(0), dns_scanner.scan(1)
    smtp_a, smtp_b = smtp_scanner.scan(0), smtp_scanner.scan(1)
    truth = {}
    for domain in internet.domains:
        truth[domain.category] = truth.get(domain.category, 0) + 1
    return (dns_a, smtp_a, dns_b, smtp_b), truth, plan


class TestTwoScanFilter:
    def test_single_scan_misclassifies_two_scan_recovers(self):
        (dns_a, smtp_a, dns_b, smtp_b), truth, plan = _scan_pair_with_faults()
        assert plan.events["dns_servfail"] > 0
        assert plan.events["host_down"] > 0

        single = summarize_single_scan(dns_a, smtp_a)
        two = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b).summarize()

        truth_nolisting = truth[DomainCategory.NOLISTING]
        truth_misconfigured = truth[DomainCategory.MISCONFIGURED]

        # One scan alone: every transiently-down primary looks like
        # nolisting and every resolver hiccup like a misconfiguration.
        single_nolisting = single.counts[DomainClass.NOLISTING]
        single_misconfigured = single.counts[DomainClass.DNS_MISCONFIGURED]
        assert single_nolisting > truth_nolisting + TOLERANCE
        assert single_misconfigured > truth_misconfigured + TOLERANCE

        # The repeat-scan filter pulls every planted share back within
        # tolerance — the measurement the paper actually reports.
        for category, domain_class in (
            (DomainCategory.NOLISTING, DomainClass.NOLISTING),
            (DomainCategory.MISCONFIGURED, DomainClass.DNS_MISCONFIGURED),
            (DomainCategory.SINGLE_MX, DomainClass.ONE_MX),
            (DomainCategory.MULTI_MX, DomainClass.MULTI_MX_NO_NOLISTING),
        ):
            measured = two.counts[domain_class]
            assert abs(measured - truth[category]) <= TOLERANCE, (
                f"{domain_class}: measured {measured}, truth "
                f"{truth[category]}"
            )

    def test_transient_failures_flag_domains_as_flapped(self):
        (dns_a, smtp_a, dns_b, smtp_b), _, _ = _scan_pair_with_faults()
        two = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b).summarize()
        assert two.flapped > 0  # faults made verdicts disagree across scans


class TestExperimentWithFaults:
    def test_end_to_end_confusion_within_tolerance(self):
        result = run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            workers=1,
        )
        assert result.confusion["wrong"] <= TOLERANCE
        baseline = run_adoption_experiment(
            num_domains=NUM_DOMAINS, seed=SEED, workers=1
        )
        assert baseline.confusion["wrong"] == 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_invariant_with_faults(self, workers):
        serial = run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            workers=1,
        )
        parallel = run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            workers=workers,
        )
        assert parallel.summary.counts == serial.summary.counts
        assert parallel.summary.flapped == serial.summary.flapped
        assert parallel.summary.servers_covered == serial.summary.servers_covered
        assert parallel.repaired_mx_records == serial.repaired_mx_records
        assert parallel.confusion == serial.confusion
        assert (
            parallel.crosscheck.ranked_adopters
            == serial.crosscheck.ranked_adopters
        )

    def test_fault_seed_changes_draws_not_population(self):
        a = run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            fault_seed=1,
            workers=1,
        )
        b = run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            fault_seed=2,
            workers=1,
        )
        assert a.ground_truth == b.ground_truth
        assert a.summary.counts != b.summary.counts or (
            a.summary.flapped != b.summary.flapped
        )

    def test_fault_free_cache_keys_unchanged(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(root=tmp_path, version="t")
        run_adoption_experiment(
            num_domains=NUM_DOMAINS, seed=SEED, workers=1, cache=cache
        )
        clean_stores = cache.stores
        # Faulted runs key differently — no collision with clean entries.
        run_adoption_experiment(
            num_domains=NUM_DOMAINS,
            seed=SEED,
            fault_rate=FAULT_RATE,
            workers=1,
            cache=cache,
        )
        assert cache.stores == 2 * clean_stores
        # And the clean run still hits every one of its original entries.
        cache.misses = cache.hits = 0
        run_adoption_experiment(
            num_domains=NUM_DOMAINS, seed=SEED, workers=1, cache=cache
        )
        assert cache.misses == 0
        assert cache.hits == clean_stores
