"""Figure 1: the DNS + SMTP message sequence of a nolisting delivery.

The paper's Figure 1 is a sequence diagram — MTA queries DNS, gets two MX
records, resolves the primary's A record, fails to connect, falls through
to the secondary and completes the HELO exchange.  Here the diagram is
*generated from a live run*: a compliant client delivering through the
nolisted testbed, with the resolver's query log and the server-side wire
transcript stitched into the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dns.mxutil import resolve_exchangers
from ..net.host import SMTP_PORT, ConnectionRefused
from ..smtp.message import Message
from ..smtp.wire import TranscribingSession
from .testbed import Defense, Testbed, TestbedConfig


@dataclass
class SequenceStep:
    """One arrow of the sequence diagram."""

    actor: str        # "MTA->DNS", "DNS->MTA", "MTA->primary", ...
    text: str

    def __str__(self) -> str:
        return f"{self.actor:<16} {self.text}"


@dataclass
class Figure1Trace:
    """The full generated sequence."""

    steps: List[SequenceStep]
    delivered: bool

    def __str__(self) -> str:
        return "\n".join(str(step) for step in self.steps)


def run_figure1(domain: str = "foo.net") -> Figure1Trace:
    """Deliver one message through a nolisted domain, recording every hop."""
    testbed = Testbed(
        TestbedConfig(defense=Defense.NOLISTING, victim_domain=domain)
    )
    client_address = testbed.allocate_bot_address()
    steps: List[SequenceStep] = []

    # --- DNS phase -------------------------------------------------------
    steps.append(SequenceStep("MTA->DNS", f"MX QUERY for {domain}"))
    exchangers = resolve_exchangers(testbed.resolver, domain)
    mx_answer = next(
        answer for (qtype, _, answer) in testbed.resolver.query_log
        if qtype == "MX"
    )
    steps.append(SequenceStep("DNS->MTA", mx_answer))
    primary, secondary = exchangers[0], exchangers[1]
    steps.append(
        SequenceStep("MTA->DNS", f"A QUERY for {primary.hostname}")
    )
    steps.append(SequenceStep("DNS->MTA", str(primary.address)))

    # --- primary MX: connection refused (the nolisting trick) ------------
    steps.append(
        SequenceStep("MTA->primary", f"SYN to {primary.address}:{SMTP_PORT}")
    )
    try:
        testbed.internet.connect(client_address, primary.address, SMTP_PORT)
        steps.append(SequenceStep("primary->MTA", "accepted (?!)"))
    except ConnectionRefused:
        steps.append(SequenceStep("primary->MTA", "RST (connection refused)"))

    # --- secondary MX: full HELO exchange ---------------------------------
    steps.append(
        SequenceStep(
            "MTA->secondary", f"SYN to {secondary.address}:{SMTP_PORT}"
        )
    )
    connection = testbed.internet.connect(
        client_address, secondary.address, SMTP_PORT
    )
    wire = TranscribingSession(connection.session, testbed.clock)
    steps.append(
        SequenceStep("secondary->MTA", wire.transcript.entries[-1].line)
    )
    message = Message(
        sender="alice@local.domain.name",
        recipients=[f"user@{domain}"],
    )
    delivered = False
    for line in (
        "HELO local.domain.name",
        f"MAIL FROM:<{message.sender}>",
        f"RCPT TO:<user@{domain}>",
        "DATA",
        "QUIT",
    ):
        steps.append(SequenceStep("MTA->secondary", line))
        reply = wire.execute(line, message=message)
        steps.append(SequenceStep("secondary->MTA", str(reply)))
        if line == "DATA" and reply.is_positive:
            delivered = True
        if not reply.is_positive and not line.startswith("QUIT"):
            break
    connection.close()
    return Figure1Trace(steps=steps, delivered=delivered)


def figure1_text(domain: str = "foo.net") -> str:
    """Render the generated Figure 1 sequence."""
    trace = run_figure1(domain)
    header = (
        "Figure 1: DNS communication in presence of Nolisting "
        f"(generated from a live run; delivered={trace.delivered})"
    )
    return f"{header}\n{'=' * len(header)}\n{trace}"
