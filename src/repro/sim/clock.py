"""Virtual simulation clock.

All components of the simulator share a single :class:`Clock` instance and
read time exclusively through it.  Time is a float number of *seconds* since
the start of the simulation.  Only the event scheduler is allowed to advance
the clock; everything else treats it as read-only.

Using virtual time keeps every experiment deterministic and lets multi-month
measurement campaigns (e.g. the four-month university log of Figure 5) run in
milliseconds while preserving all relative delays exactly.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on an illegal clock manipulation (e.g. moving time backwards)."""


class Clock:
    """A monotonically non-decreasing virtual clock.

    Parameters
    ----------
    start:
        Initial simulation time in seconds.  Defaults to ``0.0``.  A non-zero
        start is useful when replaying logs whose timestamps are absolute.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ClockError` if ``when`` lies in the past; advancing to
        the current time is a no-op and is allowed (simultaneous events).
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.3f})"


def format_duration(seconds: float) -> str:
    """Render a duration as ``mm:ss`` (the format used by Table III).

    >>> format_duration(362)
    '6:02'
    >>> format_duration(21731)
    '362:11'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    minutes, secs = divmod(total, 60)
    return f"{minutes}:{secs:02d}"


def parse_duration(text: str) -> float:
    """Parse a ``mm:ss`` duration back into seconds.

    Inverse of :func:`format_duration`:

    >>> parse_duration("6:02")
    362.0
    """
    parts = text.strip().split(":")
    if len(parts) != 2:
        raise ValueError(f"expected 'mm:ss', got {text!r}")
    minutes, secs = parts
    m = int(minutes)
    s = int(secs)
    if m < 0 or not 0 <= s < 60:
        raise ValueError(f"invalid duration {text!r}")
    return float(m * 60 + s)
