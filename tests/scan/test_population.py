"""Unit tests for the synthetic internet population generator."""

import pytest

from repro.scan.population import (
    FIGURE2_MIX,
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)


@pytest.fixture(scope="module")
def internet():
    return SyntheticInternet(PopulationConfig(num_domains=2000), seed=42)


class TestConfigValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PopulationConfig(
                num_domains=10,
                mix={DomainCategory.SINGLE_MX: 0.5},
            )

    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            PopulationConfig(num_domains=10, transient_outage_rate=1.5)

    def test_needs_domains(self):
        with pytest.raises(ValueError):
            PopulationConfig(num_domains=0)

    def test_figure2_mix_sums_to_one(self):
        assert sum(FIGURE2_MIX.values()) == pytest.approx(1.0)


class TestGeneration:
    def test_exact_domain_count(self, internet):
        assert internet.num_domains == 2000
        assert len(internet.domains) == 2000

    def test_category_counts_match_mix(self, internet):
        counts = internet.truth_counts()
        # Largest-remainder apportionment: counts within 1 of exact shares.
        for category, fraction in FIGURE2_MIX.items():
            assert abs(counts[category] - 2000 * fraction) <= 1

    def test_deterministic_for_seed(self):
        a = SyntheticInternet(PopulationConfig(num_domains=300), seed=7)
        b = SyntheticInternet(PopulationConfig(num_domains=300), seed=7)
        assert [t.category for t in a.domains] == [t.category for t in b.domains]

    def test_different_seeds_shuffle_categories(self):
        a = SyntheticInternet(PopulationConfig(num_domains=300), seed=7)
        b = SyntheticInternet(PopulationConfig(num_domains=300), seed=8)
        assert [t.category for t in a.domains] != [t.category for t in b.domains]

    def test_alexa_ranks_are_a_permutation(self, internet):
        ranks = sorted(t.alexa_rank for t in internet.domains)
        assert ranks == list(range(1, 2001))


class TestGroundTruthStructure:
    def test_single_mx_domains(self, internet):
        for truth in internet.domains_in(DomainCategory.SINGLE_MX)[:20]:
            assert len(truth.mx_hosts) == 1
            assert truth.primary[2] is not None

    def test_multi_mx_domains(self, internet):
        for truth in internet.domains_in(DomainCategory.MULTI_MX)[:20]:
            assert len(truth.mx_hosts) >= 2

    def test_nolisting_domains_have_dead_primary(self, internet):
        for truth in internet.domains_in(DomainCategory.NOLISTING):
            primary = truth.primary
            assert primary is not None
            assert not internet.is_listening(primary[2], scan_index=0)
            assert not internet.is_listening(primary[2], scan_index=1)
            # At least one secondary answers.
            assert any(
                addr is not None and internet.is_listening(addr, 0)
                for (_, _, addr) in truth.secondaries
            )

    def test_misconfigured_domains_lack_usable_mx(self, internet):
        for truth in internet.domains_in(DomainCategory.MISCONFIGURED)[:20]:
            assert all(addr is None for (_, _, addr) in truth.mx_hosts)

    def test_zones_created_for_all_domains(self, internet):
        assert internet.zones.num_zones == 2000


class TestTransientOutages:
    def test_outage_only_affects_one_scan(self):
        config = PopulationConfig(
            num_domains=1000, transient_outage_rate=0.2
        )
        internet = SyntheticInternet(config, seed=3)
        flapping = [t for t in internet.domains if t.outage_scan is not None]
        assert flapping, "with a 20% rate some domains must flap"
        for truth in flapping:
            address = truth.primary[2]
            down_scan = truth.outage_scan
            up_scan = 1 - down_scan
            assert not internet.is_listening(address, down_scan)
            assert internet.is_listening(address, up_scan)

    def test_persistent_outage_mimics_nolisting(self):
        config = PopulationConfig(
            num_domains=500,
            transient_outage_rate=0.0,
            persistent_outage_rate=0.5,
        )
        internet = SyntheticInternet(config, seed=3)
        persistent = [t for t in internet.domains if t.persistent_outage]
        assert persistent
        for truth in persistent:
            address = truth.primary[2]
            assert not internet.is_listening(address, 0)
            assert not internet.is_listening(address, 1)

    def test_all_mail_addresses_cover_mx_hosts(self, internet):
        addresses = internet.all_mail_addresses()
        assert len(addresses) == len(set(addresses))
        expected = sum(
            1
            for t in internet.domains
            for (_, _, a) in t.mx_hosts
            if a is not None
        )
        assert len(addresses) == expected
