"""End-to-end daemon tests over real sockets.

Every test drives a live :class:`PolicyServer` through ``asyncio.run``
inside a synchronous test function (the suite has no async test
runner).  The graceful-shutdown tests are the satellite contract: a
SIGTERM-style stop drains in-flight connections, flushes the backend,
and loses no acknowledged triplet write on either durable backend.
"""

import asyncio
import os
import signal

import pytest

from repro.greylist.backends import create_backend
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import TripletStore
from repro.serve.client import PolicyClient, make_request_attrs
from repro.serve.plugins import GreylistingPlugin, PluginChain
from repro.serve.protocol import ACTION_DUNNO
from repro.serve.server import PolicyServer, ReplayClock, WallClock


def make_server(
    backend_name="memory", path=None, commit_every=None, **server_kwargs
):
    clock = ReplayClock()
    backend = create_backend(backend_name, path, commit_every=commit_every)
    store = TripletStore(clock=clock, backend=backend)
    policy = GreylistPolicy(clock=clock, delay=300.0, store=store)
    chain = PluginChain([GreylistingPlugin(policy)])
    server = PolicyServer(
        chain, clock, flush_interval=0.0, **server_kwargs
    )
    return server, policy


def attrs(client="10.1.2.3", sender="a@b.example", stamp=None, i=0):
    return make_request_attrs(
        client, sender, f"victim{i}@victim.example", stamp=stamp
    )


class TestServing:
    def test_greylist_defer_then_pass_over_the_wire(self):
        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            client = await PolicyClient.connect(host, port)
            try:
                first = await client.request(attrs(stamp=0.0))
                second = await client.request(attrs(stamp=301.0))
            finally:
                await client.close()
                await server.shutdown()
            return first, second, server.stats

        first, second, stats = asyncio.run(scenario())
        assert first.startswith("DEFER_IF_PERMIT 450")
        assert second == ACTION_DUNNO
        assert stats.decisions == 2
        assert stats.connections == 1
        assert stats.actions == {"DEFER_IF_PERMIT": 1, "DUNNO": 1}

    def test_pipelined_burst_answers_in_order(self):
        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            client = await PolicyClient.connect(host, port)
            try:
                batch = [
                    attrs(client=f"10.0.0.{i}", stamp=float(i), i=i)
                    for i in range(20)
                ]
                return await client.pipeline(batch)
            finally:
                await client.close()
                await server.shutdown()

        actions = asyncio.run(scenario())
        assert len(actions) == 20
        assert all(a.startswith("DEFER_IF_PERMIT") for a in actions)

    def test_concurrent_connections_share_one_policy(self):
        async def scenario():
            server, policy = make_server()
            host, port = await server.start()

            async def one(i):
                client = await PolicyClient.connect(host, port)
                try:
                    return await client.request(
                        attrs(client=f"10.0.1.{i}", stamp=float(i), i=i)
                    )
                finally:
                    await client.close()

            actions = await asyncio.gather(*(one(i) for i in range(32)))
            await server.shutdown()
            return actions, policy, server.stats

        actions, policy, stats = asyncio.run(scenario())
        assert len(actions) == 32
        assert stats.connections == 32
        # Every wire decision came from the one shared policy core.
        assert len(policy.events) == 32

    def test_malformed_stanza_closes_connection_and_counts(self):
        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this line has no equals sign\n\n")
            await writer.drain()
            data = await reader.read()  # server closes on protocol error
            writer.close()
            await server.shutdown()
            return data, server.stats

        data, stats = asyncio.run(scenario())
        assert data == b""
        assert stats.protocol_errors == 1

    def test_truncated_stanza_at_eof_is_counted(self):
        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"request=smtpd_access_policy\nsender=a@b.c\n")
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.05)
            await server.shutdown()
            return server.stats

        stats = asyncio.run(scenario())
        assert stats.truncated == 1

    def test_start_twice_is_an_error(self):
        async def scenario():
            server, _ = make_server()
            await server.start()
            try:
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.shutdown()

        asyncio.run(scenario())


class TestClocks:
    def test_replay_clock_follows_stamps_clamped_monotonic(self):
        clock = ReplayClock()
        clock.observe_stamp(10.0)
        assert clock.now == 10.0
        clock.observe_stamp(5.0)  # out-of-order under concurrency
        assert clock.now == 10.0
        clock.observe_stamp(None)
        assert clock.now == 10.0
        clock.observe_stamp(12.5)
        assert clock.now == 12.5

    def test_wall_clock_ignores_stamps(self):
        import time

        clock = WallClock()
        clock.observe_stamp(1.0)
        assert abs(clock.now - time.time()) < 5.0


class TestGracefulShutdown:
    @pytest.mark.parametrize("backend_name", ["sqlite", "journal"])
    def test_no_acknowledged_write_lost_on_durable_backends(
        self, backend_name, tmp_path
    ):
        """The drain contract: every decision a client got an answer for
        must be present in durable storage after shutdown, even with
        commits batched far beyond the number of writes."""
        path = str(tmp_path / f"triplets.{backend_name}")

        async def scenario():
            server, policy = make_server(
                backend_name, path, commit_every=10_000
            )
            host, port = await server.start()
            client = await PolicyClient.connect(host, port)
            try:
                batch = [
                    attrs(client=f"10.0.2.{i}", stamp=float(i), i=i)
                    for i in range(50)
                ]
                actions = await client.pipeline(batch)
            finally:
                await client.close()
            await server.shutdown()  # drains + flushes + closes backend
            return actions, len(policy.events)

        actions, event_count = asyncio.run(scenario())
        assert len(actions) == 50
        assert event_count == 50

        # Reopen the durable file cold: all 50 triplets must be there.
        reopened = create_backend(backend_name, path)
        try:
            assert len(list(reopened.scan())) == 50
        finally:
            reopened.close()

    def test_shutdown_is_idempotent(self):
        async def scenario():
            server, _ = make_server()
            await server.start()
            await server.shutdown()
            await server.shutdown()

        asyncio.run(scenario())

    def test_request_shutdown_unblocks_run_until_signalled(self):
        async def scenario():
            server, _ = make_server()
            await server.start()
            runner = asyncio.ensure_future(server.run_until_signalled())
            await asyncio.sleep(0.01)
            server.request_shutdown()
            return await asyncio.wait_for(runner, timeout=5.0)

        assert asyncio.run(scenario()) == 0

    def test_sigterm_drains_and_exits_zero(self):
        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            runner = asyncio.ensure_future(server.run_until_signalled())
            await asyncio.sleep(0.01)
            client = await PolicyClient.connect(host, port)
            action = await client.request(attrs(stamp=0.0))
            await client.close()
            os.kill(os.getpid(), signal.SIGTERM)
            exit_code = await asyncio.wait_for(runner, timeout=5.0)
            return action, exit_code

        action, exit_code = asyncio.run(scenario())
        assert action.startswith("DEFER_IF_PERMIT")
        assert exit_code == 0

    def test_in_flight_burst_is_answered_during_drain(self):
        """Stanzas buffered before the stop signal are still decided."""

        async def scenario():
            server, _ = make_server()
            host, port = await server.start()
            client = await PolicyClient.connect(host, port)
            batch = [
                attrs(client=f"10.0.3.{i}", stamp=float(i), i=i)
                for i in range(10)
            ]
            pipelined = asyncio.ensure_future(client.pipeline(batch))
            await asyncio.sleep(0)  # let the writes hit the socket
            await server.shutdown()
            actions = await asyncio.wait_for(pipelined, timeout=5.0)
            await client.close()
            return actions

        actions = asyncio.run(scenario())
        assert len(actions) == 10
