"""A reactive DNS blacklist (DNSBL).

The paper's greylisting supporters argue (§II) that even when a bot can
retry, "the delay introduced in the delivery of spam messages can be
enough for the sender ... to be detected and added into popular spammer
blacklists — therefore still helping to prevent the final delivery".
Quantifying that synergy needs a blacklist model, so here is one:

* spam *sightings* of a source address are reported to the blacklist (by
  our own server and, via :class:`~repro.blacklist.feed.TelemetryFeed`, by
  the rest of the internet, since a mass-spammer hits many targets);
* once an address accumulates ``detection_threshold`` sightings, it is
  listed after a further ``processing_delay`` (operator verification,
  zone-publication lag);
* listings expire after ``listing_lifetime`` without new sightings, like
  the major DNSBLs' automatic delisting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..net.address import IPv4Address
from ..sim.clock import Clock

HOUR = 3600.0
DAY = 86400.0


@dataclass
class ListingState:
    """Everything the blacklist knows about one address."""

    address: IPv4Address
    sightings: int = 0
    first_sighted: Optional[float] = None
    last_sighted: Optional[float] = None
    listed_at: Optional[float] = None

    @property
    def is_pending(self) -> bool:
        return self.listed_at is None


class ReactiveBlacklist:
    """A sighting-driven IP blacklist bound to the simulation clock."""

    def __init__(
        self,
        clock: Clock,
        detection_threshold: int = 10,
        processing_delay: float = 1 * HOUR,
        listing_lifetime: float = 30 * DAY,
    ) -> None:
        if detection_threshold < 1:
            raise ValueError("detection threshold must be >= 1")
        if processing_delay < 0 or listing_lifetime <= 0:
            raise ValueError("delays must be non-negative / positive")
        self.clock = clock
        self.detection_threshold = detection_threshold
        self.processing_delay = processing_delay
        self.listing_lifetime = listing_lifetime
        self._states: Dict[IPv4Address, ListingState] = {}
        self.queries = 0
        self.hits = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, address: IPv4Address) -> ListingState:
        """Record one spam sighting of ``address`` at the current time."""
        now = self.clock.now
        state = self._states.get(address)
        if state is None:
            state = ListingState(address=address, first_sighted=now)
            self._states[address] = state
        state.sightings += 1
        state.last_sighted = now
        if (
            state.listed_at is None
            and state.sightings >= self.detection_threshold
        ):
            state.listed_at = now + self.processing_delay
        return state

    # ------------------------------------------------------------------
    # Lookup (what an SMTP server does per connection)
    # ------------------------------------------------------------------
    def is_listed(self, address: IPv4Address) -> bool:
        self.queries += 1
        state = self._states.get(address)
        if state is None or state.listed_at is None:
            return False
        now = self.clock.now
        if now < state.listed_at:
            return False  # still propagating
        if (
            state.last_sighted is not None
            and now - state.last_sighted > self.listing_lifetime
        ):
            return False  # auto-delisted
        self.hits += 1
        return True

    def listed_at(self, address: IPv4Address) -> Optional[float]:
        state = self._states.get(address)
        return state.listed_at if state is not None else None

    def state_of(self, address: IPv4Address) -> Optional[ListingState]:
        return self._states.get(address)

    @property
    def listed_count(self) -> int:
        return sum(
            1
            for state in self._states.values()
            if state.listed_at is not None and state.listed_at <= self.clock.now
        )

    def __repr__(self) -> str:
        return (
            f"ReactiveBlacklist(tracked={len(self._states)}, "
            f"listed={self.listed_count}, queries={self.queries})"
        )
