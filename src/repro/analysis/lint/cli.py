"""Command-line front end: ``python -m repro.analysis``.

Runs both analysis phases — per-file checkers and the whole-program
graph rules — over the given paths.  Exit codes: ``0`` clean (or only
grandfathered findings), ``1`` new findings, ``2`` usage or baseline
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from .analyze import analyze_paths
from .baseline import Baseline, BaselineError
from .findings import Finding
from .framework import default_checkers
from .graph import default_graph_rules
from .report import render_human, render_json, render_rules

#: Baseline applied automatically when present in the working directory.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")


def _parse_rules(raw: Optional[str]) -> Optional[Set[str]]:
    if not raw:
        return None
    return {token for token in raw.replace(",", " ").split() if token}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Whole-program determinism & invariant analyzer for the repro "
            "simulation codebase (per-file checkers + call-graph rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro, else .)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="RULES", help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--no-graph",
        action="store_true",
        help="skip the whole-program phase (per-file checkers only)",
    )
    parser.add_argument(
        "--graph-json",
        type=Path,
        default=None,
        metavar="FILE",
        help="dump the project call graph as JSON (use - for stdout)",
    )
    parser.add_argument(
        "--api-report",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "dump the API-surface / dead-symbol report as JSON "
            "(use - for stdout)"
        ),
    )
    return parser


def _default_paths() -> List[Path]:
    src = Path("src/repro")
    if src.is_dir():
        return [src]
    return [Path(".")]


def _dump_json(target: Path, document: object) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    if str(target) == "-":
        print(text)
    else:
        target.write_text(text + "\n", encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        suite: List[object] = list(default_checkers())
        suite.extend(default_graph_rules())
        print(render_rules(suite))
        return 0

    paths = list(options.paths) or _default_paths()
    missing = [path for path in paths if not path.exists()]
    if missing:
        parser.error(f"no such path: {missing[0]}")

    wants_graph = (
        options.graph_json is not None or options.api_report is not None
    )
    if options.no_graph and wants_graph:
        parser.error("--no-graph conflicts with --graph-json/--api-report")

    result = analyze_paths(
        paths,
        select=_parse_rules(options.select),
        ignore=_parse_rules(options.ignore),
        build_graph=not options.no_graph,
    )

    if result.project is not None:
        if options.graph_json is not None:
            _dump_json(options.graph_json, result.project.call_graph_json())
        if options.api_report is not None:
            _dump_json(options.api_report, result.project.api_report())

    baseline_path = options.baseline
    if baseline_path is None and DEFAULT_BASELINE.is_file():
        baseline_path = DEFAULT_BASELINE

    if options.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(result.findings).write(target)
        print(
            f"wrote {len(result.findings)} finding(s) to baseline {target}",
            file=sys.stderr,
        )
        return 0

    grandfathered: List[Finding] = []
    new = result.findings
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, BaselineError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        new, grandfathered = baseline.split(result.findings)

    renderer = render_json if options.json else render_human
    print(
        renderer(
            new,
            grandfathered=grandfathered,
            suppressed=result.suppressed,
            files_checked=result.files_checked,
        )
    )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
