"""IPv4 addresses, networks and allocation pools.

We implement a small, dependency-free IPv4 model rather than using
:mod:`ipaddress` so the simulator controls hashing, ordering and allocation
semantics precisely (the scan datasets hold tens of thousands of addresses
and are hashed constantly; a plain ``int`` core keeps that cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = (1 << 32) - 1


class AddressError(ValueError):
    """Raised for malformed addresses, networks or exhausted pools."""


@dataclass(frozen=True, order=True, slots=True)
class IPv4Address:
    """A single IPv4 address backed by its 32-bit integer value.

    Scan datasets hold and hash hundreds of thousands of these; ``slots``
    keeps each instance to a single boxed int.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise AddressError(f"IPv4 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation.

        >>> IPv4Address.parse("1.2.3.4").value
        16909060
        """
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"malformed IPv4 octet {part!r} in {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"IPv4 octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


@dataclass(frozen=True, slots=True)
class IPv4Network:
    """A CIDR network (``base/prefix``)."""

    base: IPv4Address
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise AddressError(f"invalid prefix length {self.prefix}")
        if self.base.value & ~self.netmask_value():
            raise AddressError(
                f"host bits set in network base {self.base}/{self.prefix}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        """Parse ``a.b.c.d/p`` notation."""
        if "/" not in text:
            raise AddressError(f"missing prefix in network {text!r}")
        addr, _, prefix = text.partition("/")
        if not prefix.isdigit():
            raise AddressError(f"malformed prefix in {text!r}")
        return cls(IPv4Address.parse(addr), int(prefix))

    def netmask_value(self) -> int:
        if self.prefix == 0:
            return 0
        return (MAX_IPV4 << (32 - self.prefix)) & MAX_IPV4

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix)

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, IPv4Address):
            return NotImplemented  # type: ignore[return-value]
        return (addr.value & self.netmask_value()) == self.base.value

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over every address in the network (including base)."""
        for v in range(self.base.value, self.base.value + self.num_addresses):
            yield IPv4Address(v)

    def __str__(self) -> str:
        return f"{self.base}/{self.prefix}"


class AddressPool:
    """Sequential allocator of unique addresses out of a network.

    The synthetic internet hands each simulated mail server / bot its own
    address from a dedicated pool, guaranteeing no accidental collisions
    between components.
    """

    def __init__(self, network: IPv4Network) -> None:
        self.network = network
        self._next = network.base.value
        self._end = network.base.value + network.num_addresses

    def allocate(self) -> IPv4Address:
        """Return the next unused address; raises when exhausted."""
        if self._next >= self._end:
            raise AddressError(f"address pool {self.network} exhausted")
        addr = IPv4Address(self._next)
        self._next += 1
        return addr

    def allocate_many(self, count: int) -> list:
        """Allocate ``count`` consecutive addresses."""
        if count < 0:
            raise AddressError("count must be non-negative")
        return [self.allocate() for _ in range(count)]

    def subpool(self, offset: int, capacity: int) -> "AddressPool":
        """A fresh allocator over ``capacity`` addresses at ``offset``.

        Disjoint subpools let independent workers allocate out of one
        network without coordinating: worker ``k`` takes
        ``subpool(k * stride, stride)`` and can never collide with its
        siblings.  The parent pool's cursor is not affected.
        """
        if offset < 0 or capacity < 0:
            raise AddressError("offset and capacity must be non-negative")
        start = self.network.base.value + offset
        if start + capacity > self.network.base.value + self.network.num_addresses:
            raise AddressError(
                f"subpool [{offset}, {offset + capacity}) exceeds {self.network}"
            )
        pool = AddressPool(self.network)
        pool._next = start
        pool._end = start + capacity
        return pool

    @property
    def allocated(self) -> int:
        return self._next - self.network.base.value

    @property
    def remaining(self) -> int:
        return self._end - self._next

    def __repr__(self) -> str:
        return f"AddressPool({self.network}, allocated={self.allocated})"


def pool_for(cidr: str) -> AddressPool:
    """Shorthand: ``pool_for('10.0.0.0/8')``."""
    return AddressPool(IPv4Network.parse(cidr))
