"""SMTP-dialect survey: telling bots from MTAs on the wire.

The paper's opening observation (via Stringhini et al.) is that spam bots
speak SMTP "in custom ways — not compliant with the RFCs", and that those
dialects fingerprint botnets.  This experiment generates a mixed traffic
sample — compliant MTA sessions interleaved with sessions in each bot
family's dialect — records the wire transcripts at the receiving server,
runs the passive fingerprinting over them, and scores the result: dialect
attribution accuracy and bot-vs-MTA detection precision/recall.

It complements the defence experiments: greylisting/nolisting exploit the
bots' *delivery logic*, fingerprinting exploits their *wire manners*; both
stem from the same non-compliance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..net.address import AddressPool, IPv4Network
from ..sim.clock import Clock
from ..sim.rng import RandomStream
from ..smtp.dialects import (
    COMPLIANT_MTA,
    CUTWAIL_DIALECT,
    DARKMAILER_DIALECT,
    KELIHOS_DIALECT,
    DialectFingerprinter,
    DialectProfile,
    play_dialect,
)
from ..smtp.message import Message
from ..smtp.server import SMTPServer
from ..smtp.wire import SessionTranscript

#: (profile, is_bot, traffic weight) — the survey's ground-truth mix.
DEFAULT_TRAFFIC_MIX: Tuple[Tuple[DialectProfile, bool, float], ...] = (
    (COMPLIANT_MTA, False, 0.55),
    (CUTWAIL_DIALECT, True, 0.21),
    (KELIHOS_DIALECT, True, 0.16),
    (DARKMAILER_DIALECT, True, 0.08),
)


@dataclass
class DialectSurveyResult:
    """Fingerprinting quality over the generated traffic."""

    sessions: int
    attribution_correct: int
    true_positives: int          # bots flagged as bots
    false_positives: int         # MTAs flagged as bots
    false_negatives: int         # bots that looked clean
    true_negatives: int
    dialect_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def attribution_accuracy(self) -> float:
        return self.attribution_correct / self.sessions if self.sessions else 0.0

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        bots = self.true_positives + self.false_negatives
        return self.true_positives / bots if bots else 0.0


def run_dialect_survey(
    num_sessions: int = 400,
    seed: int = 29,
    mix: Tuple[Tuple[DialectProfile, bool, float], ...] = DEFAULT_TRAFFIC_MIX,
) -> DialectSurveyResult:
    """Generate traffic, fingerprint it, and score the classification."""
    if num_sessions < 1:
        raise ValueError("need at least one session")
    clock = Clock()
    server = SMTPServer(hostname="smtp.victim.example", clock=clock)
    pool = AddressPool(IPv4Network.parse("100.64.0.0/10"))
    rng = RandomStream(seed, "dialect-survey")
    fingerprinter = DialectFingerprinter()

    weights = [weight for (_, _, weight) in mix]
    labelled: List[Tuple[SessionTranscript, DialectProfile, bool]] = []
    for index in range(num_sessions):
        profile, is_bot, _ = mix[rng.weighted_index(weights)]
        sender = f"user{index}@origin{index % 37}.example"
        recipient = f"staff{index % 11}@victim.example"
        message = Message(sender=sender, recipients=[recipient])
        transcript = play_dialect(
            profile,
            server,
            clock,
            pool.allocate(),
            message,
            recipient,
            helo_name=f"host{index}.origin{index % 37}.example",
        )
        labelled.append((transcript, profile, is_bot))
        clock.advance_by(rng.uniform(0.1, 30.0))

    result = DialectSurveyResult(
        sessions=len(labelled),
        attribution_correct=0,
        true_positives=0,
        false_positives=0,
        false_negatives=0,
        true_negatives=0,
    )
    for transcript, profile, is_bot in labelled:
        fingerprint = fingerprinter.classify(transcript)
        result.dialect_histogram[fingerprint.dialect] = (
            result.dialect_histogram.get(fingerprint.dialect, 0) + 1
        )
        if fingerprint.dialect == profile.name:
            result.attribution_correct += 1
        if fingerprint.looks_like_bot and is_bot:
            result.true_positives += 1
        elif fingerprint.looks_like_bot and not is_bot:
            result.false_positives += 1
        elif not fingerprint.looks_like_bot and is_bot:
            result.false_negatives += 1
        else:
            result.true_negatives += 1
    return result
