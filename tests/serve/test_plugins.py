"""Plugin-chain tests: caching, greylisting mapping, throttle, wblist."""

import pytest

from repro.greylist.policy import GreylistAction, GreylistPolicy
from repro.greylist.whitelist import Whitelist
from repro.net.address import IPv4Address, IPv4Network
from repro.serve.plugins import (
    MISS,
    CachedWhitelist,
    DecisionCache,
    GreylistingPlugin,
    PluginChain,
    PolicyPlugin,
    ThrottlePlugin,
    WBListPlugin,
)
from repro.serve.protocol import (
    ACTION_DUNNO,
    ACTION_OK,
    PolicyRequest,
)
from repro.sim.clock import Clock


def rcpt_request(
    client="10.1.2.3",
    sender="spam@bot.example",
    recipient="victim@victim.example",
    **extra,
):
    attrs = {
        "request": "smtpd_access_policy",
        "protocol_state": "RCPT",
        "client_address": client,
        "sender": sender,
        "recipient": recipient,
    }
    attrs.update(extra)
    return PolicyRequest(attrs)


class TestDecisionCache:
    def test_get_miss_then_hit(self):
        cache = DecisionCache(maxsize=4)
        key = ("k",)
        assert cache.get(key) is MISS
        cache.put(key, "verdict")
        assert cache.get(key) == "verdict"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_evicts_oldest(self):
        cache = DecisionCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # refresh a
        cache.put(("c",), 3)  # evicts b
        assert cache.get(("b",)) is MISS
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_none_is_a_cacheable_verdict(self):
        cache = DecisionCache()
        cache.put(("k",), None)
        assert cache.get(("k",)) is None

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DecisionCache(maxsize=0)


class TestCachedWhitelist:
    def test_memoizes_matches(self):
        inner = Whitelist()
        inner.add_cidr("10.0.0.0/8")
        cached = CachedWhitelist(inner, DecisionCache(), ("fp",))
        client = IPv4Address.parse("10.1.2.3")
        assert cached.matches(client, "a@b.example") is True
        assert cached.matches(client, "a@b.example") is True
        assert cached.cache.hits == 1
        assert cached.cache.misses == 1

    def test_helo_probes_bypass_cache(self):
        inner = Whitelist()
        cached = CachedWhitelist(inner, DecisionCache(), ("fp",))
        client = IPv4Address.parse("10.1.2.3")
        cached.matches(client, "a@b.example", "helo.example")
        assert cached.cache.hits == 0
        assert cached.cache.misses == 0

    def test_distinct_fingerprints_do_not_share_verdicts(self):
        permissive = Whitelist()
        permissive.add_cidr("10.0.0.0/8")
        strict = Whitelist()
        shared = DecisionCache()
        a = CachedWhitelist(permissive, shared, ("a",))
        b = CachedWhitelist(strict, shared, ("b",))
        client = IPv4Address.parse("10.1.2.3")
        assert a.matches(client, "x@y.example") is True
        assert b.matches(client, "x@y.example") is False

    def test_attribute_fallthrough(self):
        inner = Whitelist()
        cached = CachedWhitelist(inner, DecisionCache(), ())
        assert cached.add_cidr == inner.add_cidr

    def test_update_invalidates_cached_negative_verdict(self):
        """The shared-state regression guard: whitelisting a client that
        already has a cached "not whitelisted" verdict must take effect
        on the very next probe, not whenever the LRU happens to evict."""
        inner = Whitelist()
        cached = CachedWhitelist(inner, DecisionCache(), ("fp",))
        client = IPv4Address.parse("10.1.2.3")
        assert cached.matches(client, "a@b.example") is False
        assert cached.matches(client, "a@b.example") is False  # cached
        inner.add_cidr("10.0.0.0/8")
        assert cached.matches(client, "a@b.example") is True

    def test_update_invalidates_cached_positive_verdict(self):
        # The counter also advances when entries are merged *in*, so a
        # stale True can never outlive the list it was derived from.
        inner = Whitelist()
        inner.add_sender_domain("b.example")
        cached = CachedWhitelist(inner, DecisionCache(), ("fp",))
        client = IPv4Address.parse("10.1.2.3")
        assert cached.matches(client, "a@b.example") is True
        fresh = Whitelist()
        fresh.add_cidr("192.0.2.0/24")
        generation_before = inner.generation
        inner.update(fresh)
        assert inner.generation > generation_before
        # Same verdict, but re-derived from the merged list (a miss).
        misses_before = cached.cache.misses
        assert cached.matches(client, "a@b.example") is True
        assert cached.cache.misses == misses_before + 1

    def test_every_mutator_bumps_generation(self):
        inner = Whitelist()
        observed = [inner.generation]
        inner.add_address(IPv4Address.parse("10.1.2.3"))
        observed.append(inner.generation)
        inner.add_network(IPv4Network.parse("10.0.0.0/8"))
        observed.append(inner.generation)
        inner.add_cidr("192.0.2.0/24")
        observed.append(inner.generation)
        inner.add_sender_domain("b.example")
        observed.append(inner.generation)
        inner.add_helo_suffix("mail.example")
        observed.append(inner.generation)
        inner.update(Whitelist())
        observed.append(inner.generation)
        assert observed == sorted(set(observed)), observed


class TestGreylistingPlugin:
    def make(self, cache=None):
        clock = Clock()
        policy = GreylistPolicy(clock=clock, delay=300.0)
        return clock, policy, GreylistingPlugin(policy, cache=cache)

    def test_new_triplet_defers_with_postgrey_reply(self):
        _, _, plugin = self.make()
        action = plugin.check(rcpt_request())
        assert action.startswith("DEFER_IF_PERMIT 450 ")

    def test_retry_after_delay_is_dunno(self):
        clock, _, plugin = self.make()
        plugin.check(rcpt_request())
        clock.advance_by(301.0)
        assert plugin.check(rcpt_request()) == ACTION_DUNNO

    def test_event_stream_records_served_decisions(self):
        clock, policy, plugin = self.make()
        plugin.check(rcpt_request())
        clock.advance_by(301.0)
        plugin.check(rcpt_request())
        assert [e.action for e in policy.events] == [
            GreylistAction.GREYLISTED_NEW,
            GreylistAction.PASSED,
        ]

    def test_missing_client_fails_open(self):
        _, _, plugin = self.make()
        assert plugin.check(rcpt_request(client="")) == ACTION_DUNNO
        assert plugin.ignored == 1

    def test_unparseable_sender_fails_open(self):
        _, _, plugin = self.make()
        assert plugin.check(rcpt_request(sender="no-at-sign")) == ACTION_DUNNO
        assert plugin.ignored == 1

    def test_whitelisted_client_is_dunno_and_cached(self):
        clock = Clock()
        whitelist = Whitelist()
        whitelist.add_cidr("10.0.0.0/8")
        policy = GreylistPolicy(clock=clock, delay=300.0, whitelist=whitelist)
        cache = DecisionCache()
        plugin = GreylistingPlugin(policy, cache=cache)
        assert plugin.check(rcpt_request()) == ACTION_DUNNO
        assert plugin.check(rcpt_request()) == ACTION_DUNNO
        assert cache.hits == 1
        # Cached whitelist verdicts still log their events — caching is
        # invisible in the stream the equivalence suite compares.
        assert [e.action for e in policy.events] == [
            GreylistAction.WHITELISTED,
            GreylistAction.WHITELISTED,
        ]


class TestThrottlePlugin:
    def test_defers_excess_within_window(self):
        clock = Clock()
        plugin = ThrottlePlugin(clock, max_messages=2, period=60.0)
        assert plugin.check(rcpt_request()) == ACTION_DUNNO
        assert plugin.check(rcpt_request()) == ACTION_DUNNO
        assert plugin.check(rcpt_request()).startswith("DEFER_IF_PERMIT 450")
        assert plugin.throttled == 1

    def test_window_slides(self):
        clock = Clock()
        plugin = ThrottlePlugin(clock, max_messages=2, period=60.0)
        plugin.check(rcpt_request())
        plugin.check(rcpt_request())
        clock.advance_by(61.0)
        assert plugin.check(rcpt_request()) == ACTION_DUNNO

    def test_clients_throttle_independently(self):
        clock = Clock()
        plugin = ThrottlePlugin(clock, max_messages=1, period=60.0)
        assert plugin.check(rcpt_request(client="10.0.0.1")) == ACTION_DUNNO
        assert plugin.check(rcpt_request(client="10.0.0.2")) == ACTION_DUNNO

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ThrottlePlugin(Clock(), max_messages=0)
        with pytest.raises(ValueError):
            ThrottlePlugin(Clock(), period=0.0)


class TestWBListPlugin:
    def make(self):
        whitelist = Whitelist()
        whitelist.add_cidr("192.0.2.0/24")
        blacklist = Whitelist()
        blacklist.add_cidr("198.51.100.0/24")
        return WBListPlugin(
            whitelist=whitelist, blacklist=blacklist, cache=DecisionCache()
        )

    def test_blacklist_rejects(self):
        plugin = self.make()
        assert plugin.check(rcpt_request(client="198.51.100.7")).startswith(
            "REJECT 554"
        )

    def test_whitelist_accepts_outright(self):
        plugin = self.make()
        assert plugin.check(rcpt_request(client="192.0.2.7")) == ACTION_OK

    def test_unlisted_is_dunno(self):
        plugin = self.make()
        assert plugin.check(rcpt_request(client="10.9.9.9")) == ACTION_DUNNO

    def test_blacklist_beats_whitelist(self):
        whitelist = Whitelist()
        whitelist.add_cidr("198.51.100.0/24")
        blacklist = Whitelist()
        blacklist.add_cidr("198.51.100.0/24")
        plugin = WBListPlugin(whitelist=whitelist, blacklist=blacklist)
        assert plugin.check(rcpt_request(client="198.51.100.7")).startswith(
            "REJECT"
        )

    def test_verdicts_are_cached(self):
        plugin = self.make()
        plugin.check(rcpt_request(client="198.51.100.7"))
        plugin.check(rcpt_request(client="198.51.100.7"))
        assert plugin.cache.hits == 1


class _Recorder(PolicyPlugin):
    name = "recorder"

    def __init__(self, action):
        self.action = action
        self.calls = 0

    def check(self, request):
        self.calls += 1
        return self.action


class TestPluginChain:
    def test_first_non_dunno_wins(self):
        first = _Recorder(ACTION_DUNNO)
        second = _Recorder("REJECT 554 no")
        third = _Recorder(ACTION_OK)
        chain = PluginChain([first, second, third])
        assert chain.decide(rcpt_request()) == "REJECT 554 no"
        assert (first.calls, second.calls, third.calls) == (1, 1, 0)

    def test_all_dunno_ends_dunno(self):
        chain = PluginChain([_Recorder(ACTION_DUNNO)])
        assert chain.decide(rcpt_request()) == ACTION_DUNNO

    def test_non_access_policy_request_short_circuits(self):
        plugin = _Recorder(ACTION_OK)
        chain = PluginChain([plugin])
        request = rcpt_request()
        request.attrs["request"] = "junk"
        assert chain.decide(request) == ACTION_DUNNO
        assert plugin.calls == 0

    def test_non_rcpt_state_short_circuits(self):
        plugin = _Recorder(ACTION_OK)
        chain = PluginChain([plugin])
        assert (
            chain.decide(rcpt_request(protocol_state="DATA")) == ACTION_DUNNO
        )
        assert plugin.calls == 0

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            PluginChain([])

    def test_fingerprint_concatenates_plugins(self):
        chain = PluginChain([_Recorder(ACTION_DUNNO)])
        assert chain.fingerprint() == (("recorder",),)
