"""Positive, negative and noqa fixtures for every interprocedural rule."""

import textwrap

from repro.analysis.lint.analyze import run_graph_rules
from repro.analysis.lint.graph import Project


def findings_for(sources, rule_id=None):
    proj = Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    result = run_graph_rules(proj)
    if rule_id is None:
        return result
    return [f for f in result.findings if f.rule == rule_id]


class TestDET001:
    def test_transitive_wall_clock_flagged(self):
        findings = findings_for(
            {
                "core/adoption.py": """\
                from repro.core.util import stamp

                def run_adoption_experiment(config):
                    return stamp()
                """,
                "core/util.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
            "DET001",
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "core/util.py"
        assert finding.line == 4
        assert "run_adoption_experiment" in finding.message
        assert "stamp" in finding.message

    def test_global_random_in_backend_method_flagged(self):
        findings = findings_for(
            {
                "greylist/backends.py": """\
                class TripletBackend:
                    def lookup(self, key):
                        raise NotImplementedError
                """,
                "greylist/impl.py": """\
                import random

                from repro.greylist.backends import TripletBackend

                class FuzzyBackend(TripletBackend):
                    def lookup(self, key):
                        return random.random()
                """,
            },
            "DET001",
        )
        assert [f.path for f in findings] == ["greylist/impl.py"]
        assert "global-rng" in findings[0].message

    def test_environ_read_in_shard_task_flagged(self):
        findings = findings_for(
            {
                "runner/shards.py": """\
                import os

                def adoption_shard(payload):
                    return os.environ.get("KNOB")
                """,
            },
            "DET001",
        )
        assert len(findings) == 1
        assert "environment" in findings[0].message

    def test_unordered_listing_flagged(self):
        findings = findings_for(
            {
                "core/adoption.py": """\
                import os

                def run_adoption_experiment(config):
                    return [name for name in os.listdir(".")]
                """,
            },
            "DET001",
        )
        assert len(findings) == 1
        assert "unordered-iteration" in findings[0].message

    def test_clock_parameter_clean(self):
        findings = findings_for(
            {
                "core/adoption.py": """\
                def run_adoption_experiment(config, clock):
                    return clock.now()
                """,
            },
            "DET001",
        )
        assert findings == []

    def test_unreachable_sink_clean(self):
        # The sink exists but no entry point reaches it.
        findings = findings_for(
            {
                "core/adoption.py": """\
                def run_adoption_experiment(config):
                    return 1
                """,
                "core/util.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
            "DET001",
        )
        assert findings == []

    def test_noqa_on_sink_line_suppresses(self):
        result = findings_for(
            {
                "core/adoption.py": """\
                import os

                def run_adoption_experiment(config):
                    return os.environ.get("KNOB")  # repro: noqa DET001 - toggle
                """,
            }
        )
        assert [f for f in result.findings if f.rule == "DET001"] == []
        assert result.suppressed == 1


class TestRNG002:
    def test_rng_in_payload_dict_flagged(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks
                from repro.sim.rng import RandomStream

                def launch(task, seed):
                    payloads = [
                        {"shard": 0, "rng": RandomStream(seed, "shard")}
                    ]
                    return run_tasks(task, payloads)
                """,
            },
            "RNG002",
        )
        assert len(findings) == 1
        assert findings[0].line == 6

    def test_rng_name_in_payload_flagged(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def launch(task, rng):
                    return run_tasks(task, [{"shard": 0, "rng": rng}])
                """,
            },
            "RNG002",
        )
        assert len(findings) == 1

    def test_seed_in_payload_clean(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def launch(task, seed):
                    payloads = [{"shard": 0, "seed": seed}]
                    return run_tasks(task, payloads)
                """,
            },
            "RNG002",
        )
        assert findings == []

    def test_rng_outside_dispatch_clean(self):
        # Building an rng-bearing dict is fine when it never crosses the
        # process boundary.
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.sim.rng import RandomStream

                def local_state(seed):
                    return {"rng": RandomStream(seed, "local")}
                """,
            },
            "RNG002",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        result = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def launch(task, rng):
                    payloads = [{"rng": rng}]  # repro: noqa RNG002
                    return run_tasks(task, payloads)
                """,
            }
        )
        assert [f for f in result.findings if f.rule == "RNG002"] == []
        assert result.suppressed >= 1


class TestSHM001:
    def test_mutated_module_global_flagged(self):
        findings = findings_for(
            {
                "core/state.py": """\
                CACHE = {}

                def remember(key, value):
                    CACHE[key] = value
                """,
            },
            "SHM001",
        )
        assert len(findings) == 1
        assert findings[0].line == 1
        assert "CACHE" in findings[0].message

    def test_lowercase_unmutated_container_flagged(self):
        findings = findings_for(
            {
                "core/state.py": """\
                registry = {}
                """,
            },
            "SHM001",
        )
        assert len(findings) == 1

    def test_constant_named_unmutated_clean(self):
        findings = findings_for(
            {
                "core/state.py": """\
                KNOWN_CODES = {"greylist", "nolist"}
                """,
            },
            "SHM001",
        )
        assert findings == []

    def test_final_annotated_clean(self):
        findings = findings_for(
            {
                "core/state.py": """\
                from typing import Final

                defaults: Final = {"retry": 300}
                """,
            },
            "SHM001",
        )
        assert findings == []

    def test_dunder_all_clean(self):
        findings = findings_for(
            {
                "core/state.py": """\
                __all__ = ["thing"]

                def thing():
                    pass
                """,
            },
            "SHM001",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        result = findings_for(
            {
                "core/state.py": """\
                registry = {}  # repro: noqa SHM001 - populated once at import
                """,
            }
        )
        assert [f for f in result.findings if f.rule == "SHM001"] == []
        assert result.suppressed == 1


class TestASY001:
    def test_direct_sleep_flagged(self):
        findings = findings_for(
            {
                "policyd/server.py": """\
                import time

                async def handle(request):
                    time.sleep(1)
                """,
            },
            "ASY001",
        )
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "handle" in findings[0].message

    def test_transitive_blocking_call_flagged(self):
        findings = findings_for(
            {
                "policyd/server.py": """\
                import sqlite3

                def load(path):
                    return sqlite3.connect(path)

                async def handle(request):
                    return load("triplets.db")
                """,
            },
            "ASY001",
        )
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_async_callee_is_not_traversed(self):
        # An awaited async helper is audited as its own entry; the outer
        # coroutine must not double-report its sinks.
        findings = findings_for(
            {
                "policyd/server.py": """\
                import time

                async def inner():
                    time.sleep(1)

                async def outer():
                    await inner()
                """,
            },
            "ASY001",
        )
        assert len(findings) == 1
        assert "inner" in findings[0].message

    def test_asyncio_sleep_clean(self):
        findings = findings_for(
            {
                "policyd/server.py": """\
                import asyncio

                async def handle(request):
                    await asyncio.sleep(1)
                """,
            },
            "ASY001",
        )
        assert findings == []

    def test_sync_only_module_clean(self):
        findings = findings_for(
            {
                "core/util.py": """\
                import time

                def wait():
                    time.sleep(1)
                """,
            },
            "ASY001",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        result = findings_for(
            {
                "policyd/server.py": """\
                import time

                async def handle(request):
                    time.sleep(0)  # repro: noqa ASY001 - yields immediately
                """,
            }
        )
        assert [f for f in result.findings if f.rule == "ASY001"] == []
        assert result.suppressed == 1


class TestCCH001:
    def test_unconditional_optional_key_flagged(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    engine = payload.get("engine", "object")
                    return engine

                def launch(engine):
                    payloads = [{"shard": 0, "engine": engine}]
                    return run_tasks(shard_task, payloads)
                """,
            },
            "CCH001",
        )
        assert len(findings) == 1
        assert findings[0].line == 8
        assert "engine" in findings[0].message

    def test_conditional_unpack_idiom_clean(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    engine = payload.get("engine", "object")
                    return engine

                def launch(engine):
                    payloads = [
                        {
                            "shard": 0,
                            **({"engine": engine} if engine != "object" else {}),
                        }
                    ]
                    return run_tasks(shard_task, payloads)
                """,
            },
            "CCH001",
        )
        assert findings == []

    def test_required_key_clean(self):
        # Keys the task reads via subscript (not .get) are required, not
        # optional; setting them unconditionally is correct.
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    return payload["shard"]

                def launch():
                    return run_tasks(shard_task, [{"shard": 0}])
                """,
            },
            "CCH001",
        )
        assert findings == []

    def test_unguarded_subscript_assign_flagged(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    return payload.get("faults")

                def launch(faults):
                    payloads = [{"shard": 0}]
                    for payload in payloads:
                        payload["faults"] = faults
                    return run_tasks(shard_task, payloads)
                """,
            },
            "CCH001",
        )
        assert len(findings) == 1
        assert findings[0].line == 9

    def test_guarded_subscript_assign_clean(self):
        findings = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    return payload.get("faults")

                def launch(faults):
                    payloads = [{"shard": 0}]
                    if faults is not None:
                        for payload in payloads:
                            payload["faults"] = faults
                    return run_tasks(shard_task, payloads)
                """,
            },
            "CCH001",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        result = findings_for(
            {
                "core/driver.py": """\
                from repro.runner.pool import run_tasks

                def shard_task(payload):
                    return payload.get("engine", "object")

                def launch(engine):
                    payloads = [{"engine": engine}]  # repro: noqa CCH001
                    return run_tasks(shard_task, payloads)
                """,
            }
        )
        assert [f for f in result.findings if f.rule == "CCH001"] == []
        assert result.suppressed >= 1


class TestScoping:
    def test_test_modules_exempt(self):
        result = findings_for(
            {
                "tests/test_driver.py": """\
                import time

                registry = {}

                async def handle():
                    time.sleep(1)
                """,
            }
        )
        assert result.findings == []

    def test_cli_module_exempt_from_det001(self):
        findings = findings_for(
            {
                "core/adoption.py": """\
                from repro.cli import parse_and_run

                def run_adoption_experiment(config):
                    return parse_and_run(config)
                """,
                "cli.py": """\
                import time

                def parse_and_run(config):
                    return time.time()
                """,
            },
            "DET001",
        )
        assert findings == []
