"""``EXC001`` — over-broad except blocks that swallow injected faults.

The fault-injection layer (PR 3) raises ``FaultInjected`` /
``ConnectionReset``-family exceptions *on purpose*: experiments measure
how senders and scanners behave under faults.  A ``except:`` or
``except Exception:`` that neither re-raises, logs, nor records a counter
makes an injected fault silently disappear — the experiment then reports
healthy numbers for a run that was anything but.

A broad handler is accepted when its body visibly accounts for the
exception: a ``raise``, a logging call, a counter increment, or a call
into an error-recording helper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext

#: Exception names considered over-broad for a swallowing handler.
BROAD_TYPES = frozenset(["Exception", "BaseException"])

#: Method/function names whose call counts as "the error was recorded".
_RECORDING_NAMES = frozenset(
    [
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
        "log",
    ]
)
_RECORDING_SUBSTRINGS = ("record", "count", "increment", "quarantine", "fail")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    names = [node] if not isinstance(node, ast.Tuple) else list(node.elts)
    for name in names:
        if isinstance(name, ast.Name) and name.id in BROAD_TYPES:
            return True
        if isinstance(name, ast.Attribute) and name.attr in BROAD_TYPES:
            return True
    return False


def _records_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            # ``self.errors += 1`` style counters.
            return True
        if isinstance(node, ast.Call):
            name = ""
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            lowered = name.lower()
            if lowered in _RECORDING_NAMES:
                return True
            if any(sub in lowered for sub in _RECORDING_SUBSTRINGS):
                return True
    return False


class FaultSwallowingExcept(Checker):
    rule_id = "EXC001"
    severity = Severity.WARNING
    description = (
        "bare/broad except that silently swallows injected faults; "
        "narrow it, re-raise, or record the error"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _records_error(node):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield self.finding(
                ctx,
                node,
                f"{caught} swallows FaultInjected/ConnectionReset-family "
                "exceptions without re-raising or recording them; narrow "
                "the types, re-raise, or count the event",
            )
