"""Seed-sensitivity analysis of the headline reproductions.

A reproduction that only works at one magic seed is not a reproduction.
This harness re-runs the stochastic experiments across a seed sweep and
reports the spread of the quantities the paper's claims rest on:

* the Figure 2 adoption percentages;
* the Figure 5 benign-delay quantiles (with bootstrap CIs per run);
* the Table II family verdicts (which must be seed-invariant — they are
  behavioural, not statistical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.bootstrap import ConfidenceInterval
from ..runner.cache import ResultCache
from ..runner.pool import run_tasks
from .defense_matrix import build_defense_matrix
from .testbed import Defense

DEFAULT_SEEDS: Sequence[int] = (1, 2, 3, 5, 8)


@dataclass
class AdoptionSensitivity:
    """Figure 2 percentages across seeds."""

    seeds: List[int]
    nolisting_pct: List[float]
    one_mx_pct: List[float]
    misclassified: List[int]

    @property
    def nolisting_spread(self) -> float:
        return max(self.nolisting_pct) - min(self.nolisting_pct)


def adoption_sensitivity(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    num_domains: int = 5000,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> AdoptionSensitivity:
    """One full adoption experiment per seed, fanned over ``workers``."""
    from ..runner.shards import adoption_seed_task

    payloads = [
        {"num_domains": num_domains, "seed": seed} for seed in seeds
    ]
    rows = run_tasks(
        adoption_seed_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="adoption-sensitivity",
    )
    return AdoptionSensitivity(
        seeds=list(seeds),
        nolisting_pct=[row["nolisting_pct"] for row in rows],
        one_mx_pct=[row["one_mx_pct"] for row in rows],
        misclassified=[row["misclassified"] for row in rows],
    )


@dataclass
class DeploymentSensitivity:
    """Figure 5 medians across seeds, with per-run bootstrap CIs."""

    seeds: List[int]
    medians: List[float]
    median_cis: List[ConfidenceInterval] = field(default_factory=list)
    within_10min: List[float] = field(default_factory=list)

    @property
    def median_spread(self) -> float:
        return max(self.medians) - min(self.medians)


def deployment_sensitivity(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    num_messages: int = 800,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> DeploymentSensitivity:
    """One deployment experiment per seed, fanned over ``workers``."""
    from ..runner.shards import deployment_seed_task

    payloads = [
        {"num_messages": num_messages, "seed": seed} for seed in seeds
    ]
    rows = run_tasks(
        deployment_seed_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="deployment-sensitivity",
    )
    return DeploymentSensitivity(
        seeds=list(seeds),
        medians=[row["median"] for row in rows],
        median_cis=[
            ConfidenceInterval(
                estimate=row["ci"][0],
                low=row["ci"][1],
                high=row["ci"][2],
                level=row["ci"][3],
            )
            for row in rows
        ],
        within_10min=[row["within_10min"] for row in rows],
    )


def verdicts_seed_invariant(seeds: Sequence[int] = (3, 11, 23)) -> bool:
    """Table II verdicts must not depend on the seed."""
    reference: Dict[str, bool] = None
    for seed in seeds:
        matrix = build_defense_matrix(seed=seed, recipients=2)
        verdicts = {
            **{
                f"grey:{k}": v
                for k, v in matrix.family_verdicts(Defense.GREYLISTING).items()
            },
            **{
                f"nolist:{k}": v
                for k, v in matrix.family_verdicts(Defense.NOLISTING).items()
            },
        }
        if reference is None:
            reference = verdicts
        elif verdicts != reference:
            return False
    return True
