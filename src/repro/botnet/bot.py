"""The spam-bot engine.

A :class:`SpamBot` is the malware's message-delivery routine: it receives a
spam job (message + recipient list) from its C&C, resolves targets with its
family's MX behaviour, speaks its family's SMTP dialect, and retries (or
not) per its family's retry model.  Every attempt is journalled, because the
experiments' raw data is precisely the timeline of bot attempts against the
instrumented server.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..dns.mxutil import MailExchanger, resolve_exchangers
from ..dns.resolver import DNSError, StubResolver
from ..net.address import IPv4Address
from ..net.host import (
    SMTP_PORT,
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
)
from ..net.network import VirtualInternet
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..smtp.message import Message
from .behavior import MXBehavior, select_targets
from .retry import BotRetryModel, FireAndForget

_task_ids = itertools.count(1)


class BotAttemptOutcome(enum.Enum):
    DELIVERED = "delivered"
    DEFERRED = "deferred"            # 4yz (greylisting) — may retry
    REJECTED = "rejected"            # 5yz — permanent
    CONNECTION_FAILED = "connection-failed"  # refused/unreachable (nolisting)
    DNS_FAILED = "dns-failed"


def _negative_outcome(reply) -> BotAttemptOutcome:
    return (
        BotAttemptOutcome.DEFERRED
        if reply.is_transient_failure
        else BotAttemptOutcome.REJECTED
    )


def drive_dialogue(session, message: Message, recipient: str, helo_name: str):
    """Drive the bot dialect of the SMTP dialogue against one session.

    Returns ``(outcome, reply_code, transcript)``; the transcript is the
    replayable wire exchange.  This is the exact dialogue a
    :class:`SpamBot` speaks, factored out so the batch engine can drive
    one *real* session per equivalence class and cache the result.
    """
    transcript = [f"S: {session.banner}"]
    if not session.banner.is_positive:
        return (
            _negative_outcome(session.banner),
            session.banner.code,
            tuple(transcript),
        )
    steps = (
        (f"HELO {helo_name}", lambda: session.helo(helo_name)),
        (
            f"MAIL FROM:<{message.sender}>",
            lambda: session.mail_from(message.sender),
        ),
        (f"RCPT TO:<{recipient}>", lambda: session.rcpt_to(recipient)),
    )
    for command, send in steps:
        reply = send()
        transcript.append(f"C: {command}")
        transcript.append(f"S: {reply}")
        if not reply.is_positive:
            # Bots typically drop the connection without QUIT.
            return _negative_outcome(reply), reply.code, tuple(transcript)
    reply = session.data(message)
    transcript.append("C: DATA")
    transcript.append(f"S: {reply}")
    if reply.is_positive:
        return BotAttemptOutcome.DELIVERED, reply.code, tuple(transcript)
    return _negative_outcome(reply), reply.code, tuple(transcript)


@dataclass
class BotAttempt:
    """One delivery attempt by the bot for one (message, recipient)."""

    timestamp: float
    attempt_number: int
    outcome: BotAttemptOutcome
    target: Optional[str] = None     # MX hostname contacted
    reply_code: Optional[int] = None


@dataclass
class BotTask:
    """One (message, recipient) delivery task inside the bot."""

    message: Message
    recipient: str
    created_at: float
    attempts: List[BotAttempt] = field(default_factory=list)
    delivered: bool = False
    abandoned: bool = False
    task_id: int = field(default_factory=lambda: next(_task_ids))
    #: Task-private randomness (retry-delay draws).  When ``None`` the bot
    #: falls back to its shared stream; experiments that batch over
    #: messages pass one stream per message so tasks stay independent.
    rng: Optional[RandomStream] = None

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def delivery_delay(self) -> Optional[float]:
        if not self.delivered:
            return None
        return self.attempts[-1].timestamp - self.created_at

    def attempt_ages(self) -> List[float]:
        """Seconds from task creation to each attempt (Figure 4 x-axis)."""
        return [a.timestamp - self.created_at for a in self.attempts]


class SpamBot:
    """An infected machine's spam-sending routine.

    Parameters
    ----------
    internet, resolver, scheduler:
        The simulation substrates.
    source_address:
        The infected machine's IP.
    mx_behavior:
        Which MX hosts the bot contacts (family trait).
    rng:
        Bot-private randomness stream (split it from the experiment seed).
    retry_model:
        When/whether the bot retries deferred messages (family trait).
    helo_name:
        The (usually fake) HELO the bot announces.
    walks_mx_on_failure:
        Whether a connection failure makes the bot try the next target in
        its selected list within the *same* attempt (compliant behaviour)
        or give the attempt up (single-shot bots).
    """

    def __init__(
        self,
        internet: VirtualInternet,
        resolver: StubResolver,
        scheduler: EventScheduler,
        source_address: IPv4Address,
        mx_behavior: MXBehavior,
        rng: RandomStream,
        retry_model: Optional[BotRetryModel] = None,
        helo_name: str = "dsl-pool-17.example.org",
        walks_mx_on_failure: bool = True,
    ) -> None:
        self.internet = internet
        self.resolver = resolver
        self.scheduler = scheduler
        self.source_address = source_address
        self.mx_behavior = mx_behavior
        self.retry_model = retry_model if retry_model is not None else FireAndForget()
        self.rng = rng
        self.helo_name = helo_name
        self.walks_mx_on_failure = walks_mx_on_failure
        self.tasks: List[BotTask] = []

    # ------------------------------------------------------------------
    # Job intake (called by the C&C)
    # ------------------------------------------------------------------
    def assign(
        self, message: Message, rng: Optional[RandomStream] = None
    ) -> List[BotTask]:
        """Accept a spam job; one task per recipient, attempted immediately.

        ``rng``, when given, becomes the tasks' private retry-randomness
        stream — the per-message decoupling the batch engine relies on.
        """
        created: List[BotTask] = []
        for recipient in message.recipients:
            task = BotTask(
                message=message,
                recipient=recipient,
                created_at=self.scheduler.now,
                rng=rng,
            )
            self.tasks.append(task)
            created.append(task)
            self.scheduler.schedule_in(
                0.0,
                lambda t=task: self._attempt(t),
                label=f"bot:first:{task.task_id}",
            )
        return created

    # ------------------------------------------------------------------
    # Attempt machinery
    # ------------------------------------------------------------------
    def _targets_for(self, domain: str) -> List[MailExchanger]:
        try:
            exchangers = resolve_exchangers(self.resolver, domain)
        except DNSError:
            return []
        return select_targets(self.mx_behavior, exchangers, self.rng)

    def _attempt(self, task: BotTask) -> None:
        if task.delivered or task.abandoned:
            return
        number = task.attempt_count + 1
        domain = task.recipient.rsplit("@", 1)[1]
        targets = self._targets_for(domain)
        if not targets:
            task.attempts.append(
                BotAttempt(
                    timestamp=self.scheduler.now,
                    attempt_number=number,
                    outcome=BotAttemptOutcome.DNS_FAILED,
                )
            )
            self._after_failure(task)
            return

        outcome = BotAttemptOutcome.CONNECTION_FAILED
        reply_code: Optional[int] = None
        contacted: Optional[str] = None
        for target in targets:
            assert target.address is not None
            contacted = target.hostname
            try:
                connection = self.internet.connect(
                    self.source_address, target.address, SMTP_PORT
                )
            except (ConnectionRefused, HostUnreachable):
                task.attempts.append(
                    BotAttempt(
                        timestamp=self.scheduler.now,
                        attempt_number=number,
                        outcome=BotAttemptOutcome.CONNECTION_FAILED,
                        target=contacted,
                    )
                )
                number += 1
                if self.walks_mx_on_failure:
                    continue
                self._after_failure(task)
                return
            try:
                outcome, reply_code = self._dialogue(
                    connection.session, task.message, task.recipient
                )
            except ConnectionReset:
                # Session died mid-dialogue: bots treat it exactly like a
                # refused connection (retry model decides what happens next).
                outcome, reply_code = BotAttemptOutcome.CONNECTION_FAILED, None
            connection.close()
            break
        else:
            # Every selected target refused the connection.
            self._after_failure(task)
            return

        task.attempts.append(
            BotAttempt(
                timestamp=self.scheduler.now,
                attempt_number=number,
                outcome=outcome,
                target=contacted,
                reply_code=reply_code,
            )
        )
        if outcome is BotAttemptOutcome.DELIVERED:
            task.delivered = True
            return
        if outcome is BotAttemptOutcome.REJECTED:
            task.abandoned = True
            return
        self._after_failure(task)

    def _dialogue(self, session, message: Message, recipient: str):
        """Minimal bot dialect of the SMTP dialogue."""
        outcome, reply_code, _ = drive_dialogue(
            session, message, recipient, self.helo_name
        )
        return outcome, reply_code

    def _after_failure(self, task: BotTask) -> None:
        rng = task.rng if task.rng is not None else self.rng
        delay = self.retry_model.next_delay(task.attempt_count, rng)
        if delay is None:
            task.abandoned = True
            return
        self.scheduler.schedule_in(
            delay,
            lambda t=task: self._attempt(t),
            label=f"bot:retry:{task.task_id}:{task.attempt_count + 1}",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delivered_tasks(self) -> List[BotTask]:
        return [t for t in self.tasks if t.delivered]

    @property
    def abandoned_tasks(self) -> List[BotTask]:
        return [t for t in self.tasks if t.abandoned]

    def all_attempts(self) -> List[BotAttempt]:
        return [attempt for task in self.tasks for attempt in task.attempts]

    def __repr__(self) -> str:
        return (
            f"SpamBot({self.source_address}, {self.mx_behavior.value}, "
            f"tasks={len(self.tasks)})"
        )
