"""Ablation bench: the greylisting-threshold trade-off.

§VI: "the use of a very short threshold is probably the best way to
maximize both aspects (stopping spam and reducing unwanted delays)".  This
bench sweeps thresholds and measures, at each point, (a) whether each
malware family is blocked and (b) the benign delivery-delay profile of the
university deployment — demonstrating the paper's recommendation from the
running system.
"""

from repro.analysis.tables import format_seconds, render_table
from repro.botnet.families import CUTWAIL, DARKMAILER, KELIHOS
from repro.core.deployment import run_deployment_experiment
from repro.core.greylist_experiment import run_greylist_experiment

from _util import emit

THRESHOLDS = (5.0, 300.0, 3600.0, 21600.0)


def run_sweep():
    rows = []
    for threshold in THRESHOLDS:
        kelihos = run_greylist_experiment(KELIHOS, threshold, num_messages=20)
        cutwail = run_greylist_experiment(CUTWAIL, threshold, num_messages=20)
        dark = run_greylist_experiment(DARKMAILER, threshold, num_messages=20)
        benign = run_deployment_experiment(
            threshold=threshold, num_messages=600, seed=5
        )
        rows.append((threshold, kelihos, cutwail, dark, benign))
    return rows


def test_ablation_threshold_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rendered = render_table(
        headers=(
            "Threshold",
            "Kelihos blocked",
            "Cutwail blocked",
            "Darkmailer blocked",
            "Benign median delay",
            "Benign lost",
        ),
        rows=[
            (
                format_seconds(threshold),
                "YES" if kelihos.blocked else "no",
                "YES" if cutwail.blocked else "no",
                "YES" if dark.blocked else "no",
                format_seconds(benign.delay_cdf().median),
                benign.lost,
            )
            for threshold, kelihos, cutwail, dark, benign in rows
        ],
        title="Greylisting threshold sweep: spam blocked vs benign impact",
    )
    emit("Ablation — threshold sweep", rendered)

    for threshold, kelihos, cutwail, dark, benign in rows:
        # Fire-and-forget families are blocked at EVERY threshold: the
        # trigger is the retry requirement, not the delay value.
        assert cutwail.blocked, threshold
        assert dark.blocked, threshold
        # Kelihos is never blocked, whatever the threshold.
        assert not kelihos.blocked, threshold

    # Benign cost grows with the threshold (median delay and lost mail).
    medians = [benign.delay_cdf().median for _, _, _, _, benign in rows]
    assert medians[0] <= medians[1] <= medians[-1]
    lost = [benign.lost for _, _, _, _, benign in rows]
    assert lost[0] <= lost[-1]

    # Hence the paper's conclusion: the smallest threshold achieves the
    # same spam suppression with the least benign damage.
    small, large = rows[0][4], rows[-1][4]
    assert small.delay_cdf().median < large.delay_cdf().median
