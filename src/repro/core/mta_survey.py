"""The MTA default-configuration survey (paper Table IV).

Regenerates the retransmission-time table by *running* each MTA profile's
schedule (not by transcribing constants): the schedule object emits its
attempt times over the first ten hours, and the queue-lifetime column is
checked against the RFC's 4-5 day guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..mta.profiles import (
    PROFILE_ORDER,
    PROFILES,
    MTAProfile,
    rfc_compliant_lifetime,
)

TEN_HOURS = 36000.0


@dataclass
class MTARow:
    """One reproduced row of Table IV."""

    mta: str
    retransmission_minutes: List[float]
    max_queue_days: float
    rfc_compliant_lifetime: bool

    def first_gaps_minutes(self, count: int = 6) -> List[float]:
        """Gaps between the first few retries (shape fingerprint)."""
        times = [0.0] + self.retransmission_minutes
        return [
            round(b - a, 2)
            for a, b in zip(times, times[1:])
        ][:count]


def survey_mta(profile: MTAProfile, horizon: float = TEN_HOURS) -> MTARow:
    return MTARow(
        mta=profile.name,
        retransmission_minutes=[
            round(m, 2) for m in profile.retransmission_minutes(horizon)
        ],
        max_queue_days=profile.max_queue_days,
        rfc_compliant_lifetime=rfc_compliant_lifetime(profile),
    )


def run_mta_survey(
    order: Sequence[str] = PROFILE_ORDER, horizon: float = TEN_HOURS
) -> List[MTARow]:
    """Reproduce all of Table IV."""
    return [survey_mta(PROFILES[name], horizon) for name in order]
