"""Latency models for the virtual internet.

Latency matters little for the paper's measurements (delays of interest are
minutes to days), but modelling it keeps the SMTP session timing honest and
lets ablations check that results are latency-insensitive.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.rng import RandomStream
from .address import IPv4Address


class LatencyModel:
    """Interface: round-trip time between two addresses, in seconds."""

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        raise NotImplementedError


class ZeroLatency(LatencyModel):
    """No network delay; the default for pure-policy experiments."""

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        return 0.0


class FixedLatency(LatencyModel):
    """Constant RTT for every pair."""

    def __init__(self, rtt_seconds: float) -> None:
        if rtt_seconds < 0:
            raise ValueError("rtt must be non-negative")
        self._rtt = float(rtt_seconds)

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        return self._rtt


class JitteredLatency(LatencyModel):
    """Deterministically jittered RTT.

    Each (source, destination) pair gets a stable RTT drawn from a uniform
    band — stable so repeated connections between the same pair see the same
    path, as on the real internet, and so runs stay reproducible.
    """

    def __init__(
        self,
        rng: RandomStream,
        base_seconds: float = 0.05,
        jitter_seconds: float = 0.1,
    ) -> None:
        if base_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latency parameters must be non-negative")
        self._rng = rng
        self._base = base_seconds
        self._jitter = jitter_seconds
        self._cache: Dict[Tuple[int, int], float] = {}

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        key = (source.value, destination.value)
        cached: Optional[float] = self._cache.get(key)
        if cached is None:
            pair_rng = self._rng.split(f"rtt:{source}:{destination}")
            cached = self._base + pair_rng.random() * self._jitter
            self._cache[key] = cached
        return cached
