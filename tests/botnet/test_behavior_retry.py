"""Unit tests for the MX-behaviour taxonomy and bot retry models."""

import pytest

from repro.botnet.behavior import MXBehavior, defeats_nolisting, select_targets
from repro.botnet.retry import (
    KELIHOS_MODES,
    EmpiricalRetryModel,
    FireAndForget,
    RetryMode,
    kelihos_retry_model,
)
from repro.dns.mxutil import MailExchanger
from repro.net.address import IPv4Address
from repro.sim.rng import RandomStream


def mx(pref, name, resolvable=True):
    address = IPv4Address.parse(f"10.0.0.{pref}") if resolvable else None
    return MailExchanger(preference=pref, hostname=name, address=address)


EXCHANGERS = [mx(1, "primary"), mx(2, "middle"), mx(3, "lowest")]


class TestSelectTargets:
    def test_rfc_compliant_walks_all_in_order(self):
        targets = select_targets(MXBehavior.RFC_COMPLIANT, EXCHANGERS)
        assert [t.hostname for t in targets] == ["primary", "middle", "lowest"]

    def test_primary_only(self):
        targets = select_targets(MXBehavior.PRIMARY_ONLY, EXCHANGERS)
        assert [t.hostname for t in targets] == ["primary"]

    def test_secondary_only_takes_lowest_priority(self):
        targets = select_targets(MXBehavior.SECONDARY_ONLY, EXCHANGERS)
        assert [t.hostname for t in targets] == ["lowest"]

    def test_all_mx_covers_everything(self):
        targets = select_targets(
            MXBehavior.ALL_MX, EXCHANGERS, rng=RandomStream(1)
        )
        assert sorted(t.hostname for t in targets) == [
            "lowest",
            "middle",
            "primary",
        ]

    def test_all_mx_shuffles_eventually(self):
        orders = {
            tuple(
                t.hostname
                for t in select_targets(
                    MXBehavior.ALL_MX, EXCHANGERS, rng=RandomStream(seed)
                )
            )
            for seed in range(20)
        }
        assert len(orders) > 1

    def test_unresolvable_exchangers_skipped(self):
        exchangers = [mx(1, "ghost", resolvable=False), mx(2, "alive")]
        targets = select_targets(MXBehavior.PRIMARY_ONLY, exchangers)
        assert [t.hostname for t in targets] == ["alive"]

    def test_empty_exchangers(self):
        assert select_targets(MXBehavior.RFC_COMPLIANT, []) == []

    def test_defeats_nolisting(self):
        assert not defeats_nolisting(MXBehavior.PRIMARY_ONLY)
        assert defeats_nolisting(MXBehavior.SECONDARY_ONLY)
        assert defeats_nolisting(MXBehavior.RFC_COMPLIANT)
        assert defeats_nolisting(MXBehavior.ALL_MX)


class TestFireAndForget:
    def test_never_retries(self):
        model = FireAndForget()
        rng = RandomStream(1)
        assert model.next_delay(1, rng) is None
        assert model.next_delay(100, rng) is None


class TestEmpiricalRetryModel:
    def test_respects_min_delay(self):
        model = EmpiricalRetryModel(min_delay=300.0)
        rng = RandomStream(2)
        for attempt in range(1, 20):
            delay = model.next_delay(attempt, rng)
            if delay is not None:
                assert delay >= 300.0

    def test_gives_up_after_max_attempts(self):
        model = EmpiricalRetryModel(max_attempts=3)
        rng = RandomStream(3)
        assert model.next_delay(3, rng) is None
        assert model.next_delay(2, rng) is not None

    def test_early_attempts_cluster_short(self):
        model = kelihos_retry_model()
        delays = [
            model.next_delay(1, RandomStream(seed)) for seed in range(200)
        ]
        short = sum(1 for d in delays if d <= 600)
        assert short / len(delays) > 0.9

    def test_late_attempts_cluster_long(self):
        model = kelihos_retry_model()
        delays = [
            model.next_delay(10, RandomStream(seed)) for seed in range(200)
        ]
        long = sum(1 for d in delays if d >= 80000)
        assert long / len(delays) > 0.5

    def test_delays_fall_in_known_modes(self):
        model = kelihos_retry_model()
        rng = RandomStream(4)
        for attempt in (1, 3, 8):
            for _ in range(50):
                delay = model.next_delay(attempt, rng)
                assert any(
                    mode.low <= delay <= mode.high or delay == 300.0
                    for mode in KELIHOS_MODES
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalRetryModel(modes=[])
        with pytest.raises(ValueError):
            EmpiricalRetryModel(max_attempts=0)
        with pytest.raises(ValueError):
            RetryMode(low=0, high=10, weight=1)
        with pytest.raises(ValueError):
            RetryMode(low=10, high=5, weight=1)
