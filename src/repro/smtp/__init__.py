"""SMTP substrate: protocol engine, messages, server FSM, client, wire
format and dialect fingerprinting."""

from .client import AttemptOutcome, AttemptResult, SMTPClient
from .dialects import (
    COMPLIANT_MTA,
    CUTWAIL_DIALECT,
    DARKMAILER_DIALECT,
    DIALECT_BY_NAME,
    KELIHOS_DIALECT,
    KNOWN_DIALECTS,
    DialectFeatures,
    DialectFingerprinter,
    DialectProfile,
    FingerprintResult,
    extract_features,
    play_dialect,
)
from .message import (
    AddressSyntaxError,
    Envelope,
    Message,
    domain_of,
    envelopes_for,
    validate_address,
)
from .replies import Reply
from .server import (
    ConnectionPolicy,
    DeliveryRecord,
    PolicyDecision,
    SessionState,
    SMTPServer,
    SMTPSession,
)
from .spf_policy import SPFEvent, SPFPolicy
from .wire import (
    Command,
    CommandSyntaxError,
    SessionTranscript,
    TranscribingSession,
    TranscriptEntry,
    parse_command,
    render_mail_from,
    render_rcpt_to,
)

__all__ = [
    "AddressSyntaxError",
    "AttemptOutcome",
    "AttemptResult",
    "COMPLIANT_MTA",
    "CUTWAIL_DIALECT",
    "Command",
    "CommandSyntaxError",
    "ConnectionPolicy",
    "DARKMAILER_DIALECT",
    "DIALECT_BY_NAME",
    "DeliveryRecord",
    "DialectFeatures",
    "DialectFingerprinter",
    "DialectProfile",
    "Envelope",
    "FingerprintResult",
    "KELIHOS_DIALECT",
    "KNOWN_DIALECTS",
    "Message",
    "PolicyDecision",
    "Reply",
    "SMTPClient",
    "SPFEvent",
    "SPFPolicy",
    "SMTPServer",
    "SMTPSession",
    "SessionState",
    "SessionTranscript",
    "TranscribingSession",
    "TranscriptEntry",
    "domain_of",
    "envelopes_for",
    "extract_features",
    "parse_command",
    "play_dialect",
    "render_mail_from",
    "render_rcpt_to",
    "validate_address",
]
