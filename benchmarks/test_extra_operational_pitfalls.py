"""Extension bench: operational pitfalls of the two techniques (§II / §VI).

Three quantified footnotes of the paper:

* nolisting costs nothing for compliant senders but silently loses the
  mail of primary-only notifier scripts;
* greylisting behind a load-balanced MX farm needs a *shared* triplet
  store, or delays multiply;
* the triplet database's size is controlled by the spammers (rotating
  senders mint fresh triplets), so expiry sweeps are not optional.
"""

from repro.analysis.tables import format_seconds, render_table
from repro.core.cost_attack import compare_sweeping
from repro.core.multimx_greylist import compare_store_sharing
from repro.core.nolisting_impact import run_nolisting_impact

from _util import emit


def run_all():
    impact = run_nolisting_impact()
    multimx = compare_store_sharing(num_messages=30)
    db_growth = compare_sweeping(duration_days=10.0)
    return impact, multimx, db_growth


def test_operational_pitfalls(benchmark):
    impact, multimx, db_growth = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    table = render_table(
        headers=("Sender class", "Delivered", "Lost", "Max delay"),
        rows=[
            (
                name,
                f"{o.delivered}/{o.messages}",
                o.lost,
                format_seconds(o.max_delay),
            )
            for name, o in sorted(impact.outcomes.items())
        ],
        title="Benign senders through a nolisted domain",
    )
    emit("Pitfall 1 — nolisting vs primary-only notifiers", table)

    per_host, shared = multimx
    table = render_table(
        headers=("Triplet store", "Mean delay", "Max delay", "Deferrals"),
        rows=[
            (
                "per-MX-host" if not r.shared_store else "shared",
                format_seconds(r.mean_delay),
                format_seconds(r.max_delay),
                r.total_deferrals,
            )
            for r in multimx
        ],
        title="Compliant postfix senders vs a 2-host equal-preference farm",
    )
    emit("Pitfall 2 — greylisting behind MX load balancing", table)

    unswept, swept = db_growth
    table = render_table(
        headers=("Cleanup", "Peak entries", "Final entries", "Peak KiB"),
        rows=[
            ("none", unswept.peak_entries, unswept.final_entries,
             f"{unswept.peak_bytes / 1024:.0f}"),
            ("daily sweep", swept.peak_entries, swept.final_entries,
             f"{swept.peak_bytes / 1024:.0f}"),
        ],
        title="Triplet DB under 500 rotating-sender spam/day for 10 days",
    )
    emit("Pitfall 3 — spammer-controlled database growth", table)

    # Pitfall 1: compliant mail untouched, notifiers wiped out.
    assert impact.compliant_loss == 0
    assert impact.notifier_outcome.delivered == 0

    # Pitfall 2: per-host stores strictly worse.
    assert per_host.mean_delay > shared.mean_delay
    assert per_host.total_deferrals > shared.total_deferrals

    # Pitfall 3: sweeping bounds the database.
    assert swept.peak_entries < unswept.peak_entries / 2
